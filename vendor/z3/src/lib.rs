//! Offline API stub for the `z3` crate.
//!
//! The build container has neither network access nor a libz3
//! installation, so this crate mirrors the exact API surface that
//! `bf4_smt::z3backend` uses — enough for the backend to *compile* when
//! the `z3` feature is enabled. Semantics are deliberately degenerate:
//! every `check` returns [`SatResult::Unknown`], `get_model` returns
//! `None`, and unsat cores are empty. The governed solver layer treats
//! these exactly like a real solver timing out, so enabling the feature
//! against this stub simply exercises the Unknown/fallback paths.
//!
//! AST values track sorts and widths faithfully (and panic on width
//! mismatches like the real bindings), so lowering bugs still surface.

/// Result of a satisfiability check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatResult {
    Sat,
    Unsat,
    Unknown,
}

/// Solver stub: records nothing, decides nothing.
pub struct Solver {
    _private: (),
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    pub fn new() -> Solver {
        Solver { _private: () }
    }

    pub fn assert<T: std::borrow::Borrow<ast::Bool>>(&self, _t: T) {}

    pub fn push(&self) {}

    pub fn pop(&self, _n: u32) {}

    pub fn check(&self) -> SatResult {
        SatResult::Unknown
    }

    pub fn check_assumptions(&self, _assumptions: &[ast::Bool]) -> SatResult {
        SatResult::Unknown
    }

    pub fn get_unsat_core(&self) -> Vec<ast::Bool> {
        Vec::new()
    }

    pub fn get_model(&self) -> Option<Model> {
        None
    }
}

/// Model stub: unobtainable (`Solver::get_model` always returns `None`),
/// but the type and its methods exist so call sites compile.
pub struct Model {
    _private: (),
}

impl Model {
    pub fn eval<T: ast::Ast>(&self, ast: &T, _model_completion: bool) -> Option<T> {
        Some(ast.clone())
    }
}

/// AST node types mirroring `z3::ast`.
pub mod ast {
    use std::fmt;

    /// Implemented by stub AST sorts so `Bool::ite` and `Model::eval` can
    /// be generic like the real bindings.
    pub trait Ast: Clone {
        fn ite_node(cond: &Bool, then: &Self, els: &Self) -> Self;
    }

    /// Boolean AST stub: keeps a textual form for `Display` parity.
    #[derive(Clone, Debug)]
    pub struct Bool {
        repr: String,
    }

    impl Bool {
        fn mk(repr: String) -> Bool {
            Bool { repr }
        }

        pub fn from_bool(b: bool) -> Bool {
            Bool::mk(if b { "true".into() } else { "false".into() })
        }

        pub fn new_const(name: impl Into<String>) -> Bool {
            Bool::mk(name.into())
        }

        pub fn not(&self) -> Bool {
            Bool::mk(format!("(not {})", self.repr))
        }

        pub fn and(parts: &[Bool]) -> Bool {
            let inner: Vec<&str> = parts.iter().map(|p| p.repr.as_str()).collect();
            Bool::mk(format!("(and {})", inner.join(" ")))
        }

        pub fn or(parts: &[Bool]) -> Bool {
            let inner: Vec<&str> = parts.iter().map(|p| p.repr.as_str()).collect();
            Bool::mk(format!("(or {})", inner.join(" ")))
        }

        pub fn implies(&self, other: &Bool) -> Bool {
            Bool::mk(format!("(=> {} {})", self.repr, other.repr))
        }

        pub fn iff(&self, other: &Bool) -> Bool {
            Bool::mk(format!("(= {} {})", self.repr, other.repr))
        }

        pub fn ite<T: Ast>(&self, then: &T, els: &T) -> T {
            T::ite_node(self, then, els)
        }

        /// No model ever exists in the stub, so no concrete value either.
        pub fn as_bool(&self) -> Option<bool> {
            match self.repr.as_str() {
                "true" => Some(true),
                "false" => Some(false),
                _ => None,
            }
        }
    }

    impl Ast for Bool {
        fn ite_node(cond: &Bool, then: &Bool, els: &Bool) -> Bool {
            Bool::mk(format!("(ite {} {} {})", cond.repr, then.repr, els.repr))
        }
    }

    impl fmt::Display for Bool {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.repr)
        }
    }

    /// Bit-vector AST stub: tracks width (panicking on mismatches, like
    /// the real bindings) plus a textual form.
    #[derive(Clone, Debug)]
    pub struct BV {
        repr: String,
        width: u32,
    }

    macro_rules! bv_binops {
        ($($method:ident => $op:literal),* $(,)?) => {
            $(
                pub fn $method(&self, other: &BV) -> BV {
                    self.same_width(other, $op);
                    BV::mk(format!("({} {} {})", $op, self.repr, other.repr), self.width)
                }
            )*
        };
    }

    macro_rules! bv_cmps {
        ($($method:ident => $op:literal),* $(,)?) => {
            $(
                pub fn $method(&self, other: &BV) -> Bool {
                    self.same_width(other, $op);
                    Bool::mk(format!("({} {} {})", $op, self.repr, other.repr))
                }
            )*
        };
    }

    impl BV {
        fn mk(repr: String, width: u32) -> BV {
            BV { repr, width }
        }

        fn same_width(&self, other: &BV, op: &str) {
            assert_eq!(
                self.width, other.width,
                "z3 stub: width mismatch in {op}: {} vs {}",
                self.width, other.width
            );
        }

        pub fn new_const(name: impl Into<String>, width: u32) -> BV {
            BV::mk(name.into(), width)
        }

        pub fn from_u64(value: u64, width: u32) -> BV {
            BV::mk(format!("#x{value:x}[{width}]"), width)
        }

        bv_binops! {
            bvadd => "bvadd", bvsub => "bvsub", bvmul => "bvmul",
            bvudiv => "bvudiv", bvurem => "bvurem",
            bvand => "bvand", bvor => "bvor", bvxor => "bvxor",
            bvshl => "bvshl", bvlshr => "bvlshr", bvashr => "bvashr",
        }

        bv_cmps! {
            bvult => "bvult", bvule => "bvule", bvugt => "bvugt", bvuge => "bvuge",
            bvslt => "bvslt", bvsle => "bvsle", bvsgt => "bvsgt", bvsge => "bvsge",
        }

        pub fn bvnot(&self) -> BV {
            BV::mk(format!("(bvnot {})", self.repr), self.width)
        }

        pub fn bvneg(&self) -> BV {
            BV::mk(format!("(bvneg {})", self.repr), self.width)
        }

        pub fn concat(&self, other: &BV) -> BV {
            BV::mk(
                format!("(concat {} {})", self.repr, other.repr),
                self.width + other.width,
            )
        }

        pub fn extract(&self, hi: u32, lo: u32) -> BV {
            assert!(hi >= lo && hi < self.width, "z3 stub: bad extract bounds");
            BV::mk(format!("((_ extract {hi} {lo}) {})", self.repr), hi - lo + 1)
        }

        pub fn zero_ext(&self, add: u32) -> BV {
            BV::mk(
                format!("((_ zero_extend {add}) {})", self.repr),
                self.width + add,
            )
        }

        pub fn sign_ext(&self, add: u32) -> BV {
            BV::mk(
                format!("((_ sign_extend {add}) {})", self.repr),
                self.width + add,
            )
        }

        pub fn get_size(&self) -> u32 {
            self.width
        }

        #[allow(clippy::should_implement_trait)]
        pub fn eq(&self, other: &BV) -> Bool {
            self.same_width(other, "=");
            Bool::mk(format!("(= {} {})", self.repr, other.repr))
        }

        /// No model ever exists in the stub, so no concrete value either.
        pub fn as_u64(&self) -> Option<u64> {
            None
        }
    }

    impl Ast for BV {
        fn ite_node(cond: &Bool, then: &BV, els: &BV) -> BV {
            then.same_width(els, "ite");
            BV::mk(
                format!("(ite {} {} {})", cond, then.repr, els.repr),
                then.width,
            )
        }
    }

    impl fmt::Display for BV {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.repr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::ast::{Bool, BV};
    use super::{SatResult, Solver};

    #[test]
    fn every_check_is_unknown() {
        let s = Solver::new();
        s.assert(Bool::from_bool(true));
        assert_eq!(s.check(), SatResult::Unknown);
        assert_eq!(s.check_assumptions(&[]), SatResult::Unknown);
        assert!(s.get_model().is_none());
        assert!(s.get_unsat_core().is_empty());
    }

    #[test]
    fn widths_tracked() {
        let x = BV::new_const("x", 8);
        let y = BV::new_const("y", 8);
        assert_eq!(x.concat(&y).get_size(), 16);
        assert_eq!(x.extract(7, 4).get_size(), 4);
        assert_eq!(x.zero_ext(24).get_size(), 32);
        let c = Bool::new_const("c");
        assert_eq!(c.ite(&x, &y).get_size(), 8);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let x = BV::new_const("x", 8);
        let y = BV::new_const("y", 16);
        let _ = x.bvadd(&y);
    }
}
