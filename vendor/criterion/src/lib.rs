//! Offline vendored mini-criterion.
//!
//! The build container cannot reach crates.io, so this crate provides a
//! tiny, API-compatible stand-in for the slice of criterion the bf4
//! benches use: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function` with `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a short warm-up plus a
//! fixed number of timed iterations and prints the mean wall-clock time
//! per iteration — no statistical analysis, outlier detection, or HTML
//! reports.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export so older `criterion::black_box` imports keep working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 50,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            total_nanos: 0,
            iters: 0,
        };
        f(&mut b);
        let mean = if b.iters == 0 {
            0
        } else {
            b.total_nanos / b.iters as u128
        };
        println!("{}/{}: {} iters, mean {}", self.name, id, b.iters, fmt_nanos(mean));
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    /// Time `routine`: a small untimed warm-up, then `sample_size` timed
    /// iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..2 {
            std_black_box(routine());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }

    /// Like [`Bencher::iter`], but runs `setup` untimed before each timed
    /// call and passes its output to `routine`.
    pub fn iter_with_setup<S, I, O, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..2 {
            std_black_box(routine(setup()));
        }
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

fn fmt_nanos(n: u128) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2} s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2} ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.2} us", n as f64 / 1e3)
    } else {
        format!("{n} ns")
    }
}

/// Collect benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Produce `main()` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("group");
        g.sample_size(5);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
