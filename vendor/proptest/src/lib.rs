//! Offline vendored mini-proptest.
//!
//! The build container cannot reach crates.io, so this crate reimplements
//! the *generation-only* slice of proptest's API that the bf4 test suites
//! use: the [`proptest!`] macro, `prop_assert*`, [`prop_oneof!`],
//! [`strategy::Strategy`] with `prop_map`/`prop_recursive`, ranges and
//! tuples as strategies, [`char::range`], and simple `[class]{m,n}`
//! string-regex strategies.
//!
//! Differences from upstream, by design:
//!
//! * no shrinking — a failing case reports its seed and inputs via the
//!   normal assertion message instead of a minimized counterexample;
//! * deterministic seeding per (test name, case index), so failures are
//!   reproducible without a persistence file;
//! * string "regex" strategies support only the `[class]{m,n}` shape the
//!   test suites use.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Test-runner configuration (`ProptestConfig` in upstream naming).
pub mod test_runner {
    /// Number of random cases to run per property.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 128 }
        }
    }

    pub use super::TestRng;
}

/// Deterministic RNG handed to strategies by the [`proptest!`] macro.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// RNG for one (property, case) pair: seed is a stable hash of both.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        h = (h ^ case as u64).wrapping_mul(0x100000001b3);
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng.random::<u64>()
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform `u128`.
    pub fn bits128(&mut self) -> u128 {
        self.rng.random::<u128>()
    }

    /// Uniform `bool`.
    pub fn flip(&mut self) -> bool {
        self.rng.random::<bool>()
    }
}

/// Strategies: typed random-value generators.
pub mod strategy {
    use super::TestRng;
    use std::rc::Rc;

    /// A generator of values of an associated type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Recursive strategy: `self` is the leaf; `recurse` builds one
        /// extra layer from the strategy for the layer below. `depth`
        /// layers are stacked (the size hints are accepted for API
        /// compatibility and ignored).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut cur = self.boxed();
            for _ in 0..depth {
                cur = recurse(cur).boxed();
            }
            cur
        }

        /// Type-erase into a clonable boxed strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let inner = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.generate(rng)))
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (built by [`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for std::ops::Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as u128) - (self.start as u128);
                        let off = rng.bits128() % span;
                        ((self.start as u128) + off) as $t
                    }
                }
                impl Strategy for std::ops::RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        let (lo, hi) = (*self.start() as u128, *self.end() as u128);
                        assert!(lo <= hi, "empty range strategy");
                        let span = hi - lo + 1;
                        let off = if span == 0 { rng.bits128() } else { rng.bits128() % span };
                        (lo + off) as $t
                    }
                }
            )*
        };
    }
    int_range_strategy!(u8, u16, u32, u64, u128, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $i:tt),+))*) => {
            $(
                impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                    type Value = ($($s::Value,)+);
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$i.generate(rng),)+)
                    }
                }
            )*
        };
    }
    tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy for a type with a canonical uniform distribution.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// `any::<T>()`: the canonical strategy for `T`.
    pub fn any<T>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    macro_rules! any_uint {
        ($($t:ty),*) => {
            $(
                impl Strategy for Any<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.bits128() as $t
                    }
                }
            )*
        };
    }
    any_uint!(u8, u16, u32, u64, u128, usize);

    macro_rules! any_int {
        ($($t:ty),*) => {
            $(
                impl Strategy for Any<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.bits128() as $t
                    }
                }
            )*
        };
    }
    any_int!(i8, i16, i32, i64, i128, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.flip()
        }
    }

    /// `"[class]{m,n}"` string literals as strategies (see [`crate::string`]).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

/// Character strategies.
pub mod char {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Uniform character in `[lo, hi]` (inclusive, by code point).
    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    /// Strategy over the inclusive character range `[lo, hi]`.
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "empty char range");
        CharRange {
            lo: lo as u32,
            hi: hi as u32,
        }
    }

    impl Strategy for CharRange {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            // Rejection-sample around the surrogate gap.
            loop {
                let span = (self.hi - self.lo + 1) as u64;
                let c = self.lo + rng.below(span) as u32;
                if let Some(c) = char::from_u32(c) {
                    return c;
                }
            }
        }
    }
}

/// Minimal `[class]{m,n}` pattern generator backing `&str` strategies.
pub mod string {
    use super::TestRng;

    /// Generate a string for the supported pattern subset:
    /// `[chars...]{min,max}` where the class may contain literal
    /// characters, `a-z` ranges and `\n`/`\t`/`\\` escapes.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let (class, min, max) = parse(pattern)
            .unwrap_or_else(|| panic!("unsupported string pattern for mini-proptest: {pattern:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }

    fn parse(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let (class_src, tail) = rest.split_at(close);
        let tail = tail.strip_prefix(']')?;
        let tail = tail.strip_prefix('{')?;
        let tail = tail.strip_suffix('}')?;
        let (min_s, max_s) = tail.split_once(',')?;
        let min: usize = min_s.trim().parse().ok()?;
        let max: usize = max_s.trim().parse().ok()?;
        if max < min {
            return None;
        }
        let mut class = Vec::new();
        let chars: Vec<char> = class_src.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c == '\\' && i + 1 < chars.len() {
                class.push(match chars[i + 1] {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                });
                i += 2;
            } else if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (c as u32, chars[i + 2] as u32);
                for cp in lo..=hi {
                    if let Some(ch) = char::from_u32(cp) {
                        class.push(ch);
                    }
                }
                i += 3;
            } else {
                class.push(c);
                i += 1;
            }
        }
        if class.is_empty() {
            return None;
        }
        Some((class, min, max))
    }
}

/// The `proptest!` macro: runs each property over `Config::cases` random
/// cases with a deterministic per-case RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    (@funcs ($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng =
                        $crate::TestRng::for_case(stringify!($name), case);
                    $crate::proptest!(@bind proptest_rng; $($params)*);
                    $body
                }
            }
        )*
    };
    (@bind $rng:ident;) => {};
    (@bind $rng:ident; $p:pat in $s:expr) => {
        let $p = $crate::strategy::Strategy::generate(&($s), &mut $rng);
    };
    (@bind $rng:ident; $p:pat in $s:expr, $($rest:tt)*) => {
        let $p = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $i:ident : $t:ty) => {
        let $i: $t = $crate::strategy::Strategy::generate(
            &$crate::strategy::any::<$t>(), &mut $rng);
    };
    (@bind $rng:ident; $i:ident : $t:ty, $($rest:tt)*) => {
        let $i: $t = $crate::strategy::Strategy::generate(
            &$crate::strategy::any::<$t>(), &mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// `prop_assert!`: plain assertion (no shrinking in the mini framework).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!`: plain equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!`: plain inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// The glob-import surface tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(w in 1u32..64, a: u64) {
            prop_assert!((1..64).contains(&w));
            let _ = a;
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![
            (0u32..10).prop_map(|v| v * 2),
            (100u32..110).prop_map(|v| v + 1),
        ]) {
            prop_assert!(x % 2 == 0 || (101..111).contains(&x));
        }

        #[test]
        fn string_pattern(s in "[a-c]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn char_range(c in crate::char::range('!', '~')) {
            prop_assert!(('!'..='~').contains(&c));
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        let leaf = (0u32..4).prop_map(|v| v as u64);
        let strat = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a + b)
        });
        let mut rng = crate::TestRng::for_case("recursive", 0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v < 4 * 16);
        }
    }
}
