//! Offline vendored subset of the `rand` crate API.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses: a
//! deterministic, seedable [`rngs::StdRng`] and the [`RngExt::random`]
//! method for the primitive types drawn by the workload generators and
//! fuzzers. The generator is xoshiro256**, seeded via splitmix64 — the
//! same construction the real `rand` uses for seeding, so streams are
//! high-quality even from small seeds. Streams are NOT guaranteed to
//! match the upstream crate bit-for-bit; everything in this workspace
//! that depends on reproducibility seeds its own RNG and compares only
//! against itself.

/// Types that can be sampled uniformly from an RNG.
pub trait Random: Sized {
    /// Draw one uniformly distributed value.
    fn random_from(rng: &mut dyn RngCore) -> Self;
}

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Extension trait providing the generic `random::<T>()` entry point
/// (the rand 0.9+ spelling of `Rng::gen`).
pub trait RngExt: RngCore {
    /// Draw a uniformly distributed value of type `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Seedable construction (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator standing in for rand's
    /// `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in s.iter_mut() {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 cannot
            // produce four zero words from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s2n = s2 ^ s0;
            let s3n = s3 ^ s1;
            let s1n = s1 ^ s2n;
            let s0n = s0 ^ s3n;
            s2n ^= t;
            self.s = [s0n, s1n, s2n, s3n.rotate_left(45)];
            result
        }
    }
}

impl Random for u64 {
    fn random_from(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for u128 {
    fn random_from(rng: &mut dyn RngCore) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for u8 {
    fn random_from(rng: &mut dyn RngCore) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Random for usize {
    fn random_from(rng: &mut dyn RngCore) -> usize {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random_from(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random_from(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.random::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bool_roughly_balanced() {
        let mut r = StdRng::seed_from_u64(9);
        let trues = (0..1000).filter(|_| r.random::<bool>()).count();
        assert!((350..=650).contains(&trues), "trues = {trues}");
    }
}
