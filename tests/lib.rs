//! Cross-crate integration tests. Each file under `t/` exercises a
//! whole-pipeline property:
//!
//! * `corpus_shape` — Table-1 shape assertions over the whole corpus;
//! * `global_correctness` — Theorem 7.5: fuzzed packets never hit a bug in
//!   any snapshot the shim accepts;
//! * `replay` — static counterexamples reproduce on the interpreter;
//! * `annotations_roundtrip` — the compile-time artifact survives its
//!   textual round trip for every corpus program;
//! * `solver_differential` — the Z3 backend and the internal CDCL
//!   bit-blaster agree on random formulas.
