//! Counterexample replay across the corpus: for every reachable bug the
//! static verifier reports, its witness model converts into a concrete
//! snapshot + packet that drives the interpreter into a bug terminal.
//! (Bug *kind* must match; several instrumentation points can share a
//! kind.)

use bf4_core::reach::{bug_model, BugStatus, ReachAnalysis};
use bf4_ir::{lower, BugKind, LowerOptions};
use bf4_sim::{snapshot_from_model, HavocSource, Interpreter, Outcome};
use bf4_smt::Assignment;

fn replay_program(name: &str) -> (usize, usize) {
    let p = bf4_corpus::by_name(name).unwrap();
    let program = bf4_p4::frontend(p.source).unwrap();
    let mut vcfg = lower(&program, &LowerOptions::default()).unwrap().cfg;
    bf4_ir::ssa::to_ssa(&mut vcfg);
    let ra = ReachAnalysis::new(&vcfg);
    let mut bugs = ra.found_bugs(&vcfg);
    let mut solver = bf4_smt::default_solver();
    bf4_core::reach::check_bugs(&mut solver, &mut bugs, &[], BugStatus::Reachable);

    let icfg = lower(&program, &LowerOptions::default()).unwrap().cfg;
    let mut attempted = 0;
    let mut reproduced = 0;
    for bug in bugs.iter().filter(|b| b.status == BugStatus::Reachable) {
        let Some(model) = bug_model(&mut solver, bug, &[]) else {
            continue;
        };
        attempted += 1;
        let rules = snapshot_from_model(&icfg, &model);
        let interp = Interpreter::new(&icfg, rules);
        let mut source = HavocSource::replay(model);
        let result = interp.run(&Assignment::new(), &mut source);
        if let Outcome::Bug(info) = result.outcome {
            if info.kind == bug.info.kind {
                reproduced += 1;
            }
        }
    }
    (attempted, reproduced)
}

#[test]
fn simple_nat_bugs_replay() {
    let (attempted, reproduced) = replay_program("simple_nat");
    assert!(attempted >= 3);
    assert_eq!(
        attempted, reproduced,
        "every static counterexample must replay"
    );
}

#[test]
fn ecmp_bugs_replay() {
    let (attempted, reproduced) = replay_program("ecmp_2");
    assert!(attempted >= 1);
    assert_eq!(attempted, reproduced);
}

#[test]
fn issue894_bug_replays() {
    let (attempted, reproduced) = replay_program("issue894");
    assert!(attempted >= 1);
    assert_eq!(attempted, reproduced);
}

#[test]
fn mplb_dataplane_bug_replays() {
    // Even the uncontrollable dataplane bug has a concrete witness.
    let (attempted, reproduced) = replay_program("mplb_router");
    assert!(attempted >= 1);
    assert_eq!(attempted, reproduced);
}

#[test]
fn replayed_key_bug_matches_paper_scenario() {
    // The replayed nat rule must exhibit the §2.1 pattern: validity key
    // false with a non-zero ternary mask on srcAddr.
    let p = bf4_corpus::by_name("simple_nat").unwrap();
    let program = bf4_p4::frontend(p.source).unwrap();
    let mut vcfg = lower(&program, &LowerOptions::default()).unwrap().cfg;
    bf4_ir::ssa::to_ssa(&mut vcfg);
    let ra = ReachAnalysis::new(&vcfg);
    let bugs = ra.found_bugs(&vcfg);
    let key_bug = bugs
        .iter()
        .find(|b| b.info.kind == BugKind::InvalidKeyAccess)
        .unwrap();
    let mut solver = bf4_smt::default_solver();
    let model = bug_model(&mut solver, key_bug, &[]).unwrap();
    let icfg = lower(&program, &LowerOptions::default()).unwrap().cfg;
    let rules = snapshot_from_model(&icfg, &model);
    let nat_rules = rules.get("nat").expect("nat rule in model");
    let site = icfg.tables.iter().find(|t| t.table == "nat").unwrap();
    // key index 1 is hdr.ipv4.isValid(), keys 3/4 are the ternary addrs.
    let r = &nat_rules[0];
    let validity_key_false = r.key_values[1] == 0;
    let some_mask_nonzero = site
        .keys
        .iter()
        .enumerate()
        .filter(|(_, k)| k.mask_var.is_some())
        .any(|(i, _)| r.key_masks[i] != 0);
    assert!(
        validity_key_false && some_mask_nonzero,
        "witness rule does not match the §2.1 scenario: {r:?}"
    );
}
