//! Theorem 7.5 (global correctness), tested dynamically: for a program
//! whose bugs are all controlled after fixes, any snapshot assembled from
//! shim-accepted rules has **no packet** that reaches a bug terminal.
//!
//! The controller fuzzes rules (30% intentionally faulty); the shim
//! filters them; the accepted shadow state becomes the interpreter's rule
//! set; packet fuzzing then hunts for a bug-reaching run. Finding one
//! would falsify either the inference (a missing annotation), the shim
//! (an enforcement hole) or the interpreter/verifier correspondence.

use bf4_core::fixes::apply_fixes;
use bf4_core::{verify, VerifyOptions};
use bf4_shim::controller::{Controller, WorkloadConfig};
use bf4_shim::Shim;
use bf4_sim::{HavocSource, Interpreter, Outcome, RuleSet};
use bf4_smt::Assignment;

fn fuzz_program(name: &str, updates: usize, packets: u64) {
    let p = bf4_corpus::by_name(name).unwrap();
    let report = verify(p.source, &VerifyOptions::default()).unwrap();
    assert_eq!(
        report.bugs_after_fixes, 0,
        "{name} must be fully fixable for this property"
    );

    // Build the *fixed* program exactly as the driver did.
    let mut program = bf4_p4::frontend(p.source).unwrap();
    apply_fixes(&mut program, &report.fixes);
    let lopts = bf4_ir::LowerOptions {
        egress_spec_default_drop: report.egress_spec_fix,
        ..Default::default()
    };
    let cfg = bf4_ir::lower(&program, &lopts).unwrap().cfg;

    // Controller → shim.
    let mut shim = Shim::new(&report.annotations);
    let mut ctrl = Controller::new(
        &report.annotations,
        WorkloadConfig {
            updates,
            faulty_fraction: 0.3,
            delete_fraction: 0.0,
            seed: 0x5eed ^ name.len() as u64,
            ..WorkloadConfig::default()
        },
    );
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for u in ctrl.workload() {
        match shim.apply(&u) {
            Ok(_) => accepted += 1,
            Err(_) => rejected += 1,
        }
        let _ = &u;
    }
    assert!(accepted > 0, "{name}: shim accepted nothing");
    let _ = rejected;

    // Accepted shadow state → interpreter rule set (per simple table name).
    let mut rules = RuleSet::new();
    for qual in shim.table_names() {
        let simple = qual.rsplit('.').next().unwrap().to_string();
        let shadow = shim.shadow_rules(&qual);
        let converted: Vec<bf4_sim::Rule> = shadow
            .into_iter()
            .map(|r| bf4_sim::Rule {
                key_values: r.key_values,
                key_masks: r.key_masks,
                action: r.action,
                params: r.params,
            })
            .collect();
        if !converted.is_empty() {
            rules.insert(simple, converted);
        }
    }

    // Packet fuzzing: no run may end in a bug terminal.
    let interp = Interpreter::new(&cfg, rules);
    for seed in 0..packets {
        let mut source = HavocSource::rng(seed);
        let result = interp.run(&Assignment::new(), &mut source);
        match &result.outcome {
            Outcome::Bug(info) => panic!(
                "{name}: accepted snapshot still buggy: {} (packet seed {seed}, trace {:?})",
                info.description, result.trace
            ),
            Outcome::Infeasible => {
                panic!("{name}: interpreter reached an infeasible sink (seed {seed})")
            }
            _ => {}
        }
    }
}

#[test]
fn accepted_snapshots_are_bug_free_simple_nat() {
    fuzz_program("simple_nat", 150, 300);
}

#[test]
fn accepted_snapshots_are_bug_free_ecmp() {
    fuzz_program("ecmp_2", 100, 300);
}

#[test]
fn accepted_snapshots_are_bug_free_arp() {
    fuzz_program("arp", 100, 300);
}

#[test]
fn accepted_snapshots_are_bug_free_hula() {
    fuzz_program("hula", 100, 200);
}

#[test]
fn accepted_snapshots_are_bug_free_fabric() {
    fuzz_program("fabric_switch", 200, 150);
}

/// The complementary direction: with the shim bypassed, faulty rules DO
/// produce bug-reaching packets (the fuzzing is actually able to find
/// bugs — the property above is not vacuous).
#[test]
fn bypassing_the_shim_finds_bugs() {
    let p = bf4_corpus::by_name("simple_nat").unwrap();
    let program = bf4_p4::frontend(p.source).unwrap();
    let cfg = bf4_ir::lower(&program, &bf4_ir::LowerOptions::default())
        .unwrap()
        .cfg;
    // Inject the §2.1 faulty rule directly, skipping validation.
    let mut rules = RuleSet::new();
    rules.insert(
        "nat".into(),
        vec![bf4_sim::Rule {
            key_values: vec![0, 0, 0, 0xC000_0000, 0],
            key_masks: vec![u128::MAX, u128::MAX, u128::MAX, 0xff00_0000, 0],
            action: "nat_hit_int_to_ext".into(),
            params: vec![0, 1],
        }],
    );
    rules.insert(
        "if_info".into(),
        vec![bf4_sim::Rule {
            key_values: vec![0],
            key_masks: vec![u128::MAX],
            action: "set_if_info".into(),
            params: vec![0],
        }],
    );
    let interp = Interpreter::new(&cfg, rules);
    let mut found = false;
    for seed in 0..500u64 {
        let mut source = HavocSource::rng(seed);
        if let Outcome::Bug(_) = interp.run(&Assignment::new(), &mut source).outcome {
            found = true;
            break;
        }
    }
    assert!(found, "fuzzer failed to trigger the known faulty rule");
}
