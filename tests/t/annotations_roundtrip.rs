//! The compile-time annotation artifact must survive its textual round
//! trip bit-for-bit in meaning for every corpus program, and a shim built
//! from the parsed text must agree with one built from the in-memory
//! artifact on a shared workload.

use bf4_core::specs::AnnotationFile;
use bf4_core::{verify, VerifyOptions};
use bf4_shim::controller::{Controller, WorkloadConfig};
use bf4_shim::Shim;

#[test]
fn all_corpus_annotations_roundtrip() {
    for p in bf4_corpus::all() {
        let r = verify(p.source, &VerifyOptions::default()).unwrap();
        let text = r.annotations.to_string();
        let parsed = AnnotationFile::parse(&text)
            .unwrap_or_else(|e| panic!("{}: parse error {e}\n{text}", p.name));
        assert_eq!(parsed.tables, r.annotations.tables, "{}", p.name);
        assert_eq!(parsed.specs.len(), r.annotations.specs.len(), "{}", p.name);
        for (a, b) in parsed.specs.iter().zip(&r.annotations.specs) {
            assert!(
                a.formula.alpha_eq(&b.formula),
                "{}: formula drift\n {} \n {}",
                p.name,
                a.formula,
                b.formula
            );
            assert_eq!(a.with_table, b.with_table, "{}", p.name);
            assert_eq!(a.origin, b.origin, "{}", p.name);
        }
        assert_eq!(
            parsed.unsafe_defaults, r.annotations.unsafe_defaults,
            "{}",
            p.name
        );
    }
}

#[test]
fn parsed_and_inmemory_shims_agree() {
    let p = bf4_corpus::by_name("simple_nat").unwrap();
    let r = verify(p.source, &VerifyOptions::default()).unwrap();
    let mut shim_mem = Shim::new(&r.annotations);
    let mut shim_txt = Shim::from_text(&r.annotations.to_string()).unwrap();
    let mut ctrl = Controller::new(
        &r.annotations,
        WorkloadConfig {
            updates: 400,
            faulty_fraction: 0.4,
            delete_fraction: 0.1,
            seed: 99,
            ..WorkloadConfig::default()
        },
    );
    for u in ctrl.workload() {
        let a = shim_mem.apply(&u).map(|d| d.rule_id);
        let b = shim_txt.apply(&u).map(|d| d.rule_id);
        match (&a, &b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            other => panic!("shims disagree on {u:?}: {other:?}"),
        }
    }
}

#[test]
fn emitted_artifact_is_sql_like_per_section_4_4() {
    // Structural sanity of the SQL-like format: every assertion carries a
    // header (table + variables via the TABLE record) and a body (WHERE).
    let p = bf4_corpus::by_name("simple_nat").unwrap();
    let r = verify(p.source, &VerifyOptions::default()).unwrap();
    let text = r.annotations.to_string();
    assert!(text.contains("TABLE ingress.nat SITE "));
    assert!(text.contains("KEY "));
    assert!(text.contains("ACTION "));
    assert!(text.contains("ASSERT ON ingress."));
    assert!(text.contains("WHERE ("));
}

#[test]
fn shim_enforces_multi_table_assertion() {
    // The §4.2 scenario end to end: verify multi_tenant, load the shim,
    // install (k1=7, nop_) in t1; then the combination rule
    // (k1=7, k2=*, use_H) in t2 must be rejected — every packet hitting it
    // would read the invalid header H — while (k1=7, k2=*, skip_) passes,
    // and use_H under a *validating* t1 rule passes too.
    use bf4_shim::{RuleUpdate, ShimError, Update};
    let p = bf4_corpus::by_name("multi_tenant").unwrap();
    let r = verify(p.source, &VerifyOptions::default()).unwrap();
    assert!(
        r.annotations.specs.iter().any(|s| s.with_table.is_some()),
        "expected a multi-table annotation"
    );
    let mut shim = Shim::new(&r.annotations);
    let t1 = "ingress.t1".to_string();
    let t2 = "ingress.t2".to_string();
    // t1: k1=7 → nop_ (leaves H invalid).
    shim.apply(&Update::Insert {
        table: t1.clone(),
        rule: RuleUpdate {
            key_values: vec![7],
            key_masks: vec![u128::MAX],
            action: "nop_".into(),
            params: vec![],
        },
    })
    .expect("t1 nop rule is fine on its own");
    // t2: k1=7 + use_H → must be rejected as a combination.
    let err = shim
        .apply(&Update::Insert {
            table: t2.clone(),
            rule: RuleUpdate {
                key_values: vec![7, 1],
                key_masks: vec![u128::MAX, u128::MAX],
                action: "use_H".into(),
                params: vec![3],
            },
        })
        .expect_err("combination must be rejected");
    match err {
        ShimError::AssertionViolated { partner, .. } => {
            assert_eq!(partner.map(|(t, _)| t), Some(t1.clone()));
        }
        other => panic!("wrong rejection: {other:?}"),
    }
    // Same keys but the harmless action: accepted.
    shim.apply(&Update::Insert {
        table: t2.clone(),
        rule: RuleUpdate {
            key_values: vec![7, 1],
            key_masks: vec![u128::MAX, u128::MAX],
            action: "skip_".into(),
            params: vec![4],
        },
    })
    .expect("skip_ is safe");
    // use_H under a validating upstream rule: accepted.
    shim.apply(&Update::Insert {
        table: t1,
        rule: RuleUpdate {
            key_values: vec![9],
            key_masks: vec![u128::MAX],
            action: "validate_H".into(),
            params: vec![],
        },
    })
    .unwrap();
    shim.apply(&Update::Insert {
        table: t2,
        rule: RuleUpdate {
            key_values: vec![9, 2],
            key_masks: vec![u128::MAX, u128::MAX],
            action: "use_H".into(),
            params: vec![5],
        },
    })
    .expect("use_H with validated H is safe");
}
