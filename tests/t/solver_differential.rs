//! Differential testing of the solver layer: the governed solver (with
//! its budget enforcement, retries, and fallback routing) and the raw
//! internal CDCL bit-blaster must agree on satisfiability for random
//! QF_BV formulas, and every `Sat` model must actually evaluate to true.
//! The same harness cross-checks the simplifier and the S-expression
//! codec (semantics preservation).

use bf4_smt::bitblast::BitBlastSolver;
use bf4_smt::{default_solver, eval, SatResult, Solver, Sort, Term, Value};
use proptest::prelude::*;

/// A tiny random-term generator over a fixed variable pool.
fn arb_term(depth: u32) -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (0u32..3).prop_map(|i| Term::var(format!("b{i}"), Sort::Bool)),
        (0u32..3).prop_map(|i| Term::var(format!("x{i}"), Sort::Bv(6))),
        any::<bool>().prop_map(Term::bool),
        (0u128..64).prop_map(|v| Term::bv(6, v)),
    ];
    leaf.prop_recursive(depth, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0u8..12).prop_map(|(a, b, op)| {
                // Coerce to matching sorts.
                let (a, b) = match (a.sort(), b.sort()) {
                    (Sort::Bool, Sort::Bool) => (a, b),
                    (Sort::Bool, _) => (a.clone(), a.not()),
                    (_, Sort::Bool) => (b.clone(), b.not()),
                    _ => (a, b),
                };
                match (a.sort(), op) {
                    (Sort::Bool, 0) => a.and(&b),
                    (Sort::Bool, 1) => a.or(&b),
                    (Sort::Bool, 2) => a.implies(&b),
                    (Sort::Bool, _) => a.eq_term(&b),
                    (Sort::Bv(_), 0) => a.bvadd(&b).eq_term(&Term::bv(6, 1)),
                    (Sort::Bv(_), 1) => a.bvsub(&b).bvult(&Term::bv(6, 9)),
                    (Sort::Bv(_), 2) => a.bvmul(&b).eq_term(&Term::bv(6, 12)),
                    (Sort::Bv(_), 3) => a.bvand(&b).ne_term(&b),
                    (Sort::Bv(_), 4) => a.bvor(&b).bvugt(&b),
                    (Sort::Bv(_), 5) => a.bvxor(&b).eq_term(&Term::bv(6, 0)),
                    (Sort::Bv(_), 6) => a.bvshl(&b).bvule(&a),
                    (Sort::Bv(_), 7) => a.bvlshr(&b).eq_term(&Term::bv(6, 0)),
                    (Sort::Bv(_), 8) => a.bvslt(&b),
                    (Sort::Bv(_), 9) => a.bvudiv(&b).bvule(&a),
                    (Sort::Bv(_), 10) => a.bvurem(&b).bvult(&Term::bv(6, 13)),
                    (Sort::Bv(_), _) => a.eq_term(&b),
                }
            }),
            inner
                .clone()
                .prop_map(|a| if a.sort() == Sort::Bool { a.not() } else {
                    a.bvnot().eq_term(&Term::bv(6, 5))
                }),
        ]
    })
    .prop_map(|t| {
        if t.sort() == Sort::Bool {
            t
        } else {
            t.eq_term(&Term::bv(6, 3))
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn governed_and_internal_solver_agree(f in arb_term(4)) {
        let mut governed = default_solver();
        let gov_out = governed.solve(&f);
        let mut internal = BitBlastSolver::new();
        let int_out = internal.solve(&f);
        prop_assert_eq!(gov_out.result, int_out.result, "formula: {}", f);
        // Models must satisfy the formula.
        for (name, out) in [("governed", &gov_out), ("internal", &int_out)] {
            if out.result == SatResult::Sat {
                let m = out.model.as_ref().unwrap();
                prop_assert_eq!(
                    eval(&f, m).unwrap(),
                    Value::Bool(true),
                    "{} model does not satisfy {}", name, f
                );
            }
        }
    }

    #[test]
    fn simplifier_preserves_equivalence(f in arb_term(4)) {
        let simplified = bf4_smt::simplify::simplify(&f);
        let mut s = default_solver();
        s.assert(&f.iff(&simplified).not());
        prop_assert_eq!(s.check(), SatResult::Unsat, "{} != {}", f, simplified);
    }

    #[test]
    fn sexpr_roundtrip_preserves_semantics(f in arb_term(4)) {
        let text = bf4_smt::to_sexpr(&f);
        let parsed = bf4_smt::parse_sexpr(&text).unwrap();
        let mut s = default_solver();
        s.assert(&f.iff(&parsed).not());
        prop_assert_eq!(s.check(), SatResult::Unsat, "{} vs {}", f, parsed);
    }
}
