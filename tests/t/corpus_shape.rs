//! Table-1 shape assertions: run the full bf4 pipeline on every corpus
//! program and check the per-program expectations (bug counts, inference
//! effectiveness, fixability, key additions).

use bf4_core::{verify, VerifyOptions};

#[test]
fn every_corpus_program_matches_its_expected_shape() {
    for p in bf4_corpus::all() {
        let r = verify(p.source, &VerifyOptions::default())
            .unwrap_or_else(|e| panic!("{}: verification failed: {e}", p.name));
        assert_eq!(
            r.bugs_total, p.expect.bugs_total,
            "{}: exact bug count drifted",
            p.name
        );
        assert_eq!(
            r.bugs_after_infer, p.expect.bugs_after_infer,
            "{}: bugs after inference drifted",
            p.name
        );
        assert_eq!(
            r.keys_added, p.expect.keys_added,
            "{}: keys added drifted",
            p.name
        );
        assert!(
            r.bugs_total >= p.expect.min_bugs,
            "{}: expected >= {} bugs, found {}",
            p.name,
            p.expect.min_bugs,
            r.bugs_total
        );
        if p.expect.infer_reduces {
            assert!(
                r.bugs_after_infer < r.bugs_total,
                "{}: inference did not reduce bugs ({} of {})",
                p.name,
                r.bugs_after_infer,
                r.bugs_total
            );
        }
        assert_eq!(
            r.bugs_after_fixes, p.expect.bugs_after_fixes,
            "{}: bugs after fixes",
            p.name
        );
        assert_eq!(
            r.keys_added > 0,
            p.expect.adds_keys,
            "{}: keys added = {}",
            p.name,
            r.keys_added
        );
        assert_eq!(
            r.egress_spec_fix, p.expect.egress_spec_fix,
            "{}: egress-spec fix",
            p.name
        );
    }
}

#[test]
fn annotations_are_never_empty_when_bugs_were_controlled() {
    for p in bf4_corpus::all() {
        let r = verify(p.source, &VerifyOptions::default()).unwrap();
        let controlled = r
            .bugs
            .iter()
            .filter(|b| b.status == bf4_core::BugStatus::Controlled)
            .count();
        if controlled > 0 && !r.egress_spec_fix {
            assert!(
                !r.annotations.specs.is_empty(),
                "{}: {} controlled bugs but no annotations",
                p.name,
                controlled
            );
        }
    }
}

#[test]
fn fixes_only_add_keys_available_at_the_table() {
    // Every added key must resolve to an expression the control can type
    // check — re-running the frontend pipeline on the fixed program (done
    // inside verify) must never error, and the annotation descriptors must
    // list the new keys.
    for p in bf4_corpus::all() {
        let r = verify(p.source, &VerifyOptions::default()).unwrap();
        for fix in &r.fixes {
            if fix.keys.is_empty() {
                continue;
            }
            let desc = r
                .annotations
                .tables
                .iter()
                .find(|t| t.table == fix.table)
                .unwrap_or_else(|| panic!("{}: no descriptor for {}", p.name, fix.table));
            // The fixed table's descriptor must have at least original+added
            // keys.
            assert!(
                desc.keys.len() > fix.keys.len() || desc.keys.len() >= fix.keys.len(),
                "{}: descriptor for {} lost keys",
                p.name,
                fix.table
            );
        }
    }
}

#[test]
fn dataplane_bugs_are_reported_uncontrolled() {
    for name in ["mplb_router", "linearroad"] {
        let p = bf4_corpus::by_name(name).unwrap();
        let r = verify(p.source, &VerifyOptions::default()).unwrap();
        let uncontrolled = r
            .bugs
            .iter()
            .filter(|b| b.status == bf4_core::BugStatus::Uncontrolled)
            .count();
        assert_eq!(
            uncontrolled, p.expect.bugs_after_fixes,
            "{name}: dataplane bug accounting"
        );
    }
}

#[test]
fn fabric_switch_case_studies_hold() {
    // The three §5.1 case studies on the switch.p4 stand-in.
    let p = bf4_corpus::largest();
    let r = verify(p.source, &VerifyOptions::default()).unwrap();
    // (1) validate_outer_ethernet bugs controlled by existing keys.
    assert!(r
        .bugs
        .iter()
        .any(|b| b.table.as_deref() == Some("validate_outer_ethernet")
            && b.status == bf4_core::BugStatus::Controlled));
    // (2) fabric_ingress_dst_lkp needs a validity-key fix.
    let fabric_fix = r
        .fixes
        .iter()
        .find(|f| f.table == "fabric_ingress_dst_lkp")
        .expect("fabric fix");
    assert!(fabric_fix
        .keys
        .iter()
        .any(|k| k == "hdr.fabric_header.$valid"));
    // (3) the egress-spec special drop fix.
    assert!(r.egress_spec_fix);
    // End state: bug-free.
    assert_eq!(r.bugs_after_fixes, 0);
}

#[test]
fn egress_analysis_runs_in_separation() {
    // §4.6: bf4 analyzes ingress and egress separately. fabric_switch has
    // real egress tables (smac rewrite, vlan push); including egress must
    // find at least as many bugs and never error.
    let p = bf4_corpus::largest();
    let ingress_only = verify(p.source, &VerifyOptions::default()).unwrap();
    let both = verify(
        p.source,
        &VerifyOptions {
            include_egress: true,
            ..VerifyOptions::default()
        },
    )
    .unwrap();
    assert!(both.bugs_total >= ingress_only.bugs_total);
    // The merged annotation artifact still round-trips.
    let text = both.annotations.to_string();
    let parsed = bf4_core::specs::AnnotationFile::parse(&text).unwrap();
    assert_eq!(parsed.specs.len(), both.annotations.specs.len());
}

#[test]
fn verification_is_deterministic() {
    // Two runs of the full pipeline must produce identical counts and
    // identical annotation text (Z3 is deterministic per build; our own
    // passes use ordered containers where order matters).
    let p = bf4_corpus::by_name("simple_nat").unwrap();
    let a = verify(p.source, &VerifyOptions::default()).unwrap();
    let b = verify(p.source, &VerifyOptions::default()).unwrap();
    assert_eq!(a.bugs_total, b.bugs_total);
    assert_eq!(a.bugs_after_infer, b.bugs_after_infer);
    assert_eq!(a.bugs_after_fixes, b.bugs_after_fixes);
    assert_eq!(a.keys_added, b.keys_added);
    assert_eq!(a.annotations.to_string(), b.annotations.to_string());
}
