//! Counterexample replay: a bug model from the static verifier becomes a
//! concrete packet + single-rule snapshot, and the dataplane interpreter
//! reproduces the bug — closing the loop between the verifier and the
//! simulated target.

use bf4_core::reach::{bug_model, ReachAnalysis};
use bf4_ir::{lower, BugKind, LowerOptions};
use bf4_sim::{snapshot_from_model, HavocSource, Interpreter, Outcome};
use bf4_smt::Assignment;

fn main() {
    let program_src = bf4_corpus::by_name("simple_nat").unwrap().source;
    let program = bf4_p4::frontend(program_src).unwrap();

    // Static side: find the §2.1 invalid-key bug and ask the solver for a
    // witness.
    let mut vcfg = lower(&program, &LowerOptions::default()).unwrap().cfg;
    bf4_ir::ssa::to_ssa(&mut vcfg);
    let ra = ReachAnalysis::new(&vcfg);
    let bugs = ra.found_bugs(&vcfg);
    let key_bug = bugs
        .iter()
        .find(|b| b.info.kind == BugKind::InvalidKeyAccess)
        .expect("nat key bug");
    let mut solver = bf4_smt::default_solver();
    let model = bug_model(&mut solver, key_bug, &[]).expect("witness model");
    println!("static verifier: bug '{}' is reachable", key_bug.info.description);

    // Dynamic side: extract the faulty rule from the model and replay.
    let icfg = lower(&program, &LowerOptions::default()).unwrap().cfg;
    let rules = snapshot_from_model(&icfg, &model);
    for (t, rs) in &rules {
        for r in rs {
            println!(
                "  model rule: table {t} action {} keys {:?} masks {:?}",
                r.action, r.key_values, r.key_masks
            );
        }
    }
    let interp = Interpreter::new(&icfg, rules);
    let mut source = HavocSource::replay(model);
    let result = interp.run(&Assignment::new(), &mut source);
    match result.outcome {
        Outcome::Bug(info) => {
            println!("replay: interpreter hit the same bug class: {}", info.kind);
            assert_eq!(info.kind, BugKind::InvalidKeyAccess);
        }
        other => panic!("replay diverged: {other:?}"),
    }
}
