//! Runnable examples exercising the bf4 public API end to end:
//!
//! * `quickstart` — verify the paper's running example and print the
//!   found bugs, inferred annotations and proposed fixes;
//! * `nat_fix_roundtrip` — apply the proposed key fixes and show the
//!   re-verified program is bug-free;
//! * `shim_filter` — load the emitted annotations into the runtime shim
//!   and filter a stream of controller updates (the §2.1 faulty rule gets
//!   rejected with an exception);
//! * `counterexample_replay` — turn a static counterexample model into a
//!   concrete packet + snapshot and replay it on the dataplane
//!   interpreter, hitting the same bug.
//!
//! Run with `cargo run -p bf4-examples --example <name>`.
