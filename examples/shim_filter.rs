//! Runtime filtering: compile-time annotations feed the shim, which then
//! vets controller updates in microseconds (§4.4/§5.3). The §2.1 faulty
//! rule — "ipv4 invalid but srcAddr mask non-zero" — throws an exception.

use bf4_core::{verify, VerifyOptions};
use bf4_shim::{RuleUpdate, Shim, ShimError, Update};

fn main() {
    let program = bf4_corpus::by_name("simple_nat").unwrap();
    let report = verify(program.source, &VerifyOptions::default()).unwrap();

    // The annotation artifact round-trips through its SQL-like text form,
    // exactly as it would be shipped to the controller host.
    let text = report.annotations.to_string();
    let mut shim = Shim::from_text(&text).expect("parse annotations");
    let nat = shim
        .table_names()
        .into_iter()
        .find(|t| t.ends_with(".nat"))
        .unwrap();

    println!("=== shim filtering on {} ===", nat);

    // A sane NAT rule: matches valid ipv4+tcp, full masks.
    let good = Update::Insert {
        table: nat.clone(),
        rule: RuleUpdate {
            key_values: vec![0, 1, 1, 0x0a00_0001, 0x0a00_0002],
            key_masks: vec![u128::MAX, u128::MAX, u128::MAX, 0xffff_ffff, 0xffff_ffff],
            action: "nat_hit_int_to_ext".into(),
            params: vec![0xC0A8_0001, 7],
        },
    };
    match shim.apply(&good) {
        Ok(d) => println!(
            "good rule accepted as id {:?} in {:?} ({} assertions checked)",
            d.rule_id, d.latency, d.assertions_checked
        ),
        Err(e) => panic!("good rule rejected: {e}"),
    }

    // The paper's faulty rule: ipv4.isValid key = 0 with a non-zero
    // srcAddr mask — every matching packet would read an invalid header.
    let faulty = Update::Insert {
        table: nat.clone(),
        rule: RuleUpdate {
            key_values: vec![0, 0, 0, 0xC000_0000, 0],
            key_masks: vec![u128::MAX, u128::MAX, u128::MAX, 0xff00_0000, 0],
            action: "nat_hit_int_to_ext".into(),
            params: vec![0, 1],
        },
    };
    match shim.apply(&faulty) {
        Err(ShimError::AssertionViolated { assertion, .. }) => {
            println!("faulty rule rejected — exception raised to the controller:");
            println!("  violated: {assertion}");
        }
        other => panic!("faulty rule was not filtered: {other:?}"),
    }

    // A mask-zero rule on an invalid header never reads the field: safe,
    // and the annotations are maximally permissive about it.
    let safe_mask_zero = Update::Insert {
        table: nat,
        rule: RuleUpdate {
            key_values: vec![0, 0, 0, 0, 0],
            key_masks: vec![u128::MAX, u128::MAX, u128::MAX, 0, 0],
            action: "drop_".into(),
            params: vec![],
        },
    };
    match shim.apply(&safe_mask_zero) {
        Ok(_) => println!("mask-0 rule on invalid header accepted (no good run blocked)"),
        Err(e) => panic!("over-restrictive annotation: {e}"),
    }
}
