//! Fix round-trip: run the Fixes algorithm, apply the proposed keys to the
//! program, and re-verify — the paper's step (3): "If the changes are
//! accepted by the programmer, repeat step (2)."

use bf4_core::driver::build_cfg;
use bf4_core::fixes::apply_fixes;
use bf4_core::reach::{check_bugs, BugStatus, ReachAnalysis};
use bf4_core::{verify, VerifyOptions};

fn main() {
    let program = bf4_corpus::by_name("simple_nat").unwrap();

    // Step 1: find everything that can go wrong.
    let opts = VerifyOptions {
        fixes: false,
        ..VerifyOptions::default()
    };
    let before = verify(program.source, &opts).unwrap();
    println!("before fixes: {} bugs, {} after annotations",
        before.bugs_total, before.bugs_after_infer);

    // Step 2: run the full pipeline with Fixes enabled.
    let after = verify(program.source, &VerifyOptions::default()).unwrap();
    println!(
        "fixes propose {} key(s) across {} table(s):",
        after.keys_added, after.tables_modified
    );
    print!("{}", after.fix_description);

    // Step 3: apply the keys ourselves and re-check reachability from
    // scratch (demonstrating the lower-level API).
    let mut checked = bf4_p4::frontend(program.source).unwrap();
    apply_fixes(&mut checked, &after.fixes);
    let mut opts2 = VerifyOptions::default();
    opts2.lower.egress_spec_default_drop = after.egress_spec_fix;
    let (cfg, _) = build_cfg(&checked, &opts2).unwrap();
    let ra = ReachAnalysis::new(&cfg);
    let mut bugs = ra.found_bugs(&cfg);
    let mut solver = bf4_smt::default_solver();
    let stats = check_bugs(&mut solver, &mut bugs, &[], BugStatus::Reachable);
    println!(
        "\nfixed program: {} bug(s) reachable with unconstrained rules \
         (controlled by the {} emitted annotations at runtime)",
        stats.potential(),
        after.annotations.specs.len()
    );
    println!("bugs after fixes + annotations: {}", after.bugs_after_fixes);
    assert_eq!(after.bugs_after_fixes, 0, "simple_nat must end bug-free");
    println!("OK: every snapshot the shim accepts is bug-free (Thm 7.5).");
}
