//! Quickstart: verify a P4 program and inspect bf4's outputs.
//!
//! ```text
//! cargo run -p bf4-examples --example quickstart
//! ```

use bf4_core::{verify, VerifyOptions};

fn main() {
    // The paper's running example (Fig. 1): a small NAT with three
    // signature bugs.
    let program = bf4_corpus::by_name("simple_nat").expect("corpus program");

    let report = verify(program.source, &VerifyOptions::default()).expect("verification");

    println!("=== bf4 quickstart: {} ===\n", program.name);
    println!("bugs with all table rules possible : {}", report.bugs_total);
    println!("bugs after inferred annotations    : {}", report.bugs_after_infer);
    println!("bugs after proposed fixes          : {}", report.bugs_after_fixes);
    println!();

    println!("--- per-bug detail ---");
    for bug in &report.bugs {
        println!(
            "  [{}] line {:>3} {:?} — {}",
            bug.kind,
            bug.line,
            bug.status,
            bug.description
        );
    }
    println!();

    println!("--- proposed fixes (added table keys) ---");
    print!("{}", report.fix_description);
    if report.egress_spec_fix {
        println!("  + initialize egress_spec to drop at the start of ingress (§4.6)");
    }
    println!();

    println!("--- inferred controller annotations ---");
    print!("{}", report.annotations);
}
