#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, runnable offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test -q"
cargo test -q --workspace --offline

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "==> fault-injection controller smoke test"
# Drives the simulated controller's fault-injection mode through every
# ShimError path and the journal crash-recovery property, by name, so a
# filtered-out or renamed test fails loudly here.
cargo test -q -p bf4-shim --offline \
    fault_injection_exercises_every_shim_error_path \
    -- --exact controller::tests::fault_injection_exercises_every_shim_error_path
cargo test -q -p bf4-shim --offline \
    recovered_shim_decides_like_uninterrupted_run \
    -- --exact journal::tests::recovered_shim_decides_like_uninterrupted_run

echo "==> CLI solver-governance smoke test"
# A hard per-query budget must terminate and degrade, never hang or
# report bug-free: exit code 1 (bugs remain) or 0, not 2/101.
out=$(cargo run -q --release --offline -p bf4-engine --bin bf4 -- \
    crates/corpus/programs/simple_nat.p4 --timeout-ms 2000 --quiet) || [ $? -eq 1 ]
echo "$out" | head -2

echo "==> CLI parallel smoke test (--jobs 2)"
# The engine path must terminate with the same exit-code contract.
out=$(cargo run -q --release --offline -p bf4-engine --bin bf4 -- \
    crates/corpus/programs/simple_nat.p4 --jobs 2 --cache-cap 4096 --quiet) \
    || [ $? -eq 1 ]
echo "$out" | head -2

echo "==> CLI incremental-solver smoke test (--solver-mode incremental)"
# The incremental backend must keep the CLI's exit-code contract.
out=$(cargo run -q --release --offline -p bf4-engine --bin bf4 -- \
    crates/corpus/programs/simple_nat.p4 --solver-mode incremental --quiet) \
    || [ $? -eq 1 ]
echo "$out" | head -2

echo "==> engine test suite under --jobs 2"
# The engine's own differential/panic/eviction tests exercise the
# parallel scheduler; run them by name so a rename fails loudly here.
cargo test -q -p bf4-engine --offline --test engine_integration \
    parallel_reports_match_sequential_reports \
    -- --exact parallel_reports_match_sequential_reports
cargo test -q -p bf4-engine --offline --test engine_integration \
    panicking_job_degrades_one_program_without_wedging_the_pool \
    -- --exact panicking_job_degrades_one_program_without_wedging_the_pool

echo "==> incremental-solver differential suites"
# The load-bearing --solver-mode contracts by name: assumption-literal
# verdicts (and Sat models) match fresh contexts on random sessions,
# lemma flushing preserves verdicts/models, and all three backends yield
# byte-identical normalized reports through the engine.
cargo test -q -p bf4-smt --offline --test incremental_props \
    incremental_matches_fresh_context \
    -- --exact incremental_matches_fresh_context
cargo test -q -p bf4-smt --offline --lib \
    drop_learned_preserves_verdicts_and_models \
    -- --exact sat::tests::drop_learned_preserves_verdicts_and_models
cargo test -q -p bf4-engine --offline --test engine_integration \
    solver_modes_produce_identical_reports \
    -- --exact solver_modes_produce_identical_reports

echo "==> fault-injection + persistence test suites"
# The chaos/fault suites live in their own test binaries (the fault plan
# is process-global); run the load-bearing ones by name so a rename or
# filter-out fails loudly here.
cargo test -q -p bf4-engine --offline --test chaos \
    seeded_schedules_only_degrade_conservatively \
    -- --exact seeded_schedules_only_degrade_conservatively
cargo test -q -p bf4-engine --offline --test chaos \
    cache_persistence_faults_never_flip_verdicts \
    -- --exact cache_persistence_faults_never_flip_verdicts
cargo test -q -p bf4-engine --offline --test persist_props \
    mutated_record_is_dropped_never_returned_altered \
    -- --exact mutated_record_is_dropped_never_returned_altered
cargo test -q -p bf4-smt --offline --test fault_inject \
    same_seed_replays_the_same_schedule \
    -- --exact same_seed_replays_the_same_schedule
cargo test -q -p bf4-shim --offline --test journal_fault \
    fsync_fault_mid_persist_then_reopen_loses_nothing \
    -- --exact fsync_fault_mid_persist_then_reopen_loses_nothing

echo "==> sharded-shim batch suites (shard parity, crash atomicity, torn commits)"
# The line-rate shim's load-bearing properties by name: verdicts and
# digests independent of the shard count, batch apply all-or-nothing
# under a crash at any journal byte offset, and a torn group commit
# never splitting or acknowledging a batch.
cargo test -q -p bf4-shim --offline --test shard_pool \
    verdicts_and_digest_independent_of_shard_count \
    -- --exact verdicts_and_digest_independent_of_shard_count
cargo test -q -p bf4-shim --offline --test shard_pool \
    joint_specs_enforced_across_shard_boundaries \
    -- --exact joint_specs_enforced_across_shard_boundaries
cargo test -q -p bf4-shim --offline --test batch_props \
    batch_boundaries_and_neighbors_are_exact \
    -- --exact batch_boundaries_and_neighbors_are_exact
cargo test -q -p bf4-shim --offline --test batch_fault \
    torn_group_commit_never_splits_or_acks_a_batch \
    -- --exact torn_group_commit_never_splits_or_acks_a_batch

tmpdir=$(mktemp -d)
bf4d_pid=""
trap '[ -n "$bf4d_pid" ] && kill "$bf4d_pid" 2>/dev/null; rm -rf "$tmpdir"' EXIT

echo "==> tracing smoke test (--trace-out + trace-lint)"
# A traced run must emit schema-valid spans covering every instrumented
# layer; trace-lint validates each JSONL line and requires the layers,
# so a silently un-instrumented stage fails here instead of shrinking
# the trace.
out=$(cargo run -q --release --offline -p bf4-engine --bin bf4 -- \
    crates/corpus/programs/simple_nat.p4 crates/corpus/programs/multi_tenant.p4 \
    --jobs 4 --cache-cap 4096 --trace-out "$tmpdir/trace.jsonl" --quiet) \
    || [ $? -eq 1 ]
cargo run -q --release --offline -p bf4-bench --bin report -- \
    trace-lint "$tmpdir/trace.jsonl" --require-layers frontend,ir,smt,core,engine
# To a file first: piping straight into `head` races report's later
# writes against head's exit (EPIPE panic).
cargo run -q --release --offline -p bf4-bench --bin report -- \
    profile "$tmpdir/trace.jsonl" > "$tmpdir/profile.txt"
head -3 "$tmpdir/profile.txt"
grep '^cache:' "$tmpdir/profile.txt"  # the unified cache-hit accounting line

echo "==> sequential-vs-parallel corpus differential"
# Normalized corpus reports (sorted bug/degraded lines, no timings) must
# be byte-identical between --jobs 1 and a parallel cached run — the
# parallel run with tracing enabled, so observability provably cannot
# perturb reports.
cargo run -q --release --offline -p bf4-bench --bin report -- corpus \
    > "$tmpdir/seq.txt" 2>/dev/null
cargo run -q --release --offline -p bf4-bench --bin report -- corpus \
    --jobs 4 --cache-cap 65536 --trace-out "$tmpdir/corpus-trace.jsonl" \
    > "$tmpdir/par.txt" 2>/dev/null
diff -u "$tmpdir/seq.txt" "$tmpdir/par.txt"
cargo run -q --release --offline -p bf4-bench --bin report -- \
    trace-lint "$tmpdir/corpus-trace.jsonl" --require-layers frontend,ir,smt,engine
echo "differential OK ($(wc -l < "$tmpdir/seq.txt") report lines identical)"

echo "==> cross-solver-mode corpus differential"
# The same normalized corpus reports must come out of the incremental and
# portfolio backends, byte for byte — the contract that makes
# --solver-mode a pure performance knob.
cargo run -q --release --offline -p bf4-bench --bin report -- corpus \
    --solver-mode incremental --jobs 4 > "$tmpdir/inc.txt" 2>/dev/null
diff -u "$tmpdir/seq.txt" "$tmpdir/inc.txt"
cargo run -q --release --offline -p bf4-bench --bin report -- corpus \
    --solver-mode portfolio --jobs 4 > "$tmpdir/race.txt" 2>/dev/null
diff -u "$tmpdir/seq.txt" "$tmpdir/race.txt"
echo "solver-mode differential OK (oneshot = incremental = portfolio)"

echo "==> chaos gate (seeded fault schedules, conservative degradation only)"
# Three seeded schedules over the whole corpus: every report must be
# identical to the fault-free run or degraded toward Undecided/degraded —
# the gate exits 1 on any flipped verdict (and on a schedule that never
# fired). 2>/dev/null drops the injected-panic backtraces the engine
# catches by design.
cargo run -q --release --offline -p bf4-bench --bin report -- chaos \
    --seeds 11,23,37 2>/dev/null

echo "==> warm-vs-cold persistent cache smoke"
# Two corpus runs against one --cache-dir: the second must warm-start
# from the store, strictly beat the first run's hit rate, and leave every
# report byte-identical; exits 1 otherwise.
cargo run -q --release --offline -p bf4-bench --bin report -- cachebench \
    --dir "$tmpdir/cache-store" --out "$tmpdir/BENCH_cache.json"
grep -q '"preloaded": 0' "$tmpdir/BENCH_cache.json"  # cold run starts empty

echo "==> cache regress gate (fresh numbers vs committed baseline)"
# Scale-free metrics (hit rates, preload/corruption counts) may not be
# worse than bench/baselines/BENCH_cache.json beyond the tolerance band.
cargo run -q --release --offline -p bf4-bench --bin report -- regress \
    --fresh "$tmpdir/BENCH_cache.json" --baseline bench/baselines/BENCH_cache.json

echo "==> solverbench gate (incremental strictly faster, reports identical)"
# Three full corpus runs, one per --solver-mode: the incremental backend
# must strictly beat oneshot wall-clock with nonzero context reuse, and
# all three report sets must be byte-identical; exits 1 otherwise.
cargo run -q --release --offline -p bf4-bench --bin report -- solverbench \
    --jobs 4 --out "$tmpdir/BENCH_solver.json"

echo "==> solver regress gate (fresh numbers vs committed baseline)"
# Report identity, incremental speedup and context reuse may not be worse
# than bench/baselines/BENCH_solver.json beyond the band. Wall-clock
# ratios wobble on a loaded single-core box, hence the wider band.
cargo run -q --release --offline -p bf4-bench --bin report -- regress \
    --fresh "$tmpdir/BENCH_solver.json" \
    --baseline bench/baselines/BENCH_solver.json --tolerance 0.5

echo "==> shim stress campaign (BF4_FAULTS torn commits mid-burst, crash/reopen gates)"
# The staged-load campaign under an ambient chaos plan — armed from
# warmup on, strictly harsher than the fault-stage-only default. Gates
# (exit 1): zero acknowledged batches lost across the mid-campaign
# crash/reopen, zero invalid rules admitted under any injected fault,
# and group commit strictly beating one fsync per update. 2>/dev/null
# drops the injected shard-poison backtraces the shim catches by design.
BF4_FAULTS="seed=13,shim.batch_torn=%5,shim.shard_poison=%9,shim.overload=%11" \
    ./target/release/bf4 controller crates/corpus/programs/simple_nat.p4 \
    --campaign --dir "$tmpdir" --out "$tmpdir/BENCH_shim_campaign.json" \
    2>/dev/null | tail -4
grep -q '"acked_lost": 0' "$tmpdir/BENCH_shim_campaign.json"
grep -q '"invalid_admitted": 0' "$tmpdir/BENCH_shim_campaign.json"

echo "==> shimbench gate + shim regress (fresh numbers vs committed baseline)"
# The full campaign on the largest program writes BENCH_shim.json; the
# regress gate holds its scale-free metrics (group-commit speedup,
# recovery losses, audit violations, fault fires) to the committed
# baseline. Fire counts wobble with thread interleaving, hence the
# wider band.
cargo run -q --release --offline -p bf4-bench --bin report -- shimbench \
    --dir "$tmpdir" --out "$tmpdir/BENCH_shim.json" 2>/dev/null | tail -4
cargo run -q --release --offline -p bf4-bench --bin report -- regress \
    --fresh "$tmpdir/BENCH_shim.json" --baseline bench/baselines/BENCH_shim.json \
    --tolerance 0.5

echo "==> daemon test suites (incremental soundness, impact property, chaos)"
# The daemon's load-bearing suites by name, so a rename or filter-out
# fails loudly here.
cargo test -q -p bf4-daemon --offline --test daemon_integration \
    scripted_edit_sequence_matches_one_shot \
    -- --exact scripted_edit_sequence_matches_one_shot
cargo test -q -p bf4-daemon --offline --test impact_props \
    single_action_edit_impact_is_sound \
    -- --exact single_action_edit_impact_is_sound
cargo test -q -p bf4-daemon --offline --test daemon_chaos \
    faults_degrade_one_request_without_poisoning_state \
    -- --exact faults_degrade_one_request_without_poisoning_state
cargo test -q -p bf4-daemon --offline --test telemetry \
    tsdb_survives_restart_and_seeds_the_slo_window \
    -- --exact tsdb_survives_restart_and_seeds_the_slo_window
cargo test -q -p bf4-daemon --offline --test telemetry \
    request_id_tags_flow_into_every_pipeline_span \
    -- --exact request_id_tags_flow_into_every_pipeline_span

echo "==> daemon smoke (bf4d + bf4 client, incremental re-verify)"
# Start bf4d on a temp socket, submit a corpus program, edit it, and
# resubmit: the second response must be incremental (skips > 0 in the
# client summary) and its normalized report byte-identical both to the
# first verdict and to a one-shot run of the edited source.
sock="$tmpdir/bf4d.sock"
./target/release/bf4d --socket "$sock" --quiet &
bf4d_pid=$!
for _ in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ]
cp crates/corpus/programs/simple_nat.p4 "$tmpdir/watched.p4"
./target/release/bf4 client --socket "$sock" submit "$tmpdir/watched.p4" \
    --program nat --normalized \
    > "$tmpdir/daemon-v1.txt" 2> "$tmpdir/daemon-v1.log" || [ $? -eq 1 ]
printf '\n// ci daemon smoke edit\n' >> "$tmpdir/watched.p4"
./target/release/bf4 client --socket "$sock" submit "$tmpdir/watched.p4" \
    --program nat --normalized \
    > "$tmpdir/daemon-v2.txt" 2> "$tmpdir/daemon-v2.log" || [ $? -eq 1 ]
grep -Eq 'skips=[1-9]' "$tmpdir/daemon-v2.log"  # second submit was incremental
./target/release/report normalize "$tmpdir/watched.p4" --name nat \
    > "$tmpdir/daemon-oneshot.txt"
diff -u "$tmpdir/daemon-oneshot.txt" "$tmpdir/daemon-v2.txt"
diff -u "$tmpdir/daemon-v1.txt" "$tmpdir/daemon-v2.txt"
./target/release/bf4 client --socket "$sock" shutdown
wait "$bf4d_pid"
bf4d_pid=""
echo "daemon smoke OK"

echo "==> operational telemetry smoke (metrics exposition, request profile, SLO, tsdb)"
# One bf4d with the full telemetry surface on. The loop under test:
# submit -> the metrics op and the HTTP endpoint serve the same parseable
# exposition (the scrape is a curl-free raw TCP GET) -> the daemon trace
# reconstructs one request's flame by ID and passes the daemon-aware
# lint -> a BF4_FAULTS-degraded daemon writes a sample that trips the
# `report slo` gate -> the time-series survives a restart.
sock="$tmpdir/bf4d-telemetry.sock"
obsdir="$tmpdir/telemetry-store"
tsdb="$obsdir/tsdb.bf4t"
metrics_port=$((19000 + RANDOM % 2000))
./target/release/bf4d --socket "$sock" --cache-dir "$obsdir" \
    --trace-out "$tmpdir/bf4d-trace.jsonl" \
    --metrics-addr "127.0.0.1:$metrics_port" --slo degraded_rate=0.5 --quiet &
bf4d_pid=$!
for _ in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ]
./target/release/bf4 client --socket "$sock" submit \
    crates/corpus/programs/simple_nat.p4 --program nat \
    > "$tmpdir/telemetry-v1.txt" 2> "$tmpdir/telemetry-v1.log" || [ $? -eq 1 ]
grep -q '\[req-1\]' "$tmpdir/telemetry-v1.txt"  # the verdict names its request
./target/release/bf4 client --socket "$sock" metrics > "$tmpdir/exposition.txt"
grep -q '^bf4_daemon_submits 1$' "$tmpdir/exposition.txt"
./target/release/report expose-lint "$tmpdir/exposition.txt"
# The HTTP endpoint must serve the same grammar; scrape it with nothing
# but bash (/dev/tcp), strip the response head, and lint the body.
exec 3<>"/dev/tcp/127.0.0.1/$metrics_port"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
cat <&3 > "$tmpdir/scrape.http"
exec 3<&- 3>&-
head -1 "$tmpdir/scrape.http" | grep -q '200 OK'
sed '1,/^[[:space:]]*$/d' "$tmpdir/scrape.http" > "$tmpdir/scrape-body.txt"
grep -q '^bf4_daemon_submits ' "$tmpdir/scrape-body.txt"
./target/release/report expose-lint "$tmpdir/scrape-body.txt"
# One bounded dashboard frame over the live daemon.
./target/release/bf4 top --socket "$sock" --iterations 1 > "$tmpdir/top.txt"
grep -q 'req/s' "$tmpdir/top.txt"
grep -Eq 'latency +p50' "$tmpdir/top.txt"
./target/release/bf4 client --socket "$sock" shutdown
wait "$bf4d_pid"
bf4d_pid=""
# The trace is request-scoped: profile exactly request req-1 and hold
# every pipeline span to the daemon lint (request span + inherited tags).
cargo run -q --release --offline -p bf4-bench --bin report -- \
    profile "$tmpdir/bf4d-trace.jsonl" --request req-1 > "$tmpdir/req1-flame.txt"
grep -q 'req-1' "$tmpdir/req1-flame.txt"
cargo run -q --release --offline -p bf4-bench --bin report -- \
    trace-lint "$tmpdir/bf4d-trace.jsonl" --require-layers daemon,frontend,core,smt
# A forced-degraded daemon (every solver query times out under
# BF4_FAULTS) appends a degraded sample to the same series. The submit is
# a program the warmed cache has never seen, so the injected timeouts
# actually reach the solver; the SLO window seeds with the store's one
# healthy sample, so the threshold sits below the resulting rate of 1/2.
BF4_FAULTS="seed=7,smt.timeout=p1" ./target/release/bf4d --socket "$sock" \
    --cache-dir "$obsdir" --no-cache-persist --slo degraded_rate=0.4 --quiet &
bf4d_pid=$!
for _ in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ]
./target/release/bf4 client --socket "$sock" submit \
    crates/corpus/programs/multi_tenant.p4 --program mt \
    > "$tmpdir/telemetry-degraded.log" 2>&1 || [ $? -eq 1 ]
grep -Eq '[1-9] degraded stage' "$tmpdir/telemetry-degraded.log"
./target/release/bf4 client --socket "$sock" stats > "$tmpdir/telemetry-stats.txt"
grep -Eq '^alerts: [1-9]' "$tmpdir/telemetry-stats.txt"  # the daemon raised it live
./target/release/bf4 client --socket "$sock" shutdown
wait "$bf4d_pid"
bf4d_pid=""
# ...and the offline SLO gate over the persisted series must fire on it.
if ./target/release/report slo "$tsdb" --slo degraded_rate=0.5 --window 1 \
    > "$tmpdir/slo.txt"; then
    echo "report slo failed to flag the degraded request"; exit 1
fi
grep -q '^VIOLATION' "$tmpdir/slo.txt"
# The series survives a restart: a fresh daemon on the same store seeds
# from it and appends exactly one more sample.
lines_before=$(wc -l < "$tsdb")
./target/release/bf4d --socket "$sock" --cache-dir "$obsdir" \
    --no-cache-persist --quiet &
bf4d_pid=$!
for _ in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ]
./target/release/bf4 client --socket "$sock" submit \
    crates/corpus/programs/simple_nat.p4 --program nat \
    > /dev/null 2>&1 || [ $? -eq 1 ]
./target/release/bf4 client --socket "$sock" shutdown
wait "$bf4d_pid"
bf4d_pid=""
[ "$(wc -l < "$tsdb")" -eq $((lines_before + 1)) ]
./target/release/report slo "$tsdb" --slo p99_ms=600000 --window 1 | grep -q '^slo OK'
echo "telemetry smoke OK"

echo "==> daemonbench gate (warm incremental strictly faster, verdicts identical)"
cargo run -q --release --offline -p bf4-bench --bin report -- daemonbench \
    --out "$tmpdir/BENCH_daemon.json"

echo "==> daemon regress gate (fresh numbers vs committed baseline)"
# Verdict identity, speedup, skip counts and the telemetry overhead may
# not be worse than bench/baselines/BENCH_daemon.json beyond the band.
cargo run -q --release --offline -p bf4-bench --bin report -- regress \
    --fresh "$tmpdir/BENCH_daemon.json" --baseline bench/baselines/BENCH_daemon.json

echo "==> BF4_FAULTS CLI smoke + fault audit"
# The CLI must honor a BF4_FAULTS schedule end to end: same exit-code
# contract, and the injected sites auditable from the trace afterwards.
out=$(BF4_FAULTS="seed=5,smt.backend_error=p0.2" \
    cargo run -q --release --offline -p bf4-engine --bin bf4 -- \
    crates/corpus/programs/simple_nat.p4 --jobs 2 --cache-cap 4096 \
    --trace-out "$tmpdir/faults.jsonl" --quiet 2>/dev/null) || [ $? -eq 1 ]
cargo run -q --release --offline -p bf4-bench --bin report -- \
    faults "$tmpdir/faults.jsonl" | tail -2

echo "CI OK"
