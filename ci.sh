#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, runnable offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test -q"
cargo test -q --workspace --offline

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "==> fault-injection controller smoke test"
# Drives the simulated controller's fault-injection mode through every
# ShimError path and the journal crash-recovery property, by name, so a
# filtered-out or renamed test fails loudly here.
cargo test -q -p bf4-shim --offline \
    fault_injection_exercises_every_shim_error_path \
    -- --exact controller::tests::fault_injection_exercises_every_shim_error_path
cargo test -q -p bf4-shim --offline \
    recovered_shim_decides_like_uninterrupted_run \
    -- --exact journal::tests::recovered_shim_decides_like_uninterrupted_run

echo "==> CLI solver-governance smoke test"
# A hard per-query budget must terminate and degrade, never hang or
# report bug-free: exit code 1 (bugs remain) or 0, not 2/101.
out=$(cargo run -q --release --offline -p bf4-core --bin bf4 -- \
    crates/corpus/programs/simple_nat.p4 --timeout-ms 2000 --quiet) || [ $? -eq 1 ]
echo "$out" | head -2

echo "CI OK"
