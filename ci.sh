#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, runnable offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test -q"
cargo test -q --workspace --offline

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "==> fault-injection controller smoke test"
# Drives the simulated controller's fault-injection mode through every
# ShimError path and the journal crash-recovery property, by name, so a
# filtered-out or renamed test fails loudly here.
cargo test -q -p bf4-shim --offline \
    fault_injection_exercises_every_shim_error_path \
    -- --exact controller::tests::fault_injection_exercises_every_shim_error_path
cargo test -q -p bf4-shim --offline \
    recovered_shim_decides_like_uninterrupted_run \
    -- --exact journal::tests::recovered_shim_decides_like_uninterrupted_run

echo "==> CLI solver-governance smoke test"
# A hard per-query budget must terminate and degrade, never hang or
# report bug-free: exit code 1 (bugs remain) or 0, not 2/101.
out=$(cargo run -q --release --offline -p bf4-engine --bin bf4 -- \
    crates/corpus/programs/simple_nat.p4 --timeout-ms 2000 --quiet) || [ $? -eq 1 ]
echo "$out" | head -2

echo "==> CLI parallel smoke test (--jobs 2)"
# The engine path must terminate with the same exit-code contract.
out=$(cargo run -q --release --offline -p bf4-engine --bin bf4 -- \
    crates/corpus/programs/simple_nat.p4 --jobs 2 --cache-cap 4096 --quiet) \
    || [ $? -eq 1 ]
echo "$out" | head -2

echo "==> engine test suite under --jobs 2"
# The engine's own differential/panic/eviction tests exercise the
# parallel scheduler; run them by name so a rename fails loudly here.
cargo test -q -p bf4-engine --offline --test engine_integration \
    parallel_reports_match_sequential_reports \
    -- --exact parallel_reports_match_sequential_reports
cargo test -q -p bf4-engine --offline --test engine_integration \
    panicking_job_degrades_one_program_without_wedging_the_pool \
    -- --exact panicking_job_degrades_one_program_without_wedging_the_pool

echo "==> fault-injection + persistence test suites"
# The chaos/fault suites live in their own test binaries (the fault plan
# is process-global); run the load-bearing ones by name so a rename or
# filter-out fails loudly here.
cargo test -q -p bf4-engine --offline --test chaos \
    seeded_schedules_only_degrade_conservatively \
    -- --exact seeded_schedules_only_degrade_conservatively
cargo test -q -p bf4-engine --offline --test chaos \
    cache_persistence_faults_never_flip_verdicts \
    -- --exact cache_persistence_faults_never_flip_verdicts
cargo test -q -p bf4-engine --offline --test persist_props \
    mutated_record_is_dropped_never_returned_altered \
    -- --exact mutated_record_is_dropped_never_returned_altered
cargo test -q -p bf4-smt --offline --test fault_inject \
    same_seed_replays_the_same_schedule \
    -- --exact same_seed_replays_the_same_schedule
cargo test -q -p bf4-shim --offline --test journal_fault \
    fsync_fault_mid_persist_then_reopen_loses_nothing \
    -- --exact fsync_fault_mid_persist_then_reopen_loses_nothing

tmpdir=$(mktemp -d)
bf4d_pid=""
trap '[ -n "$bf4d_pid" ] && kill "$bf4d_pid" 2>/dev/null; rm -rf "$tmpdir"' EXIT

echo "==> tracing smoke test (--trace-out + trace-lint)"
# A traced run must emit schema-valid spans covering every instrumented
# layer; trace-lint validates each JSONL line and requires the layers,
# so a silently un-instrumented stage fails here instead of shrinking
# the trace.
out=$(cargo run -q --release --offline -p bf4-engine --bin bf4 -- \
    crates/corpus/programs/simple_nat.p4 crates/corpus/programs/multi_tenant.p4 \
    --jobs 4 --cache-cap 4096 --trace-out "$tmpdir/trace.jsonl" --quiet) \
    || [ $? -eq 1 ]
cargo run -q --release --offline -p bf4-bench --bin report -- \
    trace-lint "$tmpdir/trace.jsonl" --require-layers frontend,ir,smt,core,engine
# To a file first: piping straight into `head` races report's later
# writes against head's exit (EPIPE panic).
cargo run -q --release --offline -p bf4-bench --bin report -- \
    profile "$tmpdir/trace.jsonl" > "$tmpdir/profile.txt"
head -3 "$tmpdir/profile.txt"
grep '^cache:' "$tmpdir/profile.txt"  # the unified cache-hit accounting line

echo "==> sequential-vs-parallel corpus differential"
# Normalized corpus reports (sorted bug/degraded lines, no timings) must
# be byte-identical between --jobs 1 and a parallel cached run — the
# parallel run with tracing enabled, so observability provably cannot
# perturb reports.
cargo run -q --release --offline -p bf4-bench --bin report -- corpus \
    > "$tmpdir/seq.txt" 2>/dev/null
cargo run -q --release --offline -p bf4-bench --bin report -- corpus \
    --jobs 4 --cache-cap 65536 --trace-out "$tmpdir/corpus-trace.jsonl" \
    > "$tmpdir/par.txt" 2>/dev/null
diff -u "$tmpdir/seq.txt" "$tmpdir/par.txt"
cargo run -q --release --offline -p bf4-bench --bin report -- \
    trace-lint "$tmpdir/corpus-trace.jsonl" --require-layers frontend,ir,smt,engine
echo "differential OK ($(wc -l < "$tmpdir/seq.txt") report lines identical)"

echo "==> chaos gate (seeded fault schedules, conservative degradation only)"
# Three seeded schedules over the whole corpus: every report must be
# identical to the fault-free run or degraded toward Undecided/degraded —
# the gate exits 1 on any flipped verdict (and on a schedule that never
# fired). 2>/dev/null drops the injected-panic backtraces the engine
# catches by design.
cargo run -q --release --offline -p bf4-bench --bin report -- chaos \
    --seeds 11,23,37 2>/dev/null

echo "==> warm-vs-cold persistent cache smoke"
# Two corpus runs against one --cache-dir: the second must warm-start
# from the store, strictly beat the first run's hit rate, and leave every
# report byte-identical; exits 1 otherwise.
cargo run -q --release --offline -p bf4-bench --bin report -- cachebench \
    --dir "$tmpdir/cache-store" --out "$tmpdir/BENCH_cache.json"
grep -q '"preloaded": 0' "$tmpdir/BENCH_cache.json"  # cold run starts empty

echo "==> daemon test suites (incremental soundness, impact property, chaos)"
# The daemon's load-bearing suites by name, so a rename or filter-out
# fails loudly here.
cargo test -q -p bf4-daemon --offline --test daemon_integration \
    scripted_edit_sequence_matches_one_shot \
    -- --exact scripted_edit_sequence_matches_one_shot
cargo test -q -p bf4-daemon --offline --test impact_props \
    single_action_edit_impact_is_sound \
    -- --exact single_action_edit_impact_is_sound
cargo test -q -p bf4-daemon --offline --test daemon_chaos \
    faults_degrade_one_request_without_poisoning_state \
    -- --exact faults_degrade_one_request_without_poisoning_state

echo "==> daemon smoke (bf4d + bf4 client, incremental re-verify)"
# Start bf4d on a temp socket, submit a corpus program, edit it, and
# resubmit: the second response must be incremental (skips > 0 in the
# client summary) and its normalized report byte-identical both to the
# first verdict and to a one-shot run of the edited source.
sock="$tmpdir/bf4d.sock"
./target/release/bf4d --socket "$sock" --quiet &
bf4d_pid=$!
for _ in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ]
cp crates/corpus/programs/simple_nat.p4 "$tmpdir/watched.p4"
./target/release/bf4 client --socket "$sock" submit "$tmpdir/watched.p4" \
    --program nat --normalized \
    > "$tmpdir/daemon-v1.txt" 2> "$tmpdir/daemon-v1.log" || [ $? -eq 1 ]
printf '\n// ci daemon smoke edit\n' >> "$tmpdir/watched.p4"
./target/release/bf4 client --socket "$sock" submit "$tmpdir/watched.p4" \
    --program nat --normalized \
    > "$tmpdir/daemon-v2.txt" 2> "$tmpdir/daemon-v2.log" || [ $? -eq 1 ]
grep -Eq 'skips=[1-9]' "$tmpdir/daemon-v2.log"  # second submit was incremental
./target/release/report normalize "$tmpdir/watched.p4" --name nat \
    > "$tmpdir/daemon-oneshot.txt"
diff -u "$tmpdir/daemon-oneshot.txt" "$tmpdir/daemon-v2.txt"
diff -u "$tmpdir/daemon-v1.txt" "$tmpdir/daemon-v2.txt"
./target/release/bf4 client --socket "$sock" shutdown
wait "$bf4d_pid"
bf4d_pid=""
echo "daemon smoke OK"

echo "==> daemonbench gate (warm incremental strictly faster, verdicts identical)"
cargo run -q --release --offline -p bf4-bench --bin report -- daemonbench \
    --out "$tmpdir/BENCH_daemon.json"

echo "==> BF4_FAULTS CLI smoke + fault audit"
# The CLI must honor a BF4_FAULTS schedule end to end: same exit-code
# contract, and the injected sites auditable from the trace afterwards.
out=$(BF4_FAULTS="seed=5,smt.backend_error=p0.2" \
    cargo run -q --release --offline -p bf4-engine --bin bf4 -- \
    crates/corpus/programs/simple_nat.p4 --jobs 2 --cache-cap 4096 \
    --trace-out "$tmpdir/faults.jsonl" --quiet 2>/dev/null) || [ $? -eq 1 ]
cargo run -q --release --offline -p bf4-bench --bin report -- \
    faults "$tmpdir/faults.jsonl" | tail -2

echo "CI OK"
