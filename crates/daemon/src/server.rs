//! The `bf4d` service loop.
//!
//! Connections are served **sequentially**: one request runs the pipeline
//! at a time, so verification stays deterministic, per-request span trees
//! never interleave, and a `--trace-out` file is an ordered record of the
//! daemon's life. Clients hold a connection for as many frames as they
//! like; a clean disconnect moves on to the next connection.
//!
//! Failure model: a malformed frame gets an error response and the
//! connection lives on; an I/O error on one connection drops only that
//! connection; a `shutdown` request persists the cache, answers, and
//! returns from [`serve`].

use crate::proto::{self, Request};
use crate::Daemon;
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Where the daemon listens.
pub enum Listener {
    /// A unix-domain socket (the default transport).
    Unix(UnixListener),
    /// A TCP socket (`--tcp`).
    Tcp(TcpListener),
}

/// Default trace-file rotation cap in bytes.
pub const DEFAULT_TRACE_CAP_BYTES: u64 = 64 * 1024 * 1024;

/// Service-loop options.
#[derive(Clone, Debug, Default)]
pub struct ServeOptions {
    /// Append each request's span tree (JSONL, bf4-obs schema) here. The
    /// file is truncated when the loop starts.
    pub trace_out: Option<PathBuf>,
    /// Rotate `trace_out` once it crosses this many bytes: the full file
    /// is renamed to `<stem>.1.<ext>` (replacing any previous rotation)
    /// and tracing continues into a fresh file, so a long-lived daemon
    /// holds at most roughly two caps of trace. 0 means
    /// [`DEFAULT_TRACE_CAP_BYTES`].
    pub trace_cap_bytes: u64,
    /// Suppress per-request log lines on stderr.
    pub quiet: bool,
    /// When the HTTP metrics responder is on, the latest rendered
    /// exposition is published here after every request.
    pub metrics_share: Option<Arc<Mutex<String>>>,
}

/// Run the service loop until a `shutdown` request. Returns the number of
/// requests served.
pub fn serve(listener: Listener, daemon: &mut Daemon, opts: &ServeOptions) -> io::Result<u64> {
    if let Some(path) = &opts.trace_out {
        // Start a fresh trace; requests append to it as they complete.
        std::fs::write(path, "")?;
        flush_trace(opts); // startup spans (store warm-start) come first
    }
    loop {
        let conn = match &listener {
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        };
        let mut conn = match conn {
            Ok(c) => c,
            Err(e) => {
                bf4_obs::error("daemon", &format!("accept failed: {e}"));
                continue;
            }
        };
        match serve_connection(daemon, &mut conn, opts) {
            Ok(true) => return Ok(daemon.stats().requests),
            Ok(false) => {}
            Err(e) => {
                if !opts.quiet {
                    eprintln!("bf4d: connection error: {e}");
                }
                bf4_obs::error("daemon", &format!("connection error: {e}"));
            }
        }
    }
}

enum Conn {
    Unix(std::os::unix::net::UnixStream),
    Tcp(std::net::TcpStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// Serve one connection; `Ok(true)` means a shutdown was requested.
fn serve_connection(
    daemon: &mut Daemon,
    conn: &mut Conn,
    opts: &ServeOptions,
) -> io::Result<bool> {
    while let Some(body) = proto::read_frame(conn)? {
        let (resp, stop) = match proto::parse_request(&body) {
            Ok(req) => {
                log_request(&req, opts);
                daemon.handle(req)
            }
            Err(e) => (daemon.handle_malformed(e), false),
        };
        proto::write_frame(conn, &proto::encode_response(&resp))?;
        flush_trace(opts);
        if let Some(share) = &opts.metrics_share {
            let text = daemon.render_metrics();
            if let Ok(mut slot) = share.lock() {
                *slot = text;
            }
        }
        if stop {
            return Ok(true);
        }
    }
    Ok(false)
}

fn log_request(req: &Request, opts: &ServeOptions) {
    if opts.quiet {
        return;
    }
    match req {
        Request::Submit { program, source } => {
            eprintln!("bf4d: submit {program} ({} byte(s))", source.len());
        }
        Request::Status { program } => eprintln!("bf4d: status {program}"),
        Request::Stats => eprintln!("bf4d: stats"),
        Request::Metrics => eprintln!("bf4d: metrics"),
        Request::Ping => eprintln!("bf4d: ping"),
        Request::Shutdown => eprintln!("bf4d: shutdown"),
    }
}

/// Drain finished spans and append them to the trace file. Sequential
/// service means each drain holds exactly the frames completed since the
/// last one, so the file interleaves requests in service order. Once the
/// file crosses the rotation cap it is renamed aside and a fresh file
/// takes over — requests are never split across the boundary because
/// rotation happens between drains.
fn flush_trace(opts: &ServeOptions) {
    let Some(path) = &opts.trace_out else {
        return;
    };
    let records = bf4_obs::take_spans();
    if records.is_empty() {
        return;
    }
    append_jsonl(path, &bf4_obs::render_jsonl(&records));
    let cap = if opts.trace_cap_bytes == 0 {
        DEFAULT_TRACE_CAP_BYTES
    } else {
        opts.trace_cap_bytes
    };
    let over = std::fs::metadata(path).map(|m| m.len() > cap).unwrap_or(false);
    if over {
        let aside = rotated_path(path);
        match std::fs::rename(path, &aside) {
            Ok(()) => {
                // The rotation itself is traced: the fresh file opens
                // with a span recording what was rotated away.
                {
                    let mut sp = bf4_obs::span("daemon", "trace_rotate");
                    if sp.is_active() {
                        sp.add_tag("rotated_to", aside.display().to_string());
                    }
                }
                let marker = bf4_obs::take_spans();
                if !marker.is_empty() {
                    append_jsonl(path, &bf4_obs::render_jsonl(&marker));
                }
            }
            Err(e) => bf4_obs::error("daemon", &format!("trace rotation failed: {e}")),
        }
    }
}

/// `trace.jsonl` → `trace.1.jsonl` (extension-less files get `.1`
/// appended).
fn rotated_path(path: &Path) -> PathBuf {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let name = match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{stem}.1.{ext}"),
        None => format!("{stem}.1"),
    };
    path.with_file_name(name)
}

fn append_jsonl(path: &Path, jsonl: &str) {
    let res = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(path)
        .and_then(|mut f| f.write_all(jsonl.as_bytes()));
    if let Err(e) = res {
        bf4_obs::error("daemon", &format!("trace append failed: {e}"));
    }
}
