//! The `bf4d` service loop.
//!
//! Connections are served **sequentially**: one request runs the pipeline
//! at a time, so verification stays deterministic, per-request span trees
//! never interleave, and a `--trace-out` file is an ordered record of the
//! daemon's life. Clients hold a connection for as many frames as they
//! like; a clean disconnect moves on to the next connection.
//!
//! Failure model: a malformed frame gets an error response and the
//! connection lives on; an I/O error on one connection drops only that
//! connection; a `shutdown` request persists the cache, answers, and
//! returns from [`serve`].

use crate::proto::{self, Request};
use crate::Daemon;
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;

/// Where the daemon listens.
pub enum Listener {
    /// A unix-domain socket (the default transport).
    Unix(UnixListener),
    /// A TCP socket (`--tcp`).
    Tcp(TcpListener),
}

/// Service-loop options.
#[derive(Clone, Debug, Default)]
pub struct ServeOptions {
    /// Append each request's span tree (JSONL, bf4-obs schema) here. The
    /// file is truncated when the loop starts.
    pub trace_out: Option<PathBuf>,
    /// Suppress per-request log lines on stderr.
    pub quiet: bool,
}

/// Run the service loop until a `shutdown` request. Returns the number of
/// requests served.
pub fn serve(listener: Listener, daemon: &mut Daemon, opts: &ServeOptions) -> io::Result<u64> {
    if let Some(path) = &opts.trace_out {
        // Start a fresh trace; requests append to it as they complete.
        std::fs::write(path, "")?;
        flush_trace(opts); // startup spans (store warm-start) come first
    }
    loop {
        let conn = match &listener {
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        };
        let mut conn = match conn {
            Ok(c) => c,
            Err(e) => {
                bf4_obs::error("daemon", &format!("accept failed: {e}"));
                continue;
            }
        };
        match serve_connection(daemon, &mut conn, opts) {
            Ok(true) => return Ok(daemon.stats().requests),
            Ok(false) => {}
            Err(e) => {
                if !opts.quiet {
                    eprintln!("bf4d: connection error: {e}");
                }
                bf4_obs::error("daemon", &format!("connection error: {e}"));
            }
        }
    }
}

enum Conn {
    Unix(std::os::unix::net::UnixStream),
    Tcp(std::net::TcpStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// Serve one connection; `Ok(true)` means a shutdown was requested.
fn serve_connection(
    daemon: &mut Daemon,
    conn: &mut Conn,
    opts: &ServeOptions,
) -> io::Result<bool> {
    while let Some(body) = proto::read_frame(conn)? {
        let (resp, stop) = match proto::parse_request(&body) {
            Ok(req) => {
                log_request(&req, opts);
                daemon.handle(req)
            }
            Err(e) => (daemon.handle_malformed(e), false),
        };
        proto::write_frame(conn, &proto::encode_response(&resp))?;
        flush_trace(opts);
        if stop {
            return Ok(true);
        }
    }
    Ok(false)
}

fn log_request(req: &Request, opts: &ServeOptions) {
    if opts.quiet {
        return;
    }
    match req {
        Request::Submit { program, source } => {
            eprintln!("bf4d: submit {program} ({} byte(s))", source.len());
        }
        Request::Status { program } => eprintln!("bf4d: status {program}"),
        Request::Stats => eprintln!("bf4d: stats"),
        Request::Ping => eprintln!("bf4d: ping"),
        Request::Shutdown => eprintln!("bf4d: shutdown"),
    }
}

/// Drain finished spans and append them to the trace file. Sequential
/// service means each drain holds exactly the frames completed since the
/// last one, so the file interleaves requests in service order.
fn flush_trace(opts: &ServeOptions) {
    let Some(path) = &opts.trace_out else {
        return;
    };
    let records = bf4_obs::take_spans();
    if records.is_empty() {
        return;
    }
    let jsonl = bf4_obs::render_jsonl(&records);
    let res = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(path)
        .and_then(|mut f| f.write_all(jsonl.as_bytes()));
    if let Err(e) = res {
        bf4_obs::error("daemon", &format!("trace append failed: {e}"));
    }
}
