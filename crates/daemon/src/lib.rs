#![warn(missing_docs)]

//! # bf4-daemon — `bf4d`, the incremental verification service
//!
//! A long-running server that accepts program submissions and
//! re-verification requests over a length-prefixed JSON protocol (unix
//! socket, or TCP with `--tcp`) and answers each by running the existing
//! pipeline **incrementally**:
//!
//! * [`impact`] — per-bug identity + slice/condition fingerprints, the
//!   change-impact oracle built on `bf4-ir`'s slicer;
//! * [`incremental`] — the sequential driver's round loop with round-1
//!   verdict reuse for bugs whose fingerprint is unchanged;
//! * [`proto`] — the wire protocol (4-byte big-endian length prefix +
//!   one JSON object per frame);
//! * [`server`] — the accept loop over a unix or TCP listener.
//!
//! Per-program state (version counter, last report, stored verdicts) is
//! kept in memory; the shared [`QueryCache`] is warm-started once from a
//! persistent [`Store`] at startup and saved back at shutdown, so repeat
//! queries are warm across requests *and* daemon restarts.
//!
//! Failure model: each submission runs under `catch_unwind` with the
//! same degraded-report semantics as `verify_isolated`. A degraded or
//! failed run drops that program's stored verdicts (never reused) while
//! every other program's state is untouched.

pub mod impact;
pub mod incremental;
pub mod proto;
pub mod server;

use crate::incremental::{verify_incremental, IncrementalOutcome, VerdictMap};
use bf4_core::driver::{Report, VerifyOptions};
use bf4_engine::{normalized_report, PersistStats, QueryCache, Store};
use bf4_obs::slo::SloSpec;
use bf4_obs::tsdb::{self, Tsdb};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// How a daemon is sized and where its cache persists.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Pipeline options every submission is verified with.
    pub options: VerifyOptions,
    /// Query-cache capacity in entries (0 disables caching).
    pub cache_cap: usize,
    /// Persistent store directory, warm-started once at startup. Also
    /// hosts the per-request time-series (`tsdb.bf4t`) when set.
    pub cache_dir: Option<PathBuf>,
    /// Save the cache back to `cache_dir` at shutdown.
    pub cache_persist: bool,
    /// Service-level objectives evaluated after every submission over
    /// the sliding window of recent requests.
    pub slo: Option<SloSpec>,
    /// Requests per SLO evaluation window.
    pub slo_window: usize,
    /// Ring cap of the time-series file in bytes
    /// (0 = [`tsdb::DEFAULT_CAP_BYTES`]).
    pub tsdb_cap_bytes: u64,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            options: VerifyOptions::default(),
            cache_cap: 65536,
            cache_dir: None,
            cache_persist: false,
            slo: None,
            slo_window: 64,
            tsdb_cap_bytes: 0,
        }
    }
}

/// Per-program daemon state.
struct ProgramState {
    version: u64,
    report: Report,
    normalized: String,
    verdicts: VerdictMap,
    last_skips: u64,
    last_reverified: u64,
    last_wall: Duration,
}

/// Daemon-level request counters (the obs layer mirrors them as typed
/// counters: `daemon.requests`, `daemon.incremental_skips`,
/// `daemon.full_reverifies`).
#[derive(Clone, Copy, Debug, Default)]
pub struct DaemonStats {
    /// Protocol requests handled (any op).
    pub requests: u64,
    /// Submissions verified (including degraded ones).
    pub submits: u64,
    /// Requests answered with a protocol-level error.
    pub errors: u64,
    /// Round-1 bug checks answered from stored verdicts.
    pub incremental_skips: u64,
    /// Round-1 bug checks that ran the solver.
    pub full_reverifies: u64,
    /// Submissions whose report carried a degraded stage.
    pub degraded_submits: u64,
    /// SLO violations raised over the daemon's lifetime (each violating
    /// objective per evaluation counts once).
    pub alerts: u64,
}

/// What one submission produced, for protocol encoding and benches.
pub struct SubmitOutcome {
    /// Program name the state is keyed under.
    pub program: String,
    /// Version counter after this submission (1-based).
    pub version: u64,
    /// The protocol request ID this outcome answered (`req-<n>`, unique
    /// within one daemon lifetime; empty for in-process [`Daemon::submit`]
    /// calls that bypass [`Daemon::handle`]).
    pub request: String,
    /// The full report.
    pub report: Report,
    /// [`bf4_engine::normalized_report`] rendering of `report` — the
    /// byte-comparable form the soundness gate diffs against one-shot
    /// runs.
    pub normalized: String,
    /// Bugs answered from stored verdicts in this submission.
    pub skips: u64,
    /// Bugs re-verified with the solver in this submission.
    pub reverified: u64,
    /// Wall-clock time of the submission.
    pub wall: Duration,
}

/// The daemon: program registry + shared query cache + counters. The
/// service loop in [`server`] owns one and feeds it decoded requests;
/// benches and tests drive it in-process.
pub struct Daemon {
    config: DaemonConfig,
    cache: Arc<QueryCache>,
    store: Option<Store>,
    persist: Option<PersistStats>,
    programs: HashMap<String, ProgramState>,
    stats: DaemonStats,
    /// Counter behind the `req-<n>` request IDs.
    next_request: u64,
    /// The persistent per-request series, when a `cache_dir` hosts one.
    tsdb: Option<Tsdb>,
    /// Sliding window of recent submissions for SLO evaluation (seeded
    /// from the series tail at startup, so objectives see across
    /// restarts).
    window: VecDeque<tsdb::Sample>,
    /// Series lines dropped as corrupt when the window was seeded.
    tsdb_corrupt: u64,
    /// Violations raised by the most recent SLO evaluation.
    active_alerts: u64,
}

impl Daemon {
    /// Build a daemon, warm-starting the query cache from
    /// `config.cache_dir` if set. Store open failures degrade to a cold
    /// cache, never to a failed daemon.
    pub fn new(config: DaemonConfig) -> Daemon {
        let cache = QueryCache::new(config.cache_cap);
        let mut store = None;
        let mut persist = None;
        if let Some(dir) = &config.cache_dir {
            match Store::open(dir, &cache) {
                Ok((s, load)) => {
                    store = Some(s);
                    persist = Some(PersistStats::from_load(&load));
                }
                Err(e) => {
                    bf4_obs::error("daemon", &format!("cache store open failed: {e}"));
                    persist = Some(PersistStats {
                        io_errors: 1,
                        ..PersistStats::default()
                    });
                }
            }
        }
        let mut db = None;
        let mut window = VecDeque::new();
        let mut tsdb_corrupt = 0;
        if let Some(dir) = &config.cache_dir {
            let t = Tsdb::open(dir.join(tsdb::TSDB_FILE), config.tsdb_cap_bytes);
            // Seed the SLO window from the series tail so objectives
            // evaluate across restarts; a corrupt or missing series
            // degrades to an empty window, never a failed daemon.
            match tsdb::load(t.path()) {
                Ok(loaded) => {
                    tsdb_corrupt = loaded.corrupt_records;
                    let skip = loaded.samples.len().saturating_sub(config.slo_window.max(1));
                    window.extend(loaded.samples.into_iter().skip(skip));
                }
                Err(e) => {
                    bf4_obs::error("daemon", &format!("time-series load failed: {e}"));
                }
            }
            db = Some(t);
        }
        Daemon {
            config,
            cache,
            store,
            persist,
            programs: HashMap::new(),
            stats: DaemonStats::default(),
            next_request: 0,
            tsdb: db,
            window,
            tsdb_corrupt,
            active_alerts: 0,
        }
    }

    /// The shared query cache (for stats surfaces).
    pub fn cache(&self) -> &Arc<QueryCache> {
        &self.cache
    }

    /// Persistent-store outcome so far, when a store is configured.
    pub fn persist_stats(&self) -> Option<PersistStats> {
        self.persist
    }

    /// Daemon-level counters.
    pub fn stats(&self) -> DaemonStats {
        self.stats
    }

    /// Names of programs with resident state, sorted.
    pub fn program_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.programs.keys().cloned().collect();
        names.sort();
        names
    }

    /// Verify a (new version of a) program. Mirrors `verify_isolated`'s
    /// failure semantics: a frontend error or pipeline panic yields a
    /// degraded report, recorded as the program's current state with its
    /// stored verdicts dropped — a degraded run must never seed the next
    /// version's reuse. Other programs' state is untouched either way.
    pub fn submit(&mut self, name: &str, source: &str) -> SubmitOutcome {
        let t0 = Instant::now();
        self.stats.submits += 1;
        let prior = self
            .programs
            .get(name)
            .map(|p| p.verdicts.clone())
            .unwrap_or_default();
        let options = self.config.options.clone();
        let cache = self.cache.clone();
        let result = catch_unwind(AssertUnwindSafe(|| {
            verify_incremental(source, &options, &prior, &cache)
        }));
        let (report, verdicts, skips, reverified) = match result {
            Ok(Ok(IncrementalOutcome {
                report,
                verdicts,
                skips,
                reverified,
            })) => {
                // A degraded run may hold stale per-bug context; keep only
                // the round-1 verdicts (always definite) when clean, drop
                // everything when any stage degraded.
                if report.degraded.is_empty() {
                    (report, verdicts, skips, reverified)
                } else {
                    (report, VerdictMap::new(), skips, reverified)
                }
            }
            Ok(Err(e)) => {
                bf4_obs::error("daemon", &format!("frontend rejected {name}: {e}"));
                (
                    Report::failed("frontend", e.to_string(), t0.elapsed()),
                    VerdictMap::new(),
                    0,
                    0,
                )
            }
            Err(payload) => {
                let msg = panic_message(&*payload);
                bf4_obs::error("daemon", &format!("pipeline panicked on {name}: {msg}"));
                (
                    Report::failed("pipeline", msg, t0.elapsed()),
                    VerdictMap::new(),
                    0,
                    0,
                )
            }
        };
        self.stats.incremental_skips += skips;
        self.stats.full_reverifies += reverified;
        bf4_obs::counter_add("daemon.incremental_skips", skips);
        bf4_obs::counter_add("daemon.full_reverifies", reverified);
        let normalized = normalized_report(name, &report);
        let wall = t0.elapsed();
        let version = self.programs.get(name).map(|p| p.version).unwrap_or(0) + 1;
        self.programs.insert(
            name.to_string(),
            ProgramState {
                version,
                report: report.clone(),
                normalized: normalized.clone(),
                verdicts,
                last_skips: skips,
                last_reverified: reverified,
                last_wall: wall,
            },
        );
        if !report.degraded.is_empty() {
            self.stats.degraded_submits += 1;
        }
        SubmitOutcome {
            program: name.to_string(),
            version,
            request: String::new(),
            report,
            normalized,
            skips,
            reverified,
            wall,
        }
    }

    /// The last verdict for `name`, if it was ever submitted.
    pub fn status(&self, name: &str) -> Option<SubmitOutcome> {
        self.programs.get(name).map(|p| SubmitOutcome {
            program: name.to_string(),
            version: p.version,
            request: String::new(),
            report: p.report.clone(),
            normalized: p.normalized.clone(),
            skips: p.last_skips,
            reverified: p.last_reverified,
            wall: p.last_wall,
        })
    }

    /// Handle one decoded protocol request. Mints the request ID, opens
    /// the `daemon.request` span every pipeline span of the submission
    /// nests under (all carrying the ID via an ambient context tag — the
    /// service loop is sequential, so the whole pipeline runs on this
    /// thread), and keeps the typed daemon counters plus the per-request
    /// telemetry record. Returns the response and whether the caller
    /// should shut the service down.
    pub fn handle(&mut self, req: proto::Request) -> (proto::Response, bool) {
        self.next_request += 1;
        let request_id = format!("req-{}", self.next_request);
        let mut sp = bf4_obs::span("daemon", "request");
        if sp.is_active() {
            sp.add_tag("request", &request_id);
        }
        let _ctx = bf4_obs::ctx_tag("request", &request_id);
        self.stats.requests += 1;
        bf4_obs::counter_add("daemon.requests", 1);
        match req {
            proto::Request::Ping => {
                if sp.is_active() {
                    sp.add_tag("op", "ping");
                }
                (proto::Response::Pong, false)
            }
            proto::Request::Submit { program, source } => {
                if sp.is_active() {
                    sp.add_tag("op", "submit");
                    sp.add_tag("program", &program);
                }
                let cache_before = self.cache.stats();
                let mut out = self.submit(&program, &source);
                out.request = request_id.clone();
                if sp.is_active() {
                    sp.add_tag("skips", out.skips.to_string());
                    sp.add_tag("reverified", out.reverified.to_string());
                }
                self.record_submit(&out, &cache_before);
                (proto::Response::Verdict(Box::new(out)), false)
            }
            proto::Request::Status { program } => {
                if sp.is_active() {
                    sp.add_tag("op", "status");
                    sp.add_tag("program", &program);
                }
                match self.status(&program) {
                    Some(mut out) => {
                        out.request = request_id.clone();
                        (proto::Response::Verdict(Box::new(out)), false)
                    }
                    None => {
                        self.stats.errors += 1;
                        (
                            proto::Response::Error {
                                error: format!("unknown program `{program}`"),
                            },
                            false,
                        )
                    }
                }
            }
            proto::Request::Stats => {
                if sp.is_active() {
                    sp.add_tag("op", "stats");
                }
                (
                    proto::Response::Stats {
                        daemon: self.stats,
                        programs: self.programs.len() as u64,
                        cache: self.cache.stats(),
                        active_alerts: self.active_alerts,
                    },
                    false,
                )
            }
            proto::Request::Metrics => {
                if sp.is_active() {
                    sp.add_tag("op", "metrics");
                }
                (
                    proto::Response::Metrics {
                        text: self.render_metrics(),
                    },
                    false,
                )
            }
            proto::Request::Shutdown => {
                if sp.is_active() {
                    sp.add_tag("op", "shutdown");
                }
                self.persist();
                (proto::Response::Shutdown, true)
            }
        }
    }

    /// Record one submission into the telemetry surfaces: the request
    /// latency histogram, the SLO window, the persistent time-series,
    /// and — when objectives are configured — the alert pipeline.
    fn record_submit(&mut self, out: &SubmitOutcome, cache_before: &bf4_engine::CacheStats) {
        bf4_obs::hist_record("daemon.request_micros", out.wall);
        let cache_now = self.cache.stats();
        let sample = tsdb::Sample {
            ts_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
                .unwrap_or(0),
            req: out.request.clone(),
            program: out.program.clone(),
            wall_micros: out.wall.as_micros().min(u64::MAX as u128) as u64,
            bugs: out.report.bugs_total as u64,
            after_fixes: out.report.bugs_after_fixes as u64,
            undecided: out.report.bugs_undecided as u64,
            skips: out.skips,
            reverified: out.reverified,
            cache_hits: cache_now.hits.saturating_sub(cache_before.hits),
            warm_hits: cache_now.warm_hits.saturating_sub(cache_before.warm_hits),
            degraded: !out.report.degraded.is_empty(),
        };
        if sample.degraded {
            bf4_obs::counter_add("daemon.degraded_submits", 1);
        }
        if let Some(db) = &self.tsdb {
            match db.append(&sample) {
                Ok(compacted) => {
                    if compacted {
                        bf4_obs::counter_add("tsdb.compactions", 1);
                    }
                }
                Err(e) => {
                    bf4_obs::error("daemon", &format!("time-series append failed: {e}"));
                    bf4_obs::counter_add("tsdb.io_errors", 1);
                }
            }
        }
        self.window.push_back(sample);
        while self.window.len() > self.config.slo_window.max(1) {
            self.window.pop_front();
        }
        if let Some(spec) = &self.config.slo {
            let window: Vec<tsdb::Sample> = self.window.iter().cloned().collect();
            let violations = spec.evaluate(&window);
            for v in &violations {
                bf4_obs::warn("slo", &format!("{v} (at {})", out.request));
            }
            self.stats.alerts += violations.len() as u64;
            bf4_obs::counter_add("slo.alerts", violations.len() as u64);
            self.active_alerts = violations.len() as u64;
            bf4_obs::gauge_set("slo.active_alerts", self.active_alerts as i64);
        }
    }

    /// Violations raised by the most recent SLO evaluation.
    pub fn active_alerts(&self) -> u64 {
        self.active_alerts
    }

    /// The SLO window currently held in memory (oldest first).
    pub fn slo_window(&self) -> Vec<tsdb::Sample> {
        self.window.iter().cloned().collect()
    }

    /// Render the Prometheus text exposition: the global metrics
    /// registry overlaid with the daemon's own authoritative counters
    /// (request/cache/SLO state), so the exposition is meaningful even
    /// while global metric collection is off.
    pub fn render_metrics(&self) -> String {
        let mut snap = bf4_obs::snapshot();
        let s = self.stats;
        let overlay: [(&'static str, u64); 8] = [
            ("daemon.requests", s.requests),
            ("daemon.submits", s.submits),
            ("daemon.errors", s.errors),
            ("daemon.incremental_skips", s.incremental_skips),
            ("daemon.full_reverifies", s.full_reverifies),
            ("daemon.degraded_submits", s.degraded_submits),
            ("slo.alerts", s.alerts),
            ("tsdb.corrupt_records", self.tsdb_corrupt),
        ];
        for (name, v) in overlay {
            snap.counters.insert(name, v);
        }
        let c = self.cache.stats();
        snap.counters.insert("cache.hits", c.hits);
        snap.counters.insert("cache.warm_hits", c.warm_hits);
        snap.counters.insert("cache.misses", c.misses);
        snap.counters.insert("cache.insertions", c.insertions);
        snap.counters.insert("cache.evictions", c.evictions);
        snap.counters.insert("cache.preloaded", c.preloaded);
        snap.gauges.insert("cache.entries", c.entries as i64);
        snap.gauges
            .insert("daemon.programs", self.programs.len() as i64);
        snap.gauges
            .insert("slo.active_alerts", self.active_alerts as i64);
        bf4_obs::expose::render(&snap)
    }

    /// Answer a malformed frame: counted as a request and an error.
    pub fn handle_malformed(&mut self, error: String) -> proto::Response {
        let mut sp = bf4_obs::span("daemon", "request");
        if sp.is_active() {
            sp.add_tag("op", "malformed");
        }
        self.stats.requests += 1;
        self.stats.errors += 1;
        bf4_obs::counter_add("daemon.requests", 1);
        proto::Response::Error { error }
    }

    /// Save the query cache back to the persistent store, when
    /// configured. Failures degrade to a stats entry.
    pub fn persist(&mut self) {
        if !self.config.cache_persist {
            return;
        }
        if let (Some(store), Some(ps)) = (&mut self.store, &mut self.persist) {
            match store.save(&self.cache) {
                Ok(saved) => ps.note_save(&saved),
                Err(e) => {
                    bf4_obs::error("daemon", &format!("cache store save failed: {e}"));
                    ps.io_errors += 1;
                }
            }
        }
    }
}

/// Render a panic payload like the driver does.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}
