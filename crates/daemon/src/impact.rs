//! Change-impact analysis for incremental re-verification.
//!
//! For every bug node of a prepared round this module derives:
//!
//! * a **stable identity** — `(kind, line, description)` plus an
//!   occurrence index among same-identity bugs in block order, so the
//!   same dataplane bug keeps its name across program versions (edits
//!   that move source lines produce new identities, which conservatively
//!   forces a re-verify);
//! * a **fingerprint** — [`bf4_ir::slice::slice_fingerprint`] of the
//!   bug node's backward slice combined with [`bf4_smt::query_key`] of
//!   its reachability condition.
//!
//! The incremental invariant rests on the fingerprint: if it is unchanged
//! between two program versions, the bug's backward slice renders
//! identically *and* its reachability condition has the same canonical
//! 128-bit key — the same key the query cache would use — so a stored
//! `Sat`/`Unsat` verdict is exactly what a fresh check would return.
//! Conversely, any edit that can change the verdict changes the
//! condition, hence the canonical key, hence the fingerprint: the bug
//! lands in the impacted set and is re-verified. The slice component
//! additionally catches structural drift early and keeps the oracle tied
//! to the slicer's dependence analysis.

use bf4_core::reach::FoundBug;
use bf4_ir::slice::slice_fingerprint;
use bf4_ir::Cfg;
use bf4_smt::query_key;
use std::collections::HashMap;

/// Identity and change fingerprint of one bug node in one prepared round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BugPrint {
    /// Stable cross-version name of the bug.
    pub identity: String,
    /// Slice + canonical-condition fingerprint; equal fingerprints mean
    /// the reachability verdict cannot have changed.
    pub fingerprint: u64,
}

fn mix(slice_fp: u64, cond_key: u128) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in slice_fp
        .to_le_bytes()
        .iter()
        .chain(cond_key.to_le_bytes().iter())
    {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Compute identity and fingerprint for every bug of a prepared round,
/// in the same order as `bugs`. `part` disambiguates the ingress and
/// egress pipelines, which are verified in separation.
pub fn bug_prints(part: &str, cfg: &Cfg, bugs: &[FoundBug]) -> Vec<BugPrint> {
    let mut occurrence: HashMap<String, usize> = HashMap::new();
    bugs.iter()
        .map(|bug| {
            let base = format!(
                "{part}|{:?}|{}|{}",
                bug.info.kind, bug.info.line, bug.info.description
            );
            let n = occurrence.entry(base.clone()).or_insert(0);
            let identity = format!("{base}#{n}");
            *n += 1;
            let fingerprint = mix(
                slice_fingerprint(cfg, bug.block),
                query_key(std::slice::from_ref(&bug.cond)),
            );
            BugPrint {
                identity,
                fingerprint,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf4_core::driver::{prepare_round, VerifyOptions};

    const PROG: &str = bf4_core::testutil::NAT_SOURCE;

    fn prints(source: &str) -> Vec<BugPrint> {
        let program = bf4_p4::frontend(source).expect("frontend");
        let prep = prepare_round(&program, &VerifyOptions::default()).expect("prepare");
        bug_prints("ingress", &prep.cfg, &prep.bugs)
    }

    #[test]
    fn identities_are_unique_and_stable() {
        let a = prints(PROG);
        let b = prints(PROG);
        assert!(!a.is_empty());
        assert_eq!(a, b);
        let mut ids: Vec<&str> = a.iter().map(|p| p.identity.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), a.len(), "identities must be unique");
    }

    #[test]
    fn comment_edit_changes_no_fingerprint() {
        let a = prints(PROG);
        let edited = format!("{PROG}\n// trailing comment\n");
        let b = prints(&edited);
        assert_eq!(a, b);
    }
}
