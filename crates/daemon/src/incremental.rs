//! Incremental re-verification: the sequential driver's round loop with
//! slice-based verdict reuse.
//!
//! The driver mirrors [`bf4_core::driver::verify_program_with`] — same
//! building blocks (`prepare_round` → per-bug reachability checks →
//! `finish_round`), same degradation accounting — with one change: on
//! round 1, a bug whose [`BugPrint`] fingerprint matches a verdict stored
//! from the previous version of the same program takes the stored
//! `Sat`/`Unsat` answer instead of running the solver. Rounds ≥ 2 (the
//! re-verification of a *fixed* program) always check everything, and
//! `Unknown` verdicts are never stored or reused, exactly like the query
//! cache.
//!
//! Soundness: a matching fingerprint implies the reachability condition
//! has the same canonical key (see [`crate::impact`]), and definite
//! verdicts are deterministic functions of that key — the same argument
//! that makes the shared query cache report-preserving, enforced here by
//! the byte-identical-normalized-report gate in the daemon tests and
//! `ci.sh`.

use crate::impact::bug_prints;
use bf4_core::driver::{
    finish_round, merge_reports, prepare_round, ReachInfo, Report, RoundResult, RoundState,
    SolverFactory, VerifyOptions,
};
use bf4_core::reach::{check_bugs, BugCheckStats, BugStatus};
use bf4_engine::{CachedSolver, QueryCache};
use bf4_p4::typecheck::Program;
use bf4_smt::{new_solver, SatResult, Solver};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// A reachability verdict remembered across program versions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoredVerdict {
    /// Fingerprint of the bug's slice + condition when the verdict ran.
    pub fingerprint: u64,
    /// The definite round-1 verdict (`Sat` or `Unsat`, never `Unknown`).
    pub verdict: SatResult,
}

/// Verdict store of one program, keyed by bug identity.
pub type VerdictMap = HashMap<String, StoredVerdict>;

/// What one incremental verification produced.
pub struct IncrementalOutcome {
    /// The report, identical (normalized) to a one-shot run.
    pub report: Report,
    /// Round-1 verdicts to remember for the next version.
    pub verdicts: VerdictMap,
    /// Round-1 bugs answered from stored verdicts.
    pub skips: u64,
    /// Round-1 bugs re-verified with the solver.
    pub reverified: u64,
}

/// Verify `source` incrementally against `prior` verdicts, mirroring
/// [`bf4_core::driver::verify`] (ingress, plus egress in separation when
/// `options.include_egress`). Frontend errors surface as `Err`, exactly
/// like the one-shot path; the caller is responsible for panic isolation.
pub fn verify_incremental(
    source: &str,
    options: &VerifyOptions,
    prior: &VerdictMap,
    cache: &Arc<QueryCache>,
) -> Result<IncrementalOutcome, bf4_p4::Error> {
    let t_total = Instant::now();
    let program = bf4_p4::frontend(source)?;
    let mut out = verify_part(&program, options, source, "ingress", prior, cache)?;
    if options.include_egress {
        let mut egress_opts = options.clone();
        egress_opts.lower.part = bf4_ir::lower::PipelinePart::Egress;
        egress_opts.include_egress = false;
        let egress = verify_part(&program, &egress_opts, source, "egress", prior, cache)?;
        merge_reports(&mut out.report, egress.report);
        out.verdicts.extend(egress.verdicts);
        out.skips += egress.skips;
        out.reverified += egress.reverified;
    }
    out.report.timings.total = t_total.elapsed();
    Ok(out)
}

/// One pipeline part of [`verify_incremental`]: the round loop of
/// `verify_program_with` with round-1 verdict reuse.
fn verify_part(
    program: &Program,
    options: &VerifyOptions,
    source: &str,
    part: &str,
    prior: &VerdictMap,
    cache: &Arc<QueryCache>,
) -> Result<IncrementalOutcome, bf4_p4::Error> {
    let solver_cfg = options.solver.clone();
    let cache_for_factory = cache.clone();
    let factory: &SolverFactory = &move || {
        Box::new(CachedSolver::owned(
            Box::new(new_solver(&solver_cfg)),
            cache_for_factory.clone(),
        )) as Box<dyn Solver>
    };

    let mut state = RoundState::new(program, options, source);
    let mut verdicts: VerdictMap = HashMap::new();
    let mut skips = 0u64;
    let mut reverified = 0u64;
    loop {
        let prep = prepare_round(&state.program, &state.options)?;
        state.begin_round(&prep);
        let mut prep = prep;
        let t0 = Instant::now();
        let mut solver = factory();
        let mut stats = BugCheckStats::default();
        // Highest-index undecided detail wins, mirroring the parallel
        // engine's per-bug accounting (pipeline.rs).
        let mut details: Vec<(usize, String)> = Vec::new();
        if state.round == 1 {
            let prints = bug_prints(part, &prep.cfg, &prep.bugs);
            for (i, bug) in prep.bugs.iter_mut().enumerate() {
                let reused = prior
                    .get(&prints[i].identity)
                    .filter(|s| s.fingerprint == prints[i].fingerprint)
                    .map(|s| s.verdict);
                match reused {
                    Some(SatResult::Sat) => {
                        bug.status = BugStatus::Reachable;
                        stats.reachable += 1;
                        skips += 1;
                    }
                    Some(SatResult::Unsat) => {
                        bug.status = BugStatus::Unreachable;
                        skips += 1;
                    }
                    _ => {
                        let s = check_bugs(
                            solver.as_mut(),
                            std::slice::from_mut(bug),
                            &[],
                            BugStatus::Reachable,
                        );
                        if s.undecided > 0 {
                            if let Some(e) = solver.last_error() {
                                details.push((i, e.to_string()));
                            }
                        }
                        stats.reachable += s.reachable;
                        stats.undecided += s.undecided;
                        reverified += 1;
                    }
                }
                // Remember the definite verdict (reused or fresh) for the
                // next version; `Undecided` is a budget artifact and is
                // never stored, like in the query cache.
                let verdict = match bug.status {
                    BugStatus::Reachable => Some(SatResult::Sat),
                    BugStatus::Unreachable => Some(SatResult::Unsat),
                    _ => None,
                };
                if let Some(verdict) = verdict {
                    verdicts.insert(
                        prints[i].identity.clone(),
                        StoredVerdict {
                            fingerprint: prints[i].fingerprint,
                            verdict,
                        },
                    );
                }
            }
        } else {
            // Rounds after a fix re-verify the *fixed* program: no stored
            // verdict applies, run the checks like the sequential driver.
            for (i, bug) in prep.bugs.iter_mut().enumerate() {
                let s = check_bugs(
                    solver.as_mut(),
                    std::slice::from_mut(bug),
                    &[],
                    BugStatus::Reachable,
                );
                if s.undecided > 0 {
                    if let Some(e) = solver.last_error() {
                        details.push((i, e.to_string()));
                    }
                }
                stats.reachable += s.reachable;
                stats.undecided += s.undecided;
            }
        }
        details.sort_by_key(|d| d.0);
        let reach = ReachInfo {
            stats,
            queries_used: solver.queries_used(),
            detail: details.pop().map(|d| d.1),
            duration: t0.elapsed(),
        };
        match finish_round(&mut state, prep, reach, solver, factory) {
            RoundResult::Continue => continue,
            RoundResult::Done(report) => {
                return Ok(IncrementalOutcome {
                    report: *report,
                    verdicts,
                    skips,
                    reverified,
                });
            }
        }
    }
}
