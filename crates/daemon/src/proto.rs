//! The `bf4d` wire protocol: one JSON object per frame, each frame
//! preceded by a 4-byte big-endian length.
//!
//! Requests (`op` selects the variant):
//!
//! ```text
//! {"op":"submit","program":"<name>","source":"<p4 source>"}
//! {"op":"status","program":"<name>"}
//! {"op":"stats"}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses are flat objects with `"ok"` first: verdicts carry the bug
//! totals, the incremental counters and the normalized report text;
//! errors carry `"error"`. Parsing uses the minimal JSON module from
//! `bf4-obs` — no new dependencies.

use crate::{DaemonStats, SubmitOutcome};
use bf4_engine::CacheStats;
use bf4_obs::json::{self, Value};
use std::io::{self, Read, Write};

/// Frames larger than this are rejected (a corrupt or hostile length
/// prefix must not trigger a giant allocation).
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// A decoded client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Verify (a new version of) a named program.
    Submit {
        /// State key; versions of the same name verify incrementally.
        program: String,
        /// Full P4 source of this version.
        source: String,
    },
    /// Fetch the last verdict of a program without re-verifying.
    Status {
        /// State key to look up.
        program: String,
    },
    /// Daemon + cache counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Persist the cache and stop the service loop.
    Shutdown,
}

/// A response to one request.
pub enum Response {
    /// Submission/status verdict.
    Verdict(Box<SubmitOutcome>),
    /// Counter snapshot.
    Stats {
        /// Daemon-level counters.
        daemon: DaemonStats,
        /// Programs with resident state.
        programs: u64,
        /// Shared query-cache counters.
        cache: CacheStats,
    },
    /// Ping reply.
    Pong,
    /// Shutdown acknowledged; the connection closes after this frame.
    Shutdown,
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        error: String,
    },
}

/// Encode a request as a JSON frame body.
pub fn encode_request(req: &Request) -> String {
    match req {
        Request::Submit { program, source } => format!(
            "{{\"op\":\"submit\",\"program\":{},\"source\":{}}}",
            json::escape(program),
            json::escape(source)
        ),
        Request::Status { program } => format!(
            "{{\"op\":\"status\",\"program\":{}}}",
            json::escape(program)
        ),
        Request::Stats => "{\"op\":\"stats\"}".to_string(),
        Request::Ping => "{\"op\":\"ping\"}".to_string(),
        Request::Shutdown => "{\"op\":\"shutdown\"}".to_string(),
    }
}

/// Decode a request frame body.
pub fn parse_request(body: &str) -> Result<Request, String> {
    let v = json::parse(body).map_err(|e| format!("malformed request JSON: {e}"))?;
    let obj = v.as_obj().ok_or("request must be a JSON object")?;
    let op = obj
        .get("op")
        .and_then(Value::as_str)
        .ok_or("request needs a string `op` field")?;
    let field = |name: &str| -> Result<String, String> {
        obj.get(name)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("op `{op}` needs a string `{name}` field"))
    };
    match op {
        "submit" => Ok(Request::Submit {
            program: field("program")?,
            source: field("source")?,
        }),
        "status" => Ok(Request::Status {
            program: field("program")?,
        }),
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Encode a response as a JSON frame body.
pub fn encode_response(resp: &Response) -> String {
    match resp {
        Response::Verdict(out) => {
            let r = &out.report;
            format!(
                "{{\"ok\":true,\"program\":{},\"version\":{},\
                 \"bugs_total\":{},\"bugs_after_infer\":{},\"bugs_after_fixes\":{},\
                 \"bugs_undecided\":{},\"degraded\":{},\
                 \"skips\":{},\"reverified\":{},\"wall_micros\":{},\
                 \"exit_code\":{},\"report\":{}}}",
                json::escape(&out.program),
                out.version,
                r.bugs_total,
                r.bugs_after_infer,
                r.bugs_after_fixes,
                r.bugs_undecided,
                r.degraded.len(),
                out.skips,
                out.reverified,
                out.wall.as_micros(),
                if r.bugs_after_fixes > 0 { 1 } else { 0 },
                json::escape(&out.normalized)
            )
        }
        Response::Stats {
            daemon,
            programs,
            cache,
        } => format!(
            "{{\"ok\":true,\"requests\":{},\"submits\":{},\"errors\":{},\
             \"programs\":{},\"skips\":{},\"reverified\":{},\
             \"cache_hits\":{},\"cache_warm_hits\":{},\"cache_misses\":{},\
             \"cache_preloaded\":{}}}",
            daemon.requests,
            daemon.submits,
            daemon.errors,
            programs,
            daemon.incremental_skips,
            daemon.full_reverifies,
            cache.hits,
            cache.warm_hits,
            cache.misses,
            cache.preloaded
        ),
        Response::Pong => "{\"ok\":true,\"pong\":true}".to_string(),
        Response::Shutdown => "{\"ok\":true,\"shutdown\":true}".to_string(),
        Response::Error { error } => {
            format!("{{\"ok\":false,\"error\":{}}}", json::escape(error))
        }
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &str) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Read one length-prefixed frame. `Ok(None)` is a clean EOF before any
/// length byte; a truncated frame is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::Submit {
                program: "p".into(),
                source: "control c() { apply {} }\n// \"quoted\"\n".into(),
            },
            Request::Status { program: "p".into() },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ];
        for req in cases {
            let body = encode_request(&req);
            assert_eq!(parse_request(&body).unwrap(), req);
        }
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\":\"ping\"}").unwrap();
        write_frame(&mut buf, "{\"op\":\"stats\"}").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{\"op\":\"ping\"}"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{\"op\":\"stats\"}"));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_not_allocated() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn malformed_request_reports_the_field() {
        let err = parse_request("{\"op\":\"submit\",\"program\":\"p\"}").unwrap_err();
        assert!(err.contains("source"), "{err}");
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"op\":\"fly\"}").unwrap_err().contains("fly"));
    }
}
