//! The `bf4d` wire protocol: one JSON object per frame, each frame
//! preceded by a 4-byte big-endian length.
//!
//! Requests (`op` selects the variant):
//!
//! ```text
//! {"op":"submit","program":"<name>","source":"<p4 source>"}
//! {"op":"status","program":"<name>"}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses are flat objects with `"ok"` first: verdicts carry the
//! request ID, the bug totals, the incremental counters and the
//! normalized report text; `metrics` carries the full Prometheus text
//! exposition; errors carry `"error"`. Parsing uses the minimal JSON
//! module from `bf4-obs` — no new dependencies.

use crate::{DaemonStats, SubmitOutcome};
use bf4_engine::CacheStats;
use bf4_obs::json::{self, Value};
use std::io::{self, Read, Write};

/// Frames larger than this are rejected (a corrupt or hostile length
/// prefix must not trigger a giant allocation).
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// A decoded client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Verify (a new version of) a named program.
    Submit {
        /// State key; versions of the same name verify incrementally.
        program: String,
        /// Full P4 source of this version.
        source: String,
    },
    /// Fetch the last verdict of a program without re-verifying.
    Status {
        /// State key to look up.
        program: String,
    },
    /// Daemon + cache counters.
    Stats,
    /// Prometheus text exposition of the metrics registry.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Persist the cache and stop the service loop.
    Shutdown,
}

/// A response to one request.
pub enum Response {
    /// Submission/status verdict.
    Verdict(Box<SubmitOutcome>),
    /// Counter snapshot.
    Stats {
        /// Daemon-level counters.
        daemon: DaemonStats,
        /// Programs with resident state.
        programs: u64,
        /// Shared query-cache counters.
        cache: CacheStats,
        /// SLO violations active after the most recent evaluation.
        active_alerts: u64,
    },
    /// The metrics exposition text.
    Metrics {
        /// Prometheus text-exposition body (`bf4_obs::expose::render`).
        text: String,
    },
    /// Ping reply.
    Pong,
    /// Shutdown acknowledged; the connection closes after this frame.
    Shutdown,
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        error: String,
    },
}

/// Encode a request as a JSON frame body.
pub fn encode_request(req: &Request) -> String {
    match req {
        Request::Submit { program, source } => format!(
            "{{\"op\":\"submit\",\"program\":{},\"source\":{}}}",
            json::escape(program),
            json::escape(source)
        ),
        Request::Status { program } => format!(
            "{{\"op\":\"status\",\"program\":{}}}",
            json::escape(program)
        ),
        Request::Stats => "{\"op\":\"stats\"}".to_string(),
        Request::Metrics => "{\"op\":\"metrics\"}".to_string(),
        Request::Ping => "{\"op\":\"ping\"}".to_string(),
        Request::Shutdown => "{\"op\":\"shutdown\"}".to_string(),
    }
}

/// Decode a request frame body.
pub fn parse_request(body: &str) -> Result<Request, String> {
    let v = json::parse(body).map_err(|e| format!("malformed request JSON: {e}"))?;
    let obj = v.as_obj().ok_or("request must be a JSON object")?;
    let op = obj
        .get("op")
        .and_then(Value::as_str)
        .ok_or("request needs a string `op` field")?;
    let field = |name: &str| -> Result<String, String> {
        obj.get(name)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("op `{op}` needs a string `{name}` field"))
    };
    match op {
        "submit" => Ok(Request::Submit {
            program: field("program")?,
            source: field("source")?,
        }),
        "status" => Ok(Request::Status {
            program: field("program")?,
        }),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Encode a response as a JSON frame body.
pub fn encode_response(resp: &Response) -> String {
    match resp {
        Response::Verdict(out) => {
            let r = &out.report;
            format!(
                "{{\"ok\":true,\"program\":{},\"version\":{},\"request\":{},\
                 \"bugs_total\":{},\"bugs_after_infer\":{},\"bugs_after_fixes\":{},\
                 \"bugs_undecided\":{},\"degraded\":{},\
                 \"skips\":{},\"reverified\":{},\"wall_micros\":{},\
                 \"exit_code\":{},\"report\":{}}}",
                json::escape(&out.program),
                out.version,
                json::escape(&out.request),
                r.bugs_total,
                r.bugs_after_infer,
                r.bugs_after_fixes,
                r.bugs_undecided,
                r.degraded.len(),
                out.skips,
                out.reverified,
                out.wall.as_micros(),
                if r.bugs_after_fixes > 0 { 1 } else { 0 },
                json::escape(&out.normalized)
            )
        }
        Response::Stats {
            daemon,
            programs,
            cache,
            active_alerts,
        } => format!(
            "{{\"ok\":true,\"requests\":{},\"submits\":{},\"errors\":{},\
             \"programs\":{},\"skips\":{},\"reverified\":{},\
             \"cache_hits\":{},\"cache_warm_hits\":{},\"cache_misses\":{},\
             \"cache_preloaded\":{},\"degraded_submits\":{},\"alerts\":{},\
             \"active_alerts\":{}}}",
            daemon.requests,
            daemon.submits,
            daemon.errors,
            programs,
            daemon.incremental_skips,
            daemon.full_reverifies,
            cache.hits,
            cache.warm_hits,
            cache.misses,
            cache.preloaded,
            daemon.degraded_submits,
            daemon.alerts,
            active_alerts
        ),
        Response::Metrics { text } => {
            format!("{{\"ok\":true,\"metrics\":{}}}", json::escape(text))
        }
        Response::Pong => "{\"ok\":true,\"pong\":true}".to_string(),
        Response::Shutdown => "{\"ok\":true,\"shutdown\":true}".to_string(),
        Response::Error { error } => {
            format!("{{\"ok\":false,\"error\":{}}}", json::escape(error))
        }
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &str) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Read one length-prefixed frame. `Ok(None)` is a clean EOF before any
/// length byte; a truncated frame is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::Submit {
                program: "p".into(),
                source: "control c() { apply {} }\n// \"quoted\"\n".into(),
            },
            Request::Status { program: "p".into() },
            Request::Stats,
            Request::Metrics,
            Request::Ping,
            Request::Shutdown,
        ];
        for req in cases {
            let body = encode_request(&req);
            assert_eq!(parse_request(&body).unwrap(), req);
        }
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\":\"ping\"}").unwrap();
        write_frame(&mut buf, "{\"op\":\"stats\"}").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{\"op\":\"ping\"}"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{\"op\":\"stats\"}"));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_not_allocated() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn frame_cap_edge_accepts_exactly_max_and_rejects_one_more() {
        // Accept side: a frame of exactly MAX_FRAME bytes round-trips.
        let body = "x".repeat(MAX_FRAME as usize);
        let mut buf = Vec::new();
        write_frame(&mut buf, &body).unwrap();
        let got = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(got.len(), MAX_FRAME as usize);
        // Reject side, writer: one byte more must fail before any bytes
        // hit the wire.
        let over = "x".repeat(MAX_FRAME as usize + 1);
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &over).is_err());
        assert!(sink.is_empty());
        // Reject side, reader: a MAX_FRAME+1 length prefix is refused
        // before allocation.
        let mut prefix = Vec::new();
        prefix.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let err = read_frame(&mut prefix.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn stats_and_metrics_responses_round_trip_through_json() {
        let stats = Response::Stats {
            daemon: DaemonStats {
                requests: 11,
                submits: 5,
                errors: 1,
                incremental_skips: 9,
                full_reverifies: 3,
                degraded_submits: 2,
                alerts: 4,
            },
            programs: 2,
            cache: CacheStats {
                hits: 20,
                warm_hits: 6,
                misses: 7,
                preloaded: 8,
                ..CacheStats::default()
            },
            active_alerts: 1,
        };
        let body = encode_response(&stats);
        let v = json::parse(&body).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj["ok"], Value::Bool(true));
        let get = |k: &str| obj[k].as_u64().unwrap();
        assert_eq!(get("requests"), 11);
        assert_eq!(get("skips"), 9);
        assert_eq!(get("cache_warm_hits"), 6);
        assert_eq!(get("degraded_submits"), 2);
        assert_eq!(get("alerts"), 4);
        assert_eq!(get("active_alerts"), 1);

        // A metrics response must carry an exposition that still parses
        // after the JSON round trip (quotes in quantile labels survive
        // the escaping).
        let mut snap = bf4_obs::MetricsSnapshot::default();
        snap.counters.insert("daemon.requests", 11);
        let mut h = bf4_obs::Histogram::default();
        h.record(std::time::Duration::from_micros(250));
        snap.hists
            .insert("daemon.request_micros", bf4_obs::HistSummary::of(&h));
        let text = bf4_obs::expose::render(&snap);
        let body = encode_response(&Response::Metrics { text: text.clone() });
        let v = json::parse(&body).unwrap();
        let decoded = v.as_obj().unwrap()["metrics"].as_str().unwrap().to_string();
        assert_eq!(decoded, text);
        let exp = bf4_obs::expose::parse(&decoded).unwrap();
        assert_eq!(exp.value("bf4_daemon_requests", &[]), Some(11.0));
        assert_eq!(
            exp.value("bf4_daemon_request_micros", &[("quantile", "0.5")]),
            Some(256.0)
        );
    }

    #[test]
    fn malformed_metrics_and_stats_frames_are_parse_errors_not_panics() {
        for bad in [
            "{\"op\":\"metrics\",}",
            "{\"op\":\"metric\"}",
            "{\"op\":42}",
            "{\"op\":\"stats\"",
            "",
        ] {
            assert!(parse_request(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn malformed_request_reports_the_field() {
        let err = parse_request("{\"op\":\"submit\",\"program\":\"p\"}").unwrap_err();
        assert!(err.contains("source"), "{err}");
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"op\":\"fly\"}").unwrap_err().contains("fly"));
    }
}
