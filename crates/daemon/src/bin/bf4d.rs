//! `bf4d` — the incremental verification daemon.
//!
//! ```text
//! bf4d --socket <path> | --tcp <addr> [options]
//!   --socket <path>        listen on a unix-domain socket (stale files are
//!                          replaced)
//!   --tcp <addr>           listen on a TCP address, e.g. 127.0.0.1:9944
//!   --cache-cap <n>        SMT query-cache capacity in entries (default 65536)
//!   --cache-dir <dir>      warm-start the query cache from a durable store in
//!                          <dir> once at startup (implies --cache-persist)
//!   --no-cache-persist     do not save the cache back to --cache-dir at
//!                          shutdown
//!   --timeout-ms <n>       per-query solver deadline in milliseconds
//!   --egress               also analyze the egress pipeline (in separation)
//!   --trace-out <file>     append each request's span tree as JSONL
//!   --trace-cap-bytes <n>  rotate --trace-out past this size (default 64 MiB)
//!   --metrics-addr <addr>  answer HTTP GETs on <addr> with the Prometheus
//!                          text exposition of the latest metrics
//!   --slo <spec>           service-level objectives, e.g.
//!                          p99_ms=500,unknown_rate=0.05 — violations raise
//!                          leveled alert events and the alerts counters
//!   --slo-window <n>       requests per SLO evaluation window (default 64)
//!   --tsdb-cap-bytes <n>   ring cap of the per-request time-series kept in
//!                          --cache-dir (default 4 MiB)
//!   --no-telemetry         disable metric collection (the metrics op then
//!                          reports only the daemon's own counters)
//!   --quiet                suppress per-request log lines
//! ```
//!
//! The daemon serves the length-prefixed JSON protocol documented in
//! `bf4_daemon::proto` until a `shutdown` request, then persists the
//! cache (unless `--no-cache-persist`) and exits 0. Talk to it with
//! `bf4 client` or any client that speaks the protocol.

use bf4_daemon::server::{serve, Listener, ServeOptions};
use bf4_daemon::{Daemon, DaemonConfig};
use bf4_obs::slo::SloSpec;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket: Option<PathBuf> = None;
    let mut tcp: Option<String> = None;
    let mut config = DaemonConfig::default();
    let mut no_cache_persist = false;
    let mut no_telemetry = false;
    let mut metrics_addr: Option<String> = None;
    let mut opts = ServeOptions::default();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => {
                i += 1;
                match args.get(i) {
                    Some(p) => socket = Some(p.into()),
                    None => usage_error("--socket expects a path"),
                }
            }
            "--tcp" => {
                i += 1;
                match args.get(i) {
                    Some(a) => tcp = Some(a.clone()),
                    None => usage_error("--tcp expects an address like 127.0.0.1:9944"),
                }
            }
            "--cache-cap" => {
                i += 1;
                match args.get(i).map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) => config.cache_cap = n,
                    _ => usage_error("--cache-cap expects a number of entries"),
                }
            }
            "--cache-dir" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => config.cache_dir = Some(dir.into()),
                    None => usage_error("--cache-dir expects a directory path"),
                }
            }
            "--no-cache-persist" => no_cache_persist = true,
            "--timeout-ms" => {
                i += 1;
                match args.get(i).map(|v| v.parse::<u64>()) {
                    Some(Ok(ms)) => {
                        config.options.solver.budget.timeout =
                            Some(std::time::Duration::from_millis(ms));
                    }
                    _ => usage_error("--timeout-ms expects a number of milliseconds"),
                }
            }
            "--egress" => config.options.include_egress = true,
            "--trace-out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => opts.trace_out = Some(p.into()),
                    None => usage_error("--trace-out expects an output path"),
                }
            }
            "--trace-cap-bytes" => {
                i += 1;
                match args.get(i).map(|v| v.parse::<u64>()) {
                    Some(Ok(n)) => opts.trace_cap_bytes = n,
                    _ => usage_error("--trace-cap-bytes expects a number of bytes"),
                }
            }
            "--metrics-addr" => {
                i += 1;
                match args.get(i) {
                    Some(a) => metrics_addr = Some(a.clone()),
                    None => usage_error("--metrics-addr expects an address like 127.0.0.1:9945"),
                }
            }
            "--slo" => {
                i += 1;
                match args.get(i).map(|v| SloSpec::parse(v)) {
                    Some(Ok(spec)) => config.slo = Some(spec),
                    Some(Err(e)) => usage_error(&format!("bad --slo spec: {e}")),
                    None => usage_error("--slo expects a spec like p99_ms=500,unknown_rate=0.05"),
                }
            }
            "--slo-window" => {
                i += 1;
                match args.get(i).map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) if n > 0 => config.slo_window = n,
                    _ => usage_error("--slo-window expects a positive number of requests"),
                }
            }
            "--tsdb-cap-bytes" => {
                i += 1;
                match args.get(i).map(|v| v.parse::<u64>()) {
                    Some(Ok(n)) => config.tsdb_cap_bytes = n,
                    _ => usage_error("--tsdb-cap-bytes expects a number of bytes"),
                }
            }
            "--no-telemetry" => no_telemetry = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: bf4d --socket PATH | --tcp ADDR [--cache-cap N] [--cache-dir DIR] \
                     [--no-cache-persist] [--timeout-ms N] [--egress] [--trace-out FILE] \
                     [--trace-cap-bytes N] [--metrics-addr ADDR] [--slo SPEC] [--slo-window N] \
                     [--tsdb-cap-bytes N] [--no-telemetry] [--quiet]"
                );
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    match (&socket, &tcp) {
        (None, None) => usage_error("one of --socket or --tcp is required"),
        (Some(_), Some(_)) => usage_error("--socket and --tcp are mutually exclusive"),
        _ => {}
    }
    // A durable store is pointless without saving back to it: --cache-dir
    // implies persistence, with --no-cache-persist as the escape hatch.
    config.cache_persist = config.cache_dir.is_some() && !no_cache_persist;

    if opts.trace_out.is_some() {
        bf4_obs::set_enabled(true);
    }
    // Metric collection is on by default for a long-running service; the
    // escape hatch restores the inert-guard fast path end to end.
    bf4_obs::set_metrics(!no_telemetry);

    let listener = match (&socket, &tcp) {
        (Some(path), None) => {
            // Replace a stale socket file from a previous run; a live
            // daemon on the same path would have to be stopped first.
            let _ = std::fs::remove_file(path);
            match UnixListener::bind(path) {
                Ok(l) => {
                    if !opts.quiet {
                        eprintln!("bf4d: listening on {}", path.display());
                    }
                    Listener::Unix(l)
                }
                Err(e) => {
                    eprintln!("bf4d: cannot bind {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
        (None, Some(addr)) => match TcpListener::bind(addr) {
            Ok(l) => {
                if !opts.quiet {
                    eprintln!("bf4d: listening on tcp {addr}");
                }
                Listener::Tcp(l)
            }
            Err(e) => {
                eprintln!("bf4d: cannot bind {addr}: {e}");
                std::process::exit(2);
            }
        },
        _ => unreachable!("validated above"),
    };

    if let Some(addr) = &metrics_addr {
        let share = Arc::new(Mutex::new(String::new()));
        match TcpListener::bind(addr) {
            Ok(l) => {
                if !opts.quiet {
                    eprintln!("bf4d: metrics on http://{addr}/metrics");
                }
                opts.metrics_share = Some(share.clone());
                std::thread::spawn(move || serve_metrics_http(l, &share));
            }
            Err(e) => {
                eprintln!("bf4d: cannot bind metrics address {addr}: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut daemon = Daemon::new(config);
    if let Some(share) = &opts.metrics_share {
        // Publish a first exposition so a scrape before the first request
        // sees the daemon's startup state rather than an empty body.
        if let Ok(mut slot) = share.lock() {
            *slot = daemon.render_metrics();
        }
    }
    match serve(listener, &mut daemon, &opts) {
        Ok(requests) => {
            if !opts.quiet {
                let stats = daemon.stats();
                eprintln!(
                    "bf4d: shutdown after {requests} request(s) ({} submit(s), \
                     {} incremental skip(s), {} re-verification(s))",
                    stats.submits, stats.incremental_skips, stats.full_reverifies
                );
            }
            if let Some(path) = &socket {
                let _ = std::fs::remove_file(path);
            }
        }
        Err(e) => {
            eprintln!("bf4d: service loop failed: {e}");
            std::process::exit(2);
        }
    }
}

/// A minimal HTTP/1.0 GET responder for `--metrics-addr`: every request
/// (any path) is answered with the latest published exposition. One
/// connection at a time is plenty for a scrape endpoint, and a slow or
/// broken scraper can never stall verification — the service loop only
/// ever touches the shared slot under a short lock.
fn serve_metrics_http(listener: TcpListener, share: &Arc<Mutex<String>>) {
    for conn in listener.incoming() {
        let Ok(mut conn) = conn else { continue };
        let _ = conn.set_read_timeout(Some(std::time::Duration::from_secs(5)));
        // Read until the end of the request head; tolerate clients that
        // send nothing but still want the body.
        let mut head = Vec::new();
        let mut buf = [0u8; 1024];
        loop {
            match conn.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    head.extend_from_slice(&buf[..n]);
                    if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 16 * 1024 {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        let body = share.lock().map(|s| s.clone()).unwrap_or_default();
        let resp = format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        );
        let _ = conn.write_all(resp.as_bytes());
        let _ = conn.flush();
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("bf4d: {msg} (try --help)");
    std::process::exit(2);
}
