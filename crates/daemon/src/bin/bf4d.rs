//! `bf4d` — the incremental verification daemon.
//!
//! ```text
//! bf4d --socket <path> | --tcp <addr> [options]
//!   --socket <path>        listen on a unix-domain socket (stale files are
//!                          replaced)
//!   --tcp <addr>           listen on a TCP address, e.g. 127.0.0.1:9944
//!   --cache-cap <n>        SMT query-cache capacity in entries (default 65536)
//!   --cache-dir <dir>      warm-start the query cache from a durable store in
//!                          <dir> once at startup (implies --cache-persist)
//!   --no-cache-persist     do not save the cache back to --cache-dir at
//!                          shutdown
//!   --timeout-ms <n>       per-query solver deadline in milliseconds
//!   --egress               also analyze the egress pipeline (in separation)
//!   --trace-out <file>     append each request's span tree as JSONL
//!   --quiet                suppress per-request log lines
//! ```
//!
//! The daemon serves the length-prefixed JSON protocol documented in
//! `bf4_daemon::proto` until a `shutdown` request, then persists the
//! cache (unless `--no-cache-persist`) and exits 0. Talk to it with
//! `bf4 client` or any client that speaks the protocol.

use bf4_daemon::server::{serve, Listener, ServeOptions};
use bf4_daemon::{Daemon, DaemonConfig};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket: Option<PathBuf> = None;
    let mut tcp: Option<String> = None;
    let mut config = DaemonConfig::default();
    let mut no_cache_persist = false;
    let mut opts = ServeOptions::default();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => {
                i += 1;
                match args.get(i) {
                    Some(p) => socket = Some(p.into()),
                    None => usage_error("--socket expects a path"),
                }
            }
            "--tcp" => {
                i += 1;
                match args.get(i) {
                    Some(a) => tcp = Some(a.clone()),
                    None => usage_error("--tcp expects an address like 127.0.0.1:9944"),
                }
            }
            "--cache-cap" => {
                i += 1;
                match args.get(i).map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) => config.cache_cap = n,
                    _ => usage_error("--cache-cap expects a number of entries"),
                }
            }
            "--cache-dir" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => config.cache_dir = Some(dir.into()),
                    None => usage_error("--cache-dir expects a directory path"),
                }
            }
            "--no-cache-persist" => no_cache_persist = true,
            "--timeout-ms" => {
                i += 1;
                match args.get(i).map(|v| v.parse::<u64>()) {
                    Some(Ok(ms)) => {
                        config.options.solver.budget.timeout =
                            Some(std::time::Duration::from_millis(ms));
                    }
                    _ => usage_error("--timeout-ms expects a number of milliseconds"),
                }
            }
            "--egress" => config.options.include_egress = true,
            "--trace-out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => opts.trace_out = Some(p.into()),
                    None => usage_error("--trace-out expects an output path"),
                }
            }
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: bf4d --socket PATH | --tcp ADDR [--cache-cap N] [--cache-dir DIR] \
                     [--no-cache-persist] [--timeout-ms N] [--egress] [--trace-out FILE] [--quiet]"
                );
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    match (&socket, &tcp) {
        (None, None) => usage_error("one of --socket or --tcp is required"),
        (Some(_), Some(_)) => usage_error("--socket and --tcp are mutually exclusive"),
        _ => {}
    }
    // A durable store is pointless without saving back to it: --cache-dir
    // implies persistence, with --no-cache-persist as the escape hatch.
    config.cache_persist = config.cache_dir.is_some() && !no_cache_persist;

    if opts.trace_out.is_some() {
        bf4_obs::set_enabled(true);
    }

    let listener = match (&socket, &tcp) {
        (Some(path), None) => {
            // Replace a stale socket file from a previous run; a live
            // daemon on the same path would have to be stopped first.
            let _ = std::fs::remove_file(path);
            match UnixListener::bind(path) {
                Ok(l) => {
                    if !opts.quiet {
                        eprintln!("bf4d: listening on {}", path.display());
                    }
                    Listener::Unix(l)
                }
                Err(e) => {
                    eprintln!("bf4d: cannot bind {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
        (None, Some(addr)) => match TcpListener::bind(addr) {
            Ok(l) => {
                if !opts.quiet {
                    eprintln!("bf4d: listening on tcp {addr}");
                }
                Listener::Tcp(l)
            }
            Err(e) => {
                eprintln!("bf4d: cannot bind {addr}: {e}");
                std::process::exit(2);
            }
        },
        _ => unreachable!("validated above"),
    };

    let mut daemon = Daemon::new(config);
    match serve(listener, &mut daemon, &opts) {
        Ok(requests) => {
            if !opts.quiet {
                let stats = daemon.stats();
                eprintln!(
                    "bf4d: shutdown after {requests} request(s) ({} submit(s), \
                     {} incremental skip(s), {} re-verification(s))",
                    stats.submits, stats.incremental_skips, stats.full_reverifies
                );
            }
            if let Some(path) = &socket {
                let _ = std::fs::remove_file(path);
            }
        }
        Err(e) => {
            eprintln!("bf4d: service loop failed: {e}");
            std::process::exit(2);
        }
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("bf4d: {msg} (try --help)");
    std::process::exit(2);
}
