//! Satellite: property test of the slicer as a change-impact oracle.
//!
//! For a random single-action edit of the running NAT example, every bug
//! whose round-1 reachability verdict differs between a full verification
//! of the old and the new program must land in the impacted set — i.e.
//! its identity/fingerprint pair must NOT survive the edit. Equivalently
//! (the form the daemon relies on): any bug the fingerprint oracle marks
//! as reusable has the same verdict in both versions. This is the
//! soundness of incremental skipping.

use bf4_core::driver::{prepare_round, VerifyOptions};
use bf4_core::reach::{check_bugs, BugStatus};
use bf4_daemon::impact::{bug_prints, BugPrint};
use bf4_smt::new_solver;
use proptest::prelude::*;

const BASE: &str = bf4_core::testutil::NAT_SOURCE;

/// The single-action edit sites: each replaces one statement inside one
/// action (or the apply guard) with a version parameterized by `v`.
/// Patterns are chosen to be unique in `BASE` and length-stable enough to
/// keep other source lines where they are.
fn apply_edit(site: usize, v: u8) -> String {
    let (pat, make) = EDITS[site % EDITS.len()];
    assert!(BASE.contains(pat), "edit site `{pat}` must exist");
    // When `v` reproduces the original constant the edit is a no-op —
    // a legitimate case for which the property holds trivially.
    BASE.replacen(pat, &make(v), 1)
}

type Make = fn(u8) -> String;
const EDITS: &[(&str, Make)] = &[
    ("meta.meta.do_forward = 1w1;", |v| {
        format!("meta.meta.do_forward = 1w{};", v % 2)
    }),
    ("action nat_miss_ext_to_int() { meta.meta.do_forward = 1w0; }", |v| {
        format!(
            "action nat_miss_ext_to_int() {{ meta.meta.do_forward = 1w{}; }}",
            v % 2
        )
    }),
    ("hdr.ipv4.ttl = hdr.ipv4.ttl - 1;", |v| {
        format!("hdr.ipv4.ttl = hdr.ipv4.ttl - {};", 1 + v % 7)
    }),
    ("meta.meta.ipv4_sa = a;", |v| {
        format!("meta.meta.ipv4_sa = 32w{};", u32::from(v))
    }),
    ("standard_metadata.egress_spec = p;", |v| {
        format!("standard_metadata.egress_spec = 9w{};", u32::from(v))
    }),
];

/// Round-1 reach verdicts of every bug, alongside its identity and
/// fingerprint — a full (non-incremental) verification prefix.
fn reach_verdicts(source: &str) -> Vec<(BugPrint, BugStatus)> {
    let options = VerifyOptions::default();
    let program = bf4_p4::frontend(source).expect("frontend");
    let mut prep = prepare_round(&program, &options).expect("prepare");
    let prints = bug_prints("ingress", &prep.cfg, &prep.bugs);
    let mut solver = new_solver(&options.solver);
    check_bugs(&mut solver, &mut prep.bugs, &[], BugStatus::Reachable);
    prints
        .into_iter()
        .zip(prep.bugs.iter().map(|b| b.status))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn single_action_edit_impact_is_sound(site in 0usize..EDITS.len(), v: u8) {
        let old = reach_verdicts(BASE);
        let new = reach_verdicts(&apply_edit(site, v));
        prop_assert!(!old.is_empty());

        for (np, nstatus) in &new {
            // A bug the daemon would treat as reusable: same identity,
            // same fingerprint as in the old version.
            let reusable = old
                .iter()
                .find(|(op, _)| op.identity == np.identity)
                .filter(|(op, _)| op.fingerprint == np.fingerprint);
            if let Some((_, ostatus)) = reusable {
                prop_assert_eq!(
                    ostatus, nstatus,
                    "verdict changed for a bug outside the impacted set: {}",
                    np.identity
                );
            }
        }
    }
}
