//! Chaos coverage for the daemon: the PR-4 fault sites must degrade a
//! single request conservatively — never wedge the daemon, never flip a
//! verdict, never poison another program's state.
//!
//! Lives in its own test binary because the fault plan is process-global,
//! and every test serializes on one lock for the same reason.

use bf4_core::driver::{verify_isolated, VerifyOptions};
use bf4_daemon::{Daemon, DaemonConfig};
use bf4_engine::{check_conservative, normalized_report};
use bf4_obs::fault::FaultPlan;
use std::sync::{Mutex, MutexGuard, PoisonError};

fn locked() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

const V1: &str = bf4_core::testutil::NAT_SOURCE;

fn one_shot(name: &str, source: &str) -> String {
    normalized_report(name, &verify_isolated(source, &VerifyOptions::default()))
}

#[test]
fn faults_degrade_one_request_without_poisoning_state() {
    let _g = locked();
    let v2 = V1.replace(
        "action nat_miss_ext_to_int() { meta.meta.do_forward = 1w0; }",
        "action nat_miss_ext_to_int() { meta.meta.do_forward = 1w1; }",
    );
    assert_ne!(v2, V1);
    let clean_v2 = verify_isolated(&v2, &VerifyOptions::default());

    let mut daemon = Daemon::new(DaemonConfig::default());
    let nat1 = daemon.submit("nat", V1);
    assert_eq!(nat1.normalized, one_shot("nat", V1));

    // Inject solver faults for exactly one request: the edited version.
    bf4_obs::fault::install(
        FaultPlan::parse("seed=11,smt.timeout=p0.7,smt.backend_error=p0.2").unwrap(),
    );
    let faulty = daemon.submit("nat", &v2);
    let fault_stats = bf4_obs::fault::clear();
    assert!(
        fault_stats.iter().any(|s| s.fires > 0),
        "the schedule must actually inject"
    );
    // The faulted request may only degrade toward Undecided/degraded,
    // never flip a verdict relative to the clean run of the same source.
    check_conservative(&clean_v2, &faulty.report).expect("conservative degradation only");

    // The daemon is not wedged and other programs are not poisoned.
    let other = daemon.submit("other", V1);
    assert_eq!(other.normalized, one_shot("other", V1));

    // A clean resubmission of the same edited source recovers the exact
    // one-shot verdict: nothing from the faulted run is ever reused
    // (degraded runs drop their verdict store).
    let recovered = daemon.submit("nat", &v2);
    assert_eq!(recovered.normalized, normalized_report("nat", &clean_v2));
}

#[test]
fn unknown_verdicts_are_never_reused_across_versions() {
    let _g = locked();
    let mut daemon = Daemon::new(DaemonConfig {
        cache_cap: 0, // isolate verdict reuse from query caching
        ..DaemonConfig::default()
    });
    // Every query times out: all bugs undecided, report degraded.
    bf4_obs::fault::install(FaultPlan::parse("seed=3,smt.timeout=on").unwrap());
    let degraded = daemon.submit("nat", V1);
    bf4_obs::fault::clear();
    assert!(degraded.report.bugs_undecided > 0);
    assert!(!degraded.report.degraded.is_empty());

    // The clean resubmission must re-verify everything from scratch and
    // land on the fault-free verdict.
    let clean = daemon.submit("nat", V1);
    assert_eq!(clean.skips, 0, "nothing from a degraded run may be reused");
    assert!(clean.reverified > 0);
    assert_eq!(clean.normalized, one_shot("nat", V1));
}

#[test]
fn cache_store_faults_leave_the_daemon_serving() {
    let _g = locked();
    let dir = std::env::temp_dir().join(format!("bf4d-chaos-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Seed a store with one clean daemon lifecycle.
    {
        let mut daemon = Daemon::new(DaemonConfig {
            cache_dir: Some(dir.clone()),
            cache_persist: true,
            ..DaemonConfig::default()
        });
        daemon.submit("nat", V1);
        daemon.persist();
        assert!(daemon.persist_stats().is_some_and(|p| p.saved));
    }

    // A store that fails to load degrades to a cold cache — the daemon
    // still starts, still serves, and still reports identically.
    bf4_obs::fault::install(FaultPlan::parse("seed=5,cache.load_io=on").unwrap());
    let mut daemon = Daemon::new(DaemonConfig {
        cache_dir: Some(dir.clone()),
        cache_persist: true,
        ..DaemonConfig::default()
    });
    bf4_obs::fault::clear();
    let out = daemon.submit("nat", V1);
    assert_eq!(out.normalized, one_shot("nat", V1));

    // A save that fails degrades to a stats entry, never a crash.
    bf4_obs::fault::install(FaultPlan::parse("seed=5,cache.persist_io=on").unwrap());
    daemon.persist();
    bf4_obs::fault::clear();
    let p = daemon.persist_stats().expect("store configured");
    assert!(p.io_errors > 0);

    let _ = std::fs::remove_dir_all(&dir);
}
