//! End-to-end tests of the daemon's incremental soundness gate: for every
//! scripted edit sequence, each version's verdict must be byte-identical
//! (normalized report) to a one-shot run of the same source, while the
//! skip counter proves not every bug was re-verified.

use bf4_core::driver::{verify_isolated, VerifyOptions};
use bf4_daemon::proto::{self, Request};
use bf4_daemon::server::{serve, Listener, ServeOptions};
use bf4_daemon::{Daemon, DaemonConfig};
use bf4_engine::normalized_report;
use bf4_obs::json::{self, Value};
use std::io::Write as _;
use std::os::unix::net::{UnixListener, UnixStream};

const V1: &str = bf4_core::testutil::NAT_SOURCE;

/// One-shot reference: what a plain `bf4` run reports for this source.
fn one_shot(name: &str, source: &str) -> String {
    normalized_report(name, &verify_isolated(source, &VerifyOptions::default()))
}

#[test]
fn scripted_edit_sequence_matches_one_shot() {
    let mut daemon = Daemon::new(DaemonConfig::default());

    // v1: cold submit — everything re-verifies, nothing can be skipped.
    let out1 = daemon.submit("nat", V1);
    assert_eq!(out1.version, 1);
    assert_eq!(out1.skips, 0);
    assert!(out1.reverified > 0);
    assert_eq!(out1.normalized, one_shot("nat", V1));

    // v2: a comment-only edit — the IR is unchanged, so every bug's
    // fingerprint matches and the whole round-1 check is skipped.
    let v2 = format!("{V1}\n// reviewed: no dataplane change\n");
    let out2 = daemon.submit("nat", &v2);
    assert_eq!(out2.version, 2);
    assert!(out2.skips > 0, "comment edit must skip bugs");
    assert_eq!(out2.reverified, 0, "comment edit must re-verify nothing");
    assert_eq!(out2.normalized, one_shot("nat", &v2));
    assert_eq!(out2.normalized, out1.normalized);

    // v3: a semantic edit inside one action — `do_forward` now set on the
    // nat-miss path, changing reachability of everything the
    // `do_forward == 1` branch guards. Bugs outside that slice keep their
    // verdicts; impacted ones re-verify; the report still matches a
    // one-shot run of the edited source byte for byte.
    let v3 = V1.replace(
        "action nat_miss_ext_to_int() { meta.meta.do_forward = 1w0; }",
        "action nat_miss_ext_to_int() { meta.meta.do_forward = 1w1; }",
    );
    assert_ne!(v3, V1, "edit site must exist");
    let out3 = daemon.submit("nat", &v3);
    assert_eq!(out3.version, 3);
    assert!(out3.reverified > 0, "impacted bugs must re-verify");
    assert!(out3.skips > 0, "unimpacted bugs must be skipped");
    assert_eq!(out3.normalized, one_shot("nat", &v3));

    // v4: back to v1 — incremental against v3's verdicts, still correct.
    let out4 = daemon.submit("nat", V1);
    assert_eq!(out4.normalized, out1.normalized);

    let stats = daemon.stats();
    assert_eq!(stats.submits, 4);
    assert_eq!(
        stats.incremental_skips,
        out1.skips + out2.skips + out3.skips + out4.skips
    );
}

#[test]
fn verification_irrelevant_constant_edit_skips_everything() {
    // The TTL decrement amount feeds no branch and no bug condition:
    // the slicer-based oracle proves no verdict can change, so the whole
    // round is served from stored verdicts.
    let mut daemon = Daemon::new(DaemonConfig::default());
    let out1 = daemon.submit("nat", V1);
    let v2 = V1.replace("hdr.ipv4.ttl = hdr.ipv4.ttl - 1;", "hdr.ipv4.ttl = hdr.ipv4.ttl - 2;");
    assert_ne!(v2, V1, "edit site must exist");
    let out2 = daemon.submit("nat", &v2);
    assert!(out2.skips > 0);
    assert_eq!(out2.normalized, one_shot("nat", &v2));
    assert_eq!(out2.normalized, out1.normalized);
}

#[test]
fn unchanged_resubmit_reverifies_nothing() {
    let mut daemon = Daemon::new(DaemonConfig::default());
    let out1 = daemon.submit("nat", V1);
    let out2 = daemon.submit("nat", V1);
    assert_eq!(out2.version, 2);
    assert_eq!(out2.reverified, 0);
    assert_eq!(out2.skips, out1.reverified + out1.skips);
    assert_eq!(out2.normalized, out1.normalized);
}

#[test]
fn bad_version_degrades_without_poisoning_other_programs() {
    let mut daemon = Daemon::new(DaemonConfig::default());
    let nat1 = daemon.submit("nat", V1);
    let other1 = daemon.submit("other", V1);

    // A version that does not parse: the daemon's report must equal the
    // one-shot degraded report, and the failure must stay scoped to this
    // program.
    let bad = "control ingress( {";
    let out_bad = daemon.submit("nat", bad);
    assert_eq!(out_bad.version, 2);
    assert_eq!(out_bad.normalized, one_shot("nat", bad));
    assert!(out_bad.report.degraded.iter().any(|d| d.stage == "frontend"));

    // The other program's state is untouched and still incremental.
    let other2 = daemon.submit("other", V1);
    assert_eq!(other2.reverified, 0);
    assert_eq!(other2.normalized, other1.normalized);

    // Recovery: a good version after a failed one re-verifies in full
    // (a degraded run must never seed reuse) and reports correctly.
    let nat3 = daemon.submit("nat", V1);
    assert_eq!(nat3.version, 3);
    assert_eq!(nat3.skips, 0, "degraded run must not seed verdict reuse");
    assert!(nat3.reverified > 0);
    assert_eq!(nat3.normalized, nat1.normalized);
}

#[test]
fn status_returns_last_verdict_without_reverifying() {
    let mut daemon = Daemon::new(DaemonConfig::default());
    let out = daemon.submit("nat", V1);
    let status = daemon.status("nat").expect("submitted program has status");
    assert_eq!(status.version, out.version);
    assert_eq!(status.normalized, out.normalized);
    assert!(daemon.status("never-submitted").is_none());
}

/// Full protocol round trip over a real unix socket: submit, edited
/// resubmit (incremental), stats, shutdown.
#[test]
fn server_end_to_end_over_unix_socket() {
    let sock = std::env::temp_dir().join(format!("bf4d-test-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let listener = UnixListener::bind(&sock).expect("bind test socket");
    let handle = std::thread::spawn(move || {
        let mut daemon = Daemon::new(DaemonConfig::default());
        serve(
            Listener::Unix(listener),
            &mut daemon,
            &ServeOptions {
                quiet: true,
                ..ServeOptions::default()
            },
        )
        .expect("service loop")
    });

    let request = |req: &Request| -> Value {
        let mut conn = UnixStream::connect(&sock).expect("connect");
        proto::write_frame(&mut conn, &proto::encode_request(req)).expect("send");
        let body = proto::read_frame(&mut conn)
            .expect("recv")
            .expect("response frame");
        json::parse(&body).expect("response JSON")
    };
    let num = |v: &Value, k: &str| -> u64 {
        v.as_obj()
            .and_then(|o| o.get(k))
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("field {k}"))
    };

    let r1 = request(&Request::Submit {
        program: "nat".into(),
        source: V1.into(),
    });
    assert_eq!(num(&r1, "version"), 1);
    assert_eq!(num(&r1, "skips"), 0);

    let v2 = format!("{V1}\n// watch-mode edit\n");
    let r2 = request(&Request::Submit {
        program: "nat".into(),
        source: v2,
    });
    assert_eq!(num(&r2, "version"), 2);
    assert!(num(&r2, "skips") > 0);
    assert_eq!(num(&r2, "reverified"), 0);
    let report = |v: &Value| {
        v.as_obj()
            .and_then(|o| o.get("report"))
            .and_then(Value::as_str)
            .expect("report field")
            .to_string()
    };
    assert_eq!(report(&r2), report(&r1));
    assert_eq!(report(&r1), one_shot("nat", V1));

    let stats = request(&Request::Stats);
    assert_eq!(num(&stats, "submits"), 2);
    assert_eq!(num(&stats, "programs"), 1);
    assert!(num(&stats, "skips") > 0);

    // A malformed frame gets an error, not a dead daemon.
    {
        let mut conn = UnixStream::connect(&sock).expect("connect");
        conn.write_all(&5u32.to_be_bytes()).unwrap();
        conn.write_all(b"nope!").unwrap();
        let body = proto::read_frame(&mut conn).expect("recv").expect("frame");
        let v = json::parse(&body).expect("error JSON");
        assert_eq!(
            v.as_obj().and_then(|o| o.get("ok")),
            Some(&Value::Bool(false))
        );
    }

    let bye = request(&Request::Shutdown);
    assert_eq!(
        bye.as_obj().and_then(|o| o.get("shutdown")),
        Some(&Value::Bool(true))
    );
    let served = handle.join().expect("server thread");
    assert!(served >= 5);
    let _ = std::fs::remove_file(&sock);
}
