//! The daemon's operational telemetry end to end, in process: request
//! IDs minted by `handle`, the `metrics` op's exposition, the persistent
//! time-series surviving a restart, and SLO violations raised by a
//! degraded submission.
//!
//! Metric collection and span tracing are process-global, so this suite
//! lives in its own test binary and serializes every test on one gate.

use bf4_daemon::proto::{Request, Response};
use bf4_daemon::{Daemon, DaemonConfig};
use bf4_obs::slo::SloSpec;
use bf4_obs::tsdb;
use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bf4-telemetry-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn submit(program: &str, source: &str) -> Request {
    Request::Submit {
        program: program.to_string(),
        source: source.to_string(),
    }
}

fn corpus_source(name: &str) -> String {
    bf4_corpus::by_name(name)
        .expect("corpus program present")
        .source
        .to_string()
}

#[test]
fn handle_mints_request_ids_and_metrics_op_exposes_the_daemon() {
    let _g = lock();
    bf4_obs::set_metrics(true);
    bf4_obs::reset_metrics();
    let mut daemon = Daemon::new(DaemonConfig::default());
    let arp = corpus_source("arp");

    let (resp, stop) = daemon.handle(submit("arp", &arp));
    assert!(!stop);
    let Response::Verdict(out) = resp else {
        panic!("submit must answer with a verdict");
    };
    assert_eq!(out.request, "req-1");
    let (resp, _) = daemon.handle(submit("arp", &arp));
    let Response::Verdict(out) = resp else {
        panic!("submit must answer with a verdict");
    };
    assert_eq!(out.request, "req-2", "request IDs are sequential per daemon");

    let (resp, _) = daemon.handle(Request::Metrics);
    bf4_obs::set_metrics(false);
    let Response::Metrics { text } = resp else {
        panic!("metrics must answer with the exposition");
    };
    let exp = bf4_obs::expose::parse(&text).expect("the exposition parses under its own grammar");
    // The metrics request itself is request #3.
    assert_eq!(exp.value("bf4_daemon_requests", &[]), Some(3.0));
    assert_eq!(exp.value("bf4_daemon_submits", &[]), Some(2.0));
    // The latency summary carries both submissions.
    assert_eq!(
        exp.value("bf4_daemon_request_micros_count", &[]),
        Some(2.0)
    );
    assert!(exp
        .value("bf4_daemon_request_micros", &[("quantile", "0.99")])
        .is_some());
    bf4_obs::reset_metrics();
}

#[test]
fn stats_op_reports_alert_state_and_degraded_counts() {
    let _g = lock();
    let config = DaemonConfig {
        slo: Some(SloSpec::parse("degraded_rate=0.0").unwrap()),
        ..DaemonConfig::default()
    };
    let mut daemon = Daemon::new(config);
    // A frontend reject degrades the report, which trips degraded_rate=0.
    let (resp, _) = daemon.handle(submit("broken", "not a p4 program"));
    let Response::Verdict(out) = resp else {
        panic!("degraded submits still answer with a verdict");
    };
    assert!(!out.report.degraded.is_empty());
    assert!(daemon.active_alerts() > 0, "the violation must raise an alert");
    assert!(daemon.stats().alerts > 0);
    assert_eq!(daemon.stats().degraded_submits, 1);

    let (resp, _) = daemon.handle(Request::Stats);
    let Response::Stats {
        daemon: stats,
        active_alerts,
        ..
    } = resp
    else {
        panic!("stats must answer with counters");
    };
    assert_eq!(stats.degraded_submits, 1);
    assert!(active_alerts > 0);

    // A healthy window clears the active alerts again (history stays in
    // the lifetime counter).
    let arp = corpus_source("arp");
    let window = daemon.slo_window().len();
    for i in 0..window {
        daemon.handle(submit(&format!("p{i}"), &arp));
    }
    // One more wave pushes the degraded sample out of the window.
    for i in 0..64 {
        if daemon.active_alerts() == 0 {
            break;
        }
        daemon.handle(submit(&format!("q{i}"), &arp));
    }
    assert_eq!(daemon.active_alerts(), 0, "healthy requests clear the alert");
    assert!(daemon.stats().alerts > 0, "the lifetime counter remembers");
}

#[test]
fn tsdb_survives_restart_and_seeds_the_slo_window() {
    let _g = lock();
    let dir = scratch("restart");
    let config = DaemonConfig {
        cache_dir: Some(dir.clone()),
        ..DaemonConfig::default()
    };
    let arp = corpus_source("arp");
    {
        let mut daemon = Daemon::new(config.clone());
        daemon.handle(submit("arp", &arp));
        daemon.handle(submit("arp", &arp));
        assert_eq!(daemon.slo_window().len(), 2);
    }
    // The series is on disk, one line per submission.
    let loaded = tsdb::load(&dir.join(tsdb::TSDB_FILE)).unwrap();
    assert_eq!(loaded.corrupt_records, 0);
    assert_eq!(loaded.samples.len(), 2);
    assert_eq!(loaded.samples[0].req, "req-1");
    assert_eq!(loaded.samples[1].req, "req-2");
    assert_eq!(loaded.samples[1].program, "arp");
    assert!(loaded.samples[1].wall_micros > 0);

    // A restarted daemon seeds its SLO window from the series tail and
    // keeps appending after its own requests.
    let mut daemon = Daemon::new(config);
    assert_eq!(daemon.slo_window().len(), 2, "window seeded across restart");
    daemon.handle(submit("arp", &arp));
    let loaded = tsdb::load(&dir.join(tsdb::TSDB_FILE)).unwrap();
    assert_eq!(loaded.samples.len(), 3);
    // Request IDs restart per daemon lifetime; the series keeps both
    // generations in order.
    assert_eq!(loaded.samples[2].req, "req-1");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn request_id_tags_flow_into_every_pipeline_span() {
    let _g = lock();
    bf4_obs::set_enabled(true);
    let _ = bf4_obs::take_spans();
    let mut daemon = Daemon::new(DaemonConfig::default());
    daemon.handle(submit("arp", &corpus_source("arp")));
    bf4_obs::set_enabled(false);
    let records = bf4_obs::take_spans();
    let spans: Vec<bf4_obs::TraceSpan> = records.iter().map(Into::into).collect();

    let request = spans
        .iter()
        .find(|s| s.layer == "daemon" && s.name == "request")
        .expect("the request span is recorded");
    assert_eq!(request.tags.get("request").map(String::as_str), Some("req-1"));
    assert_eq!(request.tags.get("op").map(String::as_str), Some("submit"));

    // Every solver span of this (sequential) submission inherits the ID
    // through the ambient context tag.
    let smt: Vec<_> = spans.iter().filter(|s| s.layer == "smt").collect();
    assert!(!smt.is_empty(), "verifying arp must query the solver");
    for s in &smt {
        assert_eq!(
            s.tags.get("request").map(String::as_str),
            Some("req-1"),
            "span {}/{} lost the request tag",
            s.layer,
            s.name
        );
    }
}
