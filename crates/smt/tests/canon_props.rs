//! Soundness of query canonicalization (`bf4_smt::canon`): whenever two
//! random small terms receive the same canonical key, they must be
//! equivalid — the bit-blast solver gives the same Sat/Unsat verdict for
//! both. The cache built on these keys returns one query's verdict for
//! the other, so key equality claiming more than equisatisfiability would
//! silently corrupt verification results.

use bf4_smt::bitblast::BitBlastSolver;
use bf4_smt::{query_key, SatResult, Solver, Sort, Term, TermNode};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Tiny deterministic RNG so each proptest case is reproducible from its
/// seed argument alone.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const BOOL_VARS: [&str; 3] = ["p", "q", "r"];
const BV_VARS: [&str; 3] = ["x", "y", "z"];

fn gen_bv(rng: &mut Rng, depth: u32) -> Term {
    if depth == 0 || rng.below(4) == 0 {
        return if rng.below(2) == 0 {
            Term::var(BV_VARS[rng.below(3) as usize], Sort::Bv(8))
        } else {
            Term::bv(8, rng.below(256) as u128)
        };
    }
    let a = gen_bv(rng, depth - 1);
    let b = gen_bv(rng, depth - 1);
    match rng.below(7) {
        0 => a.bvadd(&b),
        1 => a.bvmul(&b),
        2 => a.bvand(&b),
        3 => a.bvor(&b),
        4 => a.bvxor(&b),
        5 => a.bvsub(&b),
        _ => gen_bool(rng, depth - 1).ite(&a, &b),
    }
}

fn gen_bool(rng: &mut Rng, depth: u32) -> Term {
    if depth == 0 || rng.below(5) == 0 {
        return Term::var(BOOL_VARS[rng.below(3) as usize], Sort::Bool);
    }
    match rng.below(8) {
        0 => gen_bool(rng, depth - 1).not(),
        1 => gen_bool(rng, depth - 1).and(&gen_bool(rng, depth - 1)),
        2 => gen_bool(rng, depth - 1).or(&gen_bool(rng, depth - 1)),
        3 => gen_bool(rng, depth - 1).implies(&gen_bool(rng, depth - 1)),
        4 => gen_bv(rng, depth - 1).eq_term(&gen_bv(rng, depth - 1)),
        5 => gen_bv(rng, depth - 1).bvult(&gen_bv(rng, depth - 1)),
        6 => gen_bv(rng, depth - 1).bvslt(&gen_bv(rng, depth - 1)),
        _ => Term::and_all([
            gen_bool(rng, depth - 1),
            gen_bool(rng, depth - 1),
            gen_bool(rng, depth - 1),
        ]),
    }
}

/// Rebuild `t` with every commutative operand list reversed. Key equality
/// with the original is *guaranteed* by construction of the canonical
/// hash, making the soundness check below non-vacuous.
fn reverse_commutative(t: &Term) -> Term {
    match t.node() {
        TermNode::Const(_) | TermNode::Var(..) => t.clone(),
        TermNode::Not(a) => reverse_commutative(a).not(),
        TermNode::And(xs) => {
            Term::and_all(xs.iter().rev().map(reverse_commutative).collect::<Vec<_>>())
        }
        TermNode::Or(xs) => {
            Term::or_all(xs.iter().rev().map(reverse_commutative).collect::<Vec<_>>())
        }
        TermNode::Implies(a, b) => reverse_commutative(a).implies(&reverse_commutative(b)),
        TermNode::Ite(c, a, b) => {
            reverse_commutative(c).ite(&reverse_commutative(a), &reverse_commutative(b))
        }
        TermNode::Eq(a, b) => reverse_commutative(b).eq_term(&reverse_commutative(a)),
        TermNode::Bv(op, a, b) => {
            use bf4_smt::term::BvOp::*;
            let (ra, rb) = (reverse_commutative(a), reverse_commutative(b));
            match op {
                Add => rb.bvadd(&ra),
                Mul => rb.bvmul(&ra),
                And => rb.bvand(&ra),
                Or => rb.bvor(&ra),
                Xor => rb.bvxor(&ra),
                Sub => ra.bvsub(&rb),
                UDiv => ra.bvudiv(&rb),
                URem => ra.bvurem(&rb),
                Shl => ra.bvshl(&rb),
                LShr => ra.bvlshr(&rb),
                AShr => ra.bvashr(&rb),
            }
        }
        TermNode::Cmp(op, a, b) => {
            use bf4_smt::term::CmpOp::*;
            let (ra, rb) = (reverse_commutative(a), reverse_commutative(b));
            match op {
                Ult => ra.bvult(&rb),
                Ule => ra.bvule(&rb),
                Ugt => ra.bvugt(&rb),
                Uge => ra.bvuge(&rb),
                Slt => ra.bvslt(&rb),
                Sle => ra.bvsle(&rb),
                Sgt => ra.bvsgt(&rb),
                Sge => ra.bvsge(&rb),
            }
        }
        TermNode::BvNot(a) => reverse_commutative(a).bvnot(),
        TermNode::BvNeg(a) => reverse_commutative(a).bvneg(),
        TermNode::Concat(a, b) => reverse_commutative(a).concat(&reverse_commutative(b)),
        TermNode::Extract { hi, lo, arg } => reverse_commutative(arg).extract(*hi, *lo),
        TermNode::ZeroExt { add, arg } => reverse_commutative(arg).zero_ext(*add),
        TermNode::SignExt { add, arg } => reverse_commutative(arg).sign_ext(*add),
    }
}

/// Apply a bijective variable renaming (a rotation of each name pool).
fn rename(t: &Term, rot: usize) -> Term {
    let mut map: HashMap<Arc<str>, Term> = HashMap::new();
    for (i, v) in BOOL_VARS.iter().enumerate() {
        let to = BOOL_VARS[(i + rot) % BOOL_VARS.len()];
        map.insert(Arc::from(*v), Term::var(format!("{to}#renamed"), Sort::Bool));
    }
    for (i, v) in BV_VARS.iter().enumerate() {
        let to = BV_VARS[(i + rot) % BV_VARS.len()];
        map.insert(Arc::from(*v), Term::var(format!("{to}#renamed"), Sort::Bv(8)));
    }
    bf4_smt::substitute(t, &map)
}

fn verdict(t: &Term) -> SatResult {
    let mut s = BitBlastSolver::new();
    s.solve(t).result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn commutative_shuffle_preserves_key_and_verdict(seed: u64) {
        let mut rng = Rng(seed | 1);
        let t = gen_bool(&mut rng, 3);
        let shuffled = reverse_commutative(&t);
        prop_assert_eq!(
            query_key(std::slice::from_ref(&t)),
            query_key(std::slice::from_ref(&shuffled)),
            "commutative shuffle must not change the canonical key: {} vs {}", t, shuffled
        );
        prop_assert_eq!(verdict(&t), verdict(&shuffled));
    }

    #[test]
    fn canonical_equal_terms_are_equivalid(seed: u64) {
        let mut rng = Rng(seed | 1);
        let t = gen_bool(&mut rng, 3);
        // Candidate cache collisions: a scrambled/renamed variant (usually
        // key-equal) and an independent random term (usually not).
        let variant = rename(&reverse_commutative(&t), 1 + rng.below(2) as usize);
        let unrelated = gen_bool(&mut rng, 3);
        for other in [&variant, &unrelated] {
            if query_key(std::slice::from_ref(&t)) == query_key(std::slice::from_ref(other)) {
                prop_assert_eq!(
                    verdict(&t),
                    verdict(other),
                    "key-equal terms with different verdicts: {} vs {}", t, other
                );
            }
        }
    }

    #[test]
    fn query_key_insensitive_to_assertion_order(seed: u64) {
        let mut rng = Rng(seed | 1);
        let a = gen_bool(&mut rng, 2);
        let b = gen_bool(&mut rng, 2);
        let c = gen_bool(&mut rng, 2);
        let k1 = query_key(&[a.clone(), b.clone(), c.clone()]);
        let k2 = query_key(&[c, a, b]);
        prop_assert_eq!(k1, k2);
    }
}
