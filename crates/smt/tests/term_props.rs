//! Algebraic property tests over the term language: the evaluator is the
//! semantics, and classic bit-vector/boolean laws must hold for random
//! operand values. (Z3 agreement is covered by the cross-crate
//! `solver_differential` suite; these tests are solver-free and fast.)

use bf4_smt::{eval, Assignment, Sort, Term, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn env2(w: u32, a: u128, b: u128) -> (Term, Term, Assignment) {
    let x = Term::var("x", Sort::Bv(w));
    let y = Term::var("y", Sort::Bv(w));
    let mut env = Assignment::new();
    env.insert(Arc::from("x"), Value::bv(w, a));
    env.insert(Arc::from("y"), Value::bv(w, b));
    (x, y, env)
}

fn bits(t: &Term, env: &Assignment) -> u128 {
    eval(t, env).unwrap().as_bits()
}

fn truth(t: &Term, env: &Assignment) -> bool {
    eval(t, env).unwrap().as_bool()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn add_commutes(w in 1u32..64, a: u64, b: u64) {
        let (x, y, env) = env2(w, a as u128, b as u128);
        prop_assert_eq!(bits(&x.bvadd(&y), &env), bits(&y.bvadd(&x), &env));
    }

    #[test]
    fn add_associates(w in 1u32..64, a: u64, b: u64, c: u64) {
        let x = Term::var("x", Sort::Bv(w));
        let y = Term::var("y", Sort::Bv(w));
        let z = Term::var("z", Sort::Bv(w));
        let mut env = Assignment::new();
        env.insert(Arc::from("x"), Value::bv(w, a as u128));
        env.insert(Arc::from("y"), Value::bv(w, b as u128));
        env.insert(Arc::from("z"), Value::bv(w, c as u128));
        prop_assert_eq!(
            bits(&x.bvadd(&y).bvadd(&z), &env),
            bits(&x.bvadd(&y.bvadd(&z)), &env)
        );
    }

    #[test]
    fn sub_is_add_neg(w in 1u32..64, a: u64, b: u64) {
        let (x, y, env) = env2(w, a as u128, b as u128);
        prop_assert_eq!(bits(&x.bvsub(&y), &env), bits(&x.bvadd(&y.bvneg()), &env));
    }

    #[test]
    fn de_morgan_bitwise(w in 1u32..64, a: u64, b: u64) {
        let (x, y, env) = env2(w, a as u128, b as u128);
        prop_assert_eq!(
            bits(&x.bvand(&y).bvnot(), &env),
            bits(&x.bvnot().bvor(&y.bvnot()), &env)
        );
    }

    #[test]
    fn xor_self_cancels(w in 1u32..64, a: u64) {
        let (x, _, env) = env2(w, a as u128, 0);
        prop_assert_eq!(bits(&x.bvxor(&x), &env), 0);
    }

    #[test]
    fn concat_extract_inverse(wl in 1u32..32, wh in 1u32..32, a: u64, b: u64) {
        let hi = Term::var("x", Sort::Bv(wh));
        let lo = Term::var("y", Sort::Bv(wl));
        let mut env = Assignment::new();
        let av = (a as u128) & ((1u128 << wh) - 1);
        let bv = (b as u128) & ((1u128 << wl) - 1);
        env.insert(Arc::from("x"), Value::bv(wh, av));
        env.insert(Arc::from("y"), Value::bv(wl, bv));
        let cat = hi.concat(&lo);
        prop_assert_eq!(bits(&cat.extract(wl + wh - 1, wl), &env), av);
        prop_assert_eq!(bits(&cat.extract(wl - 1, 0), &env), bv);
    }

    #[test]
    fn resize_roundtrip_widening(w in 1u32..64, extra in 1u32..32, a: u64) {
        let (x, _, env) = env2(w, a as u128, 0);
        let widened = x.resize(w + extra);
        prop_assert_eq!(bits(&widened.resize(w), &env), bits(&x, &env));
    }

    #[test]
    fn ult_total_order(w in 1u32..64, a: u64, b: u64) {
        let (x, y, env) = env2(w, a as u128, b as u128);
        let lt = truth(&x.bvult(&y), &env);
        let gt = truth(&x.bvugt(&y), &env);
        let eq = truth(&x.eq_term(&y), &env);
        prop_assert!(lt ^ gt ^ eq, "exactly one of <, >, == must hold");
    }

    #[test]
    fn signed_unsigned_agree_on_small(w in 2u32..64, a in 0u64..1 << 20, b in 0u64..1 << 20) {
        // With the sign bit clear on both sides, signed and unsigned
        // comparison agree.
        let w = w.max(22);
        let (x, y, env) = env2(w, a as u128, b as u128);
        prop_assert_eq!(truth(&x.bvslt(&y), &env), truth(&x.bvult(&y), &env));
    }

    #[test]
    fn bool_de_morgan(a: bool, b: bool) {
        let x = Term::var("p", Sort::Bool);
        let y = Term::var("q", Sort::Bool);
        let mut env = Assignment::new();
        env.insert(Arc::from("p"), Value::Bool(a));
        env.insert(Arc::from("q"), Value::Bool(b));
        prop_assert_eq!(
            truth(&x.and(&y).not(), &env),
            truth(&x.not().or(&y.not()), &env)
        );
    }

    #[test]
    fn ite_case_split(c: bool, w in 1u32..64, a: u64, b: u64) {
        let (x, y, mut env) = env2(w, a as u128, b as u128);
        let cond = Term::var("c", Sort::Bool);
        env.insert(Arc::from("c"), Value::Bool(c));
        let expect = if c { bits(&x, &env) } else { bits(&y, &env) };
        prop_assert_eq!(bits(&cond.ite(&x, &y), &env), expect);
    }

    #[test]
    fn shifts_match_reference(w in 1u32..64, a: u64, by in 0u32..80) {
        let (x, _, env) = env2(w, a as u128, 0);
        let sh = Term::bv(w, by as u128 & ((1u128 << w) - 1));
        let masked_by = (by as u128) & ((1u128 << w) - 1);
        let av = (a as u128) & ((1u128 << w) - 1);
        let expect_shl = if masked_by >= w as u128 { 0 } else { (av << masked_by) & ((1u128 << w) - 1) };
        let expect_lshr = if masked_by >= w as u128 { 0 } else { av >> masked_by };
        prop_assert_eq!(bits(&x.bvshl(&sh), &env), expect_shl);
        prop_assert_eq!(bits(&x.bvlshr(&sh), &env), expect_lshr);
    }

    #[test]
    fn substitution_respects_eval(w in 1u32..32, a: u64, b: u64) {
        // eval(t[x := e], env) == eval(t, env[x := eval(e, env)])
        let (x, y, env) = env2(w, a as u128, b as u128);
        let t = x.bvadd(&y).bvmul(&x);
        let e = y.bvxor(&Term::bv(w, 0x2a));
        let mut map = std::collections::HashMap::new();
        map.insert(Arc::from("x"), e.clone());
        let substituted = bf4_smt::substitute(&t, &map);
        let mut env2 = env.clone();
        env2.insert(Arc::from("x"), eval(&e, &env).unwrap());
        prop_assert_eq!(bits(&substituted, &env), bits(&t, &env2));
    }
}
