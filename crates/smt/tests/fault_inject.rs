//! Fault injection through the governed solver.
//!
//! Lives in its own integration-test binary (its own process) because the
//! fault plan is process-global: arming it next to unrelated unit tests
//! would feed their solver queries into the site hit counters.

use bf4_obs::FaultPlan;
use bf4_smt::{default_solver, SatResult, Solver, SolverError, Sort, Term};
use std::sync::{Mutex, PoisonError};

/// All tests in this binary arm the global plan; serialize them.
fn locked() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn injected_backend_fault_degrades_to_unknown_then_recovers() {
    let _g = locked();
    bf4_obs::fault::install(FaultPlan::parse("smt.backend_error=@2").unwrap());
    let x = Term::var("x", Sort::Bool);
    let mut s = default_solver();
    s.assert(&x);
    assert_eq!(s.check(), SatResult::Sat, "hit 1 must not fire");
    assert_eq!(s.check(), SatResult::Unknown, "hit 2 must inject");
    assert!(matches!(
        s.last_error(),
        Some(SolverError::Backend(msg)) if msg.contains("injected")
    ));
    assert_eq!(s.check(), SatResult::Sat, "fault exhausted after hit 2");
    let stats = bf4_obs::fault::clear();
    let site = stats
        .iter()
        .find(|s| s.site == "smt.backend_error")
        .expect("site must have been reached");
    assert_eq!(site.fires, 1);
    assert!(site.hits >= 3);
}

#[test]
fn injected_timeout_reports_a_budget_error() {
    let _g = locked();
    bf4_obs::fault::install(FaultPlan::parse("smt.timeout=on").unwrap());
    let x = Term::var("x", Sort::Bool);
    let mut s = default_solver();
    s.assert(&x);
    assert_eq!(s.check(), SatResult::Unknown);
    assert!(matches!(
        s.last_error(),
        Some(SolverError::Budget(bf4_smt::BudgetKind::Timeout))
    ));
    bf4_obs::fault::clear();
    assert_eq!(s.check(), SatResult::Sat, "disarmed plan must not inject");
}

#[test]
fn same_seed_injects_the_same_schedule() {
    let _g = locked();
    let run = || -> Vec<SatResult> {
        bf4_obs::fault::install(
            FaultPlan::parse("seed=42,smt.backend_error=p0.3").unwrap(),
        );
        let x = Term::var("x", Sort::Bool);
        let mut s = default_solver();
        s.assert(&x);
        let results = (0..20).map(|_| s.check()).collect();
        bf4_obs::fault::clear();
        results
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must replay the same fault schedule");
    assert!(a.contains(&SatResult::Unknown), "p0.3 over 20 hits fired never");
    assert!(a.contains(&SatResult::Sat), "p0.3 over 20 hits fired always");
}
