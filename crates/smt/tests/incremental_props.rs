//! Differential property tests for [`bf4_smt::incremental::IncrementalSolver`]:
//! on a random session of `push`/`assert`/`pop`/`check_assumptions` calls,
//! every verdict the incremental solver produces via assumption-literal
//! frame discharge must match a fresh [`BitBlastSolver`] handed the same
//! live stack and assumptions. This is the contract that lets the engine
//! swap backends per `--solver-mode` without changing any report.

use bf4_smt::bitblast::BitBlastSolver;
use bf4_smt::{eval, Assignment, SatResult, Solver, Sort, Term, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// Tiny deterministic RNG so each proptest case is reproducible from its
/// seed argument alone (same xorshift64* as the canon suite).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const BOOL_VARS: [&str; 3] = ["p", "q", "r"];
const BV_VARS: [&str; 3] = ["x", "y", "z"];

fn gen_bv(rng: &mut Rng, depth: u32) -> Term {
    if depth == 0 || rng.below(4) == 0 {
        return if rng.below(2) == 0 {
            Term::var(BV_VARS[rng.below(3) as usize], Sort::Bv(8))
        } else {
            Term::bv(8, rng.below(256) as u128)
        };
    }
    let a = gen_bv(rng, depth - 1);
    let b = gen_bv(rng, depth - 1);
    match rng.below(6) {
        0 => a.bvadd(&b),
        1 => a.bvand(&b),
        2 => a.bvor(&b),
        3 => a.bvxor(&b),
        4 => a.bvsub(&b),
        _ => gen_bool(rng, depth - 1).ite(&a, &b),
    }
}

fn gen_bool(rng: &mut Rng, depth: u32) -> Term {
    if depth == 0 || rng.below(5) == 0 {
        return Term::var(BOOL_VARS[rng.below(3) as usize], Sort::Bool);
    }
    match rng.below(7) {
        0 => gen_bool(rng, depth - 1).not(),
        1 => gen_bool(rng, depth - 1).and(&gen_bool(rng, depth - 1)),
        2 => gen_bool(rng, depth - 1).or(&gen_bool(rng, depth - 1)),
        3 => gen_bool(rng, depth - 1).implies(&gen_bool(rng, depth - 1)),
        4 => gen_bv(rng, depth - 1).eq_term(&gen_bv(rng, depth - 1)),
        5 => gen_bv(rng, depth - 1).bvult(&gen_bv(rng, depth - 1)),
        _ => gen_bv(rng, depth - 1).bvslt(&gen_bv(rng, depth - 1)),
    }
}

fn all_vars() -> Vec<(Arc<str>, Sort)> {
    BOOL_VARS
        .iter()
        .map(|v| (Arc::from(*v), Sort::Bool))
        .chain(BV_VARS.iter().map(|v| (Arc::from(*v), Sort::Bv(8))))
        .collect()
}

/// Verdict for `stack ∪ assumptions` from a solver with no history at all.
fn fresh_verdict(stack: &[Vec<Term>], assumptions: &[Term]) -> SatResult {
    let mut fresh = BitBlastSolver::new();
    for t in stack.iter().flatten() {
        fresh.assert(t);
    }
    fresh.check_assumptions(assumptions)
}

/// Drive one random session through an incremental solver, mirroring the
/// live stack on the side, and differentially check every verdict.
fn run_session(seed: u64, steps: u32, depth: u32) {
    let mut rng = Rng(seed);
    let mut inc = bf4_smt::incremental::IncrementalSolver::new();
    let mut stack: Vec<Vec<Term>> = vec![Vec::new()];
    let mut checks = 0u32;

    for _ in 0..steps {
        match rng.below(10) {
            // Assert is the most common op, as in real verification runs.
            0..=3 => {
                let t = gen_bool(&mut rng, depth);
                inc.assert(&t);
                stack.last_mut().unwrap().push(t);
            }
            4 => {
                inc.push();
                stack.push(Vec::new());
            }
            5 => {
                if stack.len() > 1 {
                    inc.pop();
                    stack.pop();
                }
            }
            _ => {
                let assumptions: Vec<Term> = (0..rng.below(3))
                    .map(|_| gen_bool(&mut rng, depth))
                    .collect();
                let got = inc.check_assumptions(&assumptions);
                let want = fresh_verdict(&stack, &assumptions);
                prop_assert_eq!(
                    got,
                    want,
                    "verdict diverged at seed {} (stack depth {}, {} assumptions)",
                    seed,
                    stack.len(),
                    assumptions.len()
                );
                checks += 1;
                if got == SatResult::Sat {
                    // A Sat verdict must come with a model of the live
                    // stack and the assumptions, not just of the frame
                    // literals that happened to be passed.
                    let m = inc.model(&all_vars()).expect("model after Sat");
                    let mut env = Assignment::new();
                    for (name, sort) in all_vars() {
                        let v = m.get(&name).cloned().unwrap_or(match sort {
                            Sort::Bool => Value::Bool(false),
                            Sort::Bv(w) => Value::bv(w, 0),
                        });
                        env.insert(name, v);
                    }
                    for t in stack.iter().flatten().chain(assumptions.iter()) {
                        prop_assert!(
                            eval(t, &env).unwrap().as_bool(),
                            "model does not satisfy live term at seed {}",
                            seed
                        );
                    }
                }
            }
        }
    }
    // Make sure sessions can't degenerate into assert-only runs.
    if checks == 0 {
        let got = inc.check_assumptions(&[]);
        prop_assert_eq!(got, fresh_verdict(&stack, &[]));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Incremental verdicts (and Sat models) match a fresh context on
    /// random push/assert/pop/check sessions.
    #[test]
    fn incremental_matches_fresh_context(seed: u64, steps in 4u32..24, depth in 1u32..4) {
        run_session(seed, steps, depth);
    }
}

/// After popping a frame, terms asserted inside it must stop constraining
/// verdicts — the frame's Tseitin clauses stay in the context, so this
/// only holds if frame discharge via assumption literals is correct.
#[test]
fn popped_frames_do_not_constrain() {
    let p = Term::var("p", Sort::Bool);
    let mut inc = bf4_smt::incremental::IncrementalSolver::new();
    inc.assert(&p);
    inc.push();
    inc.assert(&p.not());
    assert_eq!(inc.check(), SatResult::Unsat);
    inc.pop();
    assert_eq!(inc.check(), SatResult::Sat);
    // Re-asserting the popped term is a blast-memo hit and must still flip
    // the verdict back.
    inc.assert(&p.not());
    assert_eq!(inc.check(), SatResult::Unsat);
}
