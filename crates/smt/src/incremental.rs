//! [`IncrementalSolver`]: a [`Solver`] over the internal CDCL engine that
//! retains its bit-blast structure and learned clauses across queries.
//!
//! Where [`crate::bitblast::BitBlastSolver`] re-blasts the whole assertion
//! stack on every `check`, this solver keeps one persistent [`Blaster`] and
//! one growing [`CdclSolver`] per context. Every asserted term lowers once
//! to its root literal (the blast memo is keyed on globally unique term
//! ids, so re-asserting a term after a pop is a cache hit); each `check`
//! then discharges the current stack by passing the root literals of all
//! live frames as *assumption literals*, followed by the blasted user
//! assumptions. `pop` simply drops a frame's literals from the assumption
//! set — the Tseitin clauses stay behind, which is sound because every gate
//! definition is satisfiability-preserving over its fresh variables.
//!
//! The payoff is that the shared round prefix of the per-bug reach queries
//! is encoded and bit-blasted once, and the CDCL solver's learned clauses,
//! variable activities, and saved phases carry over between bugs.
//!
//! Contexts cannot grow without bound: a worker-held solver that crosses
//! [`CTX_RESET_CLAUSES`] drops its context and re-blasts the live stack on
//! the next check (counted as `smt.ctx.reset`).

use crate::bitblast::{Bits, Blaster};
use crate::cnf::Lit;
use crate::sat::{CdclSolver, SolveLimits, SolveResult};
use crate::solver::{BudgetKind, ResourceBudget, SatResult, Solver, SolverError};
use crate::term::{Sort, Term, Value};
use crate::Assignment;
use std::sync::Arc;
use std::time::Instant;

/// Clause count past which a context is dropped and rebuilt from the live
/// stack. Bounds worker-held contexts that survive across programs: every
/// solve decides and propagates over the dead Tseitin structure of
/// everything the context ever asserted, so past this point rebuilding is
/// cheaper than reusing. Tuned on the 22-program corpus: the threshold
/// must fit the largest single round (~40k clauses) with room to amortize
/// across its bugs — 40k thrashes with mid-round resets, 100k+ drags
/// dead weight through most of the corpus; 60k is the measured optimum.
const CTX_RESET_CLAUSES: usize = 60_000;

/// Learned-clause count past which a context flushes its lemmas between
/// checks ([`CdclSolver::drop_learned`]). Far cheaper than a full reset:
/// the bit-blast structure and memo survive, only stale lemmas (and their
/// watch-list weight) go.
const CTX_FLUSH_LEARNED: usize = 10_000;

/// Persistent bit-blast + CDCL context shared by all checks until reset.
struct Ctx {
    blaster: Blaster,
    sat: CdclSolver,
    /// Root literal of each asserted term, parallel to `frames` — lazily
    /// extended at check time (`frame_lits[i].len() <= frames[i].len()`
    /// between checks, equal after a sync).
    frame_lits: Vec<Vec<Lit>>,
}

/// Verdict bookkeeping for `model`/`unsat_core` after the last check.
struct LastCheck {
    result: SatResult,
    /// Frame activation literals passed on the last check, held fixed
    /// during core minimization.
    frame_lits: Vec<Lit>,
    /// User assumption literals, the candidates for the unsat core.
    user_lits: Vec<Lit>,
}

/// A [`Solver`] with persistent solver contexts and assumption-literal
/// frame discharge. Drop-in for [`crate::bitblast::BitBlastSolver`]; wired
/// in as the Internal backend under `SolverMode::Incremental`.
pub struct IncrementalSolver {
    frames: Vec<Vec<Term>>,
    ctx: Option<Ctx>,
    budget: ResourceBudget,
    last_error: Option<SolverError>,
    last: Option<LastCheck>,
}

impl Default for IncrementalSolver {
    fn default() -> IncrementalSolver {
        IncrementalSolver::new()
    }
}

impl IncrementalSolver {
    /// Fresh empty solver with no context yet (built on first check).
    pub fn new() -> IncrementalSolver {
        IncrementalSolver {
            frames: vec![Vec::new()],
            ctx: None,
            budget: ResourceBudget::default(),
            last_error: None,
            last: None,
        }
    }

    /// Formula size of the live stack plus assumptions, for the budget cap
    /// (same quantity the oneshot backend checks before blasting).
    fn formula_size(&self, assumptions: &[Term]) -> usize {
        self.frames
            .iter()
            .flatten()
            .chain(assumptions)
            .map(crate::term_size)
            .sum()
    }

    /// Bring the context in sync with the assertion stack: blast any terms
    /// asserted since the last check and feed the new CNF to the growing
    /// CDCL solver. Returns the flattened frame activation literals.
    fn sync(&mut self) -> Vec<Lit> {
        if self
            .ctx
            .as_ref()
            .is_some_and(|c| c.sat.num_clauses() > CTX_RESET_CLAUSES)
        {
            self.ctx = None;
            bf4_obs::counter_add("smt.ctx.reset", 1);
        }
        if self.ctx.is_some() {
            bf4_obs::counter_add("smt.ctx.reuse", 1);
        }
        let ctx = self.ctx.get_or_insert_with(|| Ctx {
            blaster: Blaster::new(),
            sat: CdclSolver::new(0, Vec::new()),
            frame_lits: Vec::new(),
        });
        ctx.frame_lits.resize(self.frames.len(), Vec::new());
        for (frame, lits) in self.frames.iter().zip(ctx.frame_lits.iter_mut()) {
            for t in &frame[lits.len()..] {
                lits.push(ctx.blaster.blast(t).b());
            }
        }
        ctx.frame_lits.iter().flatten().copied().collect()
    }

    fn run(&mut self, assumptions: &[Term]) -> SatResult {
        self.last_error = None;
        self.last = None;
        if let Some(cap) = self.budget.max_formula_size {
            if self.formula_size(assumptions) > cap {
                self.last_error = Some(SolverError::Budget(BudgetKind::FormulaSize));
                return SatResult::Unknown;
            }
        }
        let deadline = self.budget.timeout.map(|t| Instant::now() + t);
        let frame_lits = self.sync();
        let ctx = self.ctx.as_mut().unwrap();
        let user_lits: Vec<Lit> = assumptions
            .iter()
            .map(|t| ctx.blaster.blast(t).b())
            .collect();
        ctx.sat.grow_vars(ctx.blaster.cnf.num_vars);
        ctx.sat.add_clauses(ctx.blaster.cnf.clauses.drain(..));
        // Flush stale lemmas *before* solving (never after — that would
        // destroy a Sat result's model, which lives in the trail).
        if ctx.sat.num_learned() > CTX_FLUSH_LEARNED {
            ctx.sat.drop_learned();
            bf4_obs::counter_add("smt.ctx.flush_learned", 1);
        }
        let mut all = frame_lits.clone();
        all.extend_from_slice(&user_lits);
        let limits = SolveLimits {
            deadline,
            max_conflicts: self.budget.max_conflicts,
            cancel: None,
        };
        let result = match ctx.sat.solve_limited(&all, &limits) {
            SolveResult::Sat => SatResult::Sat,
            SolveResult::Unsat => SatResult::Unsat,
            SolveResult::Unknown => {
                let kind = if deadline.is_some_and(|d| Instant::now() >= d) {
                    BudgetKind::Timeout
                } else {
                    BudgetKind::Conflicts
                };
                self.last_error = Some(SolverError::Budget(kind));
                SatResult::Unknown
            }
        };
        self.last = Some(LastCheck {
            result,
            frame_lits,
            user_lits,
        });
        result
    }
}

impl Solver for IncrementalSolver {
    fn assert(&mut self, t: &Term) {
        self.frames
            .last_mut()
            .expect("frame stack non-empty (base frame is never popped)")
            .push(t.clone());
    }

    fn push(&mut self) {
        self.frames.push(Vec::new());
    }

    fn pop(&mut self) {
        // Same pop-underflow contract as the other backends (`Solver::pop`).
        debug_assert!(self.frames.len() > 1, "pop on base assertion frame");
        if self.frames.len() > 1 {
            self.frames.pop();
            if let Some(ctx) = &mut self.ctx {
                if ctx.frame_lits.len() > self.frames.len() {
                    ctx.frame_lits.pop();
                }
            }
        }
    }

    fn check(&mut self) -> SatResult {
        self.run(&[])
    }

    fn check_assumptions(&mut self, assumptions: &[Term]) -> SatResult {
        self.run(assumptions)
    }

    fn unsat_core(&mut self) -> Vec<usize> {
        // Deletion-based minimization over the user assumptions only; the
        // frame activation literals are part of the context, not the core.
        let (frame_lits, all) = match (&self.last, &self.ctx) {
            (Some(l), Some(_)) if l.result == SatResult::Unsat => {
                (l.frame_lits.clone(), l.user_lits.clone())
            }
            _ => return Vec::new(),
        };
        let limits = SolveLimits {
            deadline: self.budget.timeout.map(|t| Instant::now() + t),
            max_conflicts: self.budget.max_conflicts,
            cancel: None,
        };
        let sat = &mut self.ctx.as_mut().unwrap().sat;
        let mut kept: Vec<usize> = (0..all.len()).collect();
        let mut i = 0;
        while i < kept.len() {
            let mut trial = frame_lits.clone();
            trial.extend(
                kept.iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, &k)| all[k]),
            );
            // An inconclusive trial keeps its assumption: a non-minimal
            // core is still a valid core.
            if sat.solve_limited(&trial, &limits) == SolveResult::Unsat {
                kept.remove(i);
            } else {
                i += 1;
            }
        }
        kept
    }

    fn model(&mut self, vars: &[(Arc<str>, Sort)]) -> Result<Assignment, SolverError> {
        let ctx = self.ctx.as_ref().ok_or(SolverError::NoModel)?;
        match &self.last {
            Some(l) if l.result == SatResult::Sat => {}
            _ => return Err(SolverError::NoModel),
        }
        let mut out = Assignment::new();
        for (name, sort) in vars {
            let v = match (ctx.blaster.vars.get(name), sort) {
                (Some(Bits::B(l)), Sort::Bool) => {
                    let b = ctx.sat.value(l.var());
                    Value::Bool(if l.is_pos() { b } else { !b })
                }
                (Some(Bits::V(bits)), Sort::Bv(w)) => {
                    let mut x: u128 = 0;
                    for (i, l) in bits.iter().enumerate() {
                        let b = ctx.sat.value(l.var());
                        let b = if l.is_pos() { b } else { !b };
                        if b {
                            x |= 1 << i;
                        }
                    }
                    Value::bv(*w, x)
                }
                (None, Sort::Bool) => Value::Bool(false),
                (None, Sort::Bv(w)) => Value::bv(*w, 0),
                (Some(_), _) => {
                    let err = SolverError::SortMismatch(format!(
                        "model extraction: stored bits for `{name}` disagree with requested sort {sort:?}"
                    ));
                    self.last_error = Some(err.clone());
                    return Err(err);
                }
            };
            out.insert(name.clone(), v);
        }
        Ok(out)
    }

    fn set_budget(&mut self, budget: ResourceBudget) {
        self.budget = budget;
    }

    fn last_error(&self) -> Option<&SolverError> {
        self.last_error.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitblast::BitBlastSolver;

    #[test]
    fn push_pop_matches_oneshot() {
        let x = Term::var("x", Sort::Bool);
        let mut s = IncrementalSolver::new();
        s.assert(&x);
        s.push();
        s.assert(&x.not());
        assert_eq!(s.check(), SatResult::Unsat);
        s.pop();
        assert_eq!(s.check(), SatResult::Sat);
        // The popped frame's clauses stay behind but must not constrain.
        s.push();
        s.assert(&x.not());
        assert_eq!(s.check(), SatResult::Unsat);
        s.pop();
    }

    #[test]
    fn context_is_reused_across_checks() {
        let x = Term::var("x", Sort::Bv(8));
        let mut s = IncrementalSolver::new();
        s.assert(&x.bvugt(&Term::bv(8, 10)));
        assert_eq!(s.check(), SatResult::Sat);
        let clauses_first = s.ctx.as_ref().unwrap().sat.num_clauses();
        // Same prefix, new per-query condition: only the new term blasts.
        s.push();
        s.assert(&x.bvult(&Term::bv(8, 5)));
        assert_eq!(s.check(), SatResult::Unsat);
        s.pop();
        let grown = s.ctx.as_ref().unwrap().sat.num_clauses();
        assert!(grown >= clauses_first, "context must persist, not rebuild");
        // Re-checking the prefix alone blasts nothing new (memo hit).
        assert_eq!(s.check(), SatResult::Sat);
        assert_eq!(s.ctx.as_ref().unwrap().sat.num_clauses(), grown);
    }

    #[test]
    fn reasserting_popped_term_is_a_memo_hit() {
        let x = Term::var("x", Sort::Bv(8));
        let cond = x.bvult(&Term::bv(8, 5));
        let mut s = IncrementalSolver::new();
        s.assert(&x.bvugt(&Term::bv(8, 1)));
        s.push();
        s.assert(&cond);
        assert_eq!(s.check(), SatResult::Sat);
        s.pop();
        let before = s.ctx.as_ref().unwrap().sat.num_clauses();
        s.push();
        s.assert(&cond);
        assert_eq!(s.check(), SatResult::Sat);
        s.pop();
        assert_eq!(s.ctx.as_ref().unwrap().sat.num_clauses(), before);
    }

    #[test]
    fn model_and_core_work_on_the_persistent_context() {
        let x = Term::var("x", Sort::Bv(4));
        let y = Term::var("y", Sort::Bool);
        let mut s = IncrementalSolver::new();
        s.assert(&x.eq_term(&Term::bv(4, 9)));
        assert_eq!(s.check(), SatResult::Sat);
        let m = s
            .model(&[(Arc::from("x"), Sort::Bv(4))])
            .expect("model after sat");
        assert_eq!(m.get("x" as &str), Some(&Value::bv(4, 9)));
        // Core over user assumptions, frame lits held fixed.
        let assumptions = vec![y.clone(), x.eq_term(&Term::bv(4, 3)), y.not()];
        assert_eq!(s.check_assumptions(&assumptions), SatResult::Unsat);
        let core = s.unsat_core();
        assert!(core.contains(&1) || (core.contains(&0) && core.contains(&2)));
    }

    #[test]
    fn verdicts_match_oneshot_on_shared_script() {
        // Drive both solvers through the same assert/push/check/pop script.
        let x = Term::var("x", Sort::Bv(8));
        let y = Term::var("y", Sort::Bv(8));
        let prefix = x.bvadd(&y).eq_term(&Term::bv(8, 20));
        let conds = [
            x.bvugt(&y),
            x.eq_term(&Term::bv(8, 200)),
            x.bvult(&Term::bv(8, 21)),
            y.bvmul(&Term::bv(8, 2)).eq_term(&Term::bv(8, 1)),
        ];
        let mut inc = IncrementalSolver::new();
        let mut one = BitBlastSolver::new();
        inc.assert(&prefix);
        one.assert(&prefix);
        for c in &conds {
            inc.push();
            one.push();
            inc.assert(c);
            one.assert(c);
            assert_eq!(inc.check(), one.check(), "diverged on {c:?}");
            inc.pop();
            one.pop();
        }
    }

    #[test]
    fn budget_formula_size_cap_fires() {
        let x = Term::var("x", Sort::Bv(8));
        let mut s = IncrementalSolver::new();
        s.set_budget(ResourceBudget {
            max_formula_size: Some(1),
            ..ResourceBudget::default()
        });
        s.assert(&x.bvugt(&Term::bv(8, 10)));
        assert_eq!(s.check(), SatResult::Unknown);
        assert!(matches!(
            s.last_error(),
            Some(SolverError::Budget(BudgetKind::FormulaSize))
        ));
    }
}
