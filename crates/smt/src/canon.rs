//! Canonical hashing of queries for the engine's SMT query cache.
//!
//! A *query* is a set of boolean terms checked for joint satisfiability.
//! Two queries that differ only in
//!
//! * the order of the asserted terms,
//! * the order of operands under commutative operators (`and`, `or`, `=`,
//!   `bvadd`, `bvmul`, `bvand`, `bvor`, `bvxor`), or
//! * a consistent (bijective) renaming of their free variables
//!
//! are equisatisfiable, so they may share one cache entry. [`query_key`]
//! maps a query to a 128-bit canonical hash that is invariant under the
//! first two transformations always, and under variable renaming whenever
//! the renaming does not change the pass-1 operand ordering (a renaming
//! that does merely costs a cache miss — never a wrong answer, because
//! any two queries with the same key are alpha-equivalent modulo
//! commutativity and therefore have the same `Sat`/`Unsat` verdict, up to
//! the vanishing probability of a 128-bit hash collision).
//!
//! The construction is two hashing passes over the term DAG:
//!
//! 1. **Named pass** — a structural hash that includes variable *names*.
//!    Commutative operators combine child hashes order-insensitively
//!    (children sorted by hash). This pass pins a deterministic traversal
//!    order.
//! 2. **Numbering** — walking the query in pass-1 order (terms sorted by
//!    named hash; commutative children visited in named-hash order), each
//!    variable gets a dense index at first occurrence. This is the alpha
//!    renaming: names are replaced by occurrence indices.
//! 3. **Canonical pass** — the pass-1 hash recomputed with variables
//!    hashed by `(index, sort)` instead of name, commutative children
//!    sorted by *canonical* child hash. The query key combines the sorted
//!    canonical hashes of all asserted terms under two seeds.
//!
//! Both passes memoize on [`Term::id`], so shared sub-DAGs are hashed
//! once and the whole computation is linear in DAG size.

use crate::term::{BvOp, Sort, Term, TermNode, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// splitmix64 finalizer: cheap, well-mixed, dependency-free.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn combine(h: u64, x: u64) -> u64 {
    mix(h ^ x.wrapping_mul(0x2545_f491_4f6c_dd1d))
}

fn hash_str(s: &str, seed: u64) -> u64 {
    let mut h = seed;
    for b in s.as_bytes() {
        h = combine(h, *b as u64);
    }
    mix(h)
}

fn hash_sort(s: Sort) -> u64 {
    match s {
        Sort::Bool => mix(1),
        Sort::Bv(w) => mix(2 ^ ((w as u64) << 8)),
    }
}

fn hash_value(v: &Value) -> u64 {
    match v {
        Value::Bool(b) => mix(3 ^ (*b as u64) << 8),
        Value::Bv { width, bits } => {
            let mut h = mix(4 ^ ((*width as u64) << 8));
            h = combine(h, *bits as u64);
            combine(h, (*bits >> 64) as u64)
        }
    }
}

/// Operator tags. Distinct per node kind so e.g. `and` and `or` with the
/// same children hash differently.
fn tag(node: &TermNode) -> u64 {
    match node {
        TermNode::Const(_) => 10,
        TermNode::Var(..) => 11,
        TermNode::Not(_) => 12,
        TermNode::And(_) => 13,
        TermNode::Or(_) => 14,
        TermNode::Implies(..) => 15,
        TermNode::Ite(..) => 16,
        TermNode::Eq(..) => 17,
        TermNode::Bv(op, ..) => 100 + *op as u64,
        TermNode::Cmp(op, ..) => 200 + *op as u64,
        TermNode::BvNot(_) => 18,
        TermNode::BvNeg(_) => 19,
        TermNode::Concat(..) => 20,
        TermNode::Extract { hi, lo, .. } => mix(21 ^ ((*hi as u64) << 8) ^ ((*lo as u64) << 40)),
        TermNode::ZeroExt { add, .. } => mix(22 ^ ((*add as u64) << 8)),
        TermNode::SignExt { add, .. } => mix(23 ^ ((*add as u64) << 8)),
    }
}

/// Is operand order irrelevant for this node?
fn commutative(node: &TermNode) -> bool {
    matches!(
        node,
        TermNode::And(_)
            | TermNode::Or(_)
            | TermNode::Eq(..)
            | TermNode::Bv(BvOp::Add | BvOp::Mul | BvOp::And | BvOp::Or | BvOp::Xor, ..)
    )
}

fn children_of(t: &Term) -> Vec<Term> {
    crate::visit::children(t)
}

/// Pass 1: structural hash including variable names; commutative children
/// combined order-insensitively.
fn named_hash(t: &Term, memo: &mut HashMap<u64, u64>) -> u64 {
    if let Some(&h) = memo.get(&t.id()) {
        return h;
    }
    let mut h = combine(tag(t.node()), hash_sort(t.sort()));
    match t.node() {
        TermNode::Const(v) => h = combine(h, hash_value(v)),
        TermNode::Var(name, sort) => {
            h = combine(h, hash_str(name, 7));
            h = combine(h, hash_sort(*sort));
        }
        _ => {
            let mut child_hashes: Vec<u64> = children_of(t)
                .iter()
                .map(|c| named_hash(c, memo))
                .collect();
            if commutative(t.node()) {
                child_hashes.sort_unstable();
            }
            for ch in child_hashes {
                h = combine(h, ch);
            }
        }
    }
    memo.insert(t.id(), h);
    h
}

/// Pass 2 (numbering): assign dense indices to variables at first
/// occurrence, walking in the deterministic pass-1 order.
fn number_vars(
    t: &Term,
    named: &mut HashMap<u64, u64>,
    vars: &mut HashMap<Arc<str>, u64>,
    visited: &mut HashMap<u64, ()>,
) {
    if visited.insert(t.id(), ()).is_some() {
        return;
    }
    if let TermNode::Var(name, _) = t.node() {
        let next = vars.len() as u64;
        vars.entry(name.clone()).or_insert(next);
        return;
    }
    let mut kids = children_of(t);
    if commutative(t.node()) {
        kids.sort_by_cached_key(|c| named_hash(c, named));
    }
    for c in &kids {
        number_vars(c, named, vars, visited);
    }
}

/// Pass 3: canonical hash with alpha-renamed variables; commutative
/// children sorted by canonical child hash.
fn canon_hash(
    t: &Term,
    vars: &HashMap<Arc<str>, u64>,
    memo: &mut HashMap<u64, u64>,
    seed: u64,
) -> u64 {
    if let Some(&h) = memo.get(&t.id()) {
        return h;
    }
    let mut h = combine(combine(seed, tag(t.node())), hash_sort(t.sort()));
    match t.node() {
        TermNode::Const(v) => h = combine(h, hash_value(v)),
        TermNode::Var(name, sort) => {
            let idx = vars.get(name).copied().unwrap_or(u64::MAX);
            h = combine(h, mix(idx.wrapping_add(41)));
            h = combine(h, hash_sort(*sort));
        }
        _ => {
            let mut child_hashes: Vec<u64> = children_of(t)
                .iter()
                .map(|c| canon_hash(c, vars, memo, seed))
                .collect();
            if commutative(t.node()) {
                child_hashes.sort_unstable();
            }
            for ch in child_hashes {
                h = combine(h, ch);
            }
        }
    }
    memo.insert(t.id(), h);
    h
}

/// Canonical 128-bit key of a query (a conjunction of boolean terms).
///
/// Invariant under assertion order, commutative operand order, and
/// (best-effort, always soundly) bijective variable renaming. Two queries
/// with equal keys are equisatisfiable.
pub fn query_key(terms: &[Term]) -> u128 {
    let mut named = HashMap::new();
    // Deterministic term order: by named hash, stable on ties.
    let mut order: Vec<usize> = (0..terms.len()).collect();
    order.sort_by_key(|&i| named_hash(&terms[i], &mut named));

    // Alpha renaming shared across the whole query: a variable appearing
    // in several asserted terms must map to one index.
    let mut vars = HashMap::new();
    let mut visited = HashMap::new();
    for &i in &order {
        number_vars(&terms[i], &mut named, &mut vars, &mut visited);
    }

    let mut key = 0u128;
    for seed in [0x51ed_270b_u64, 0xc2b2_ae35_u64] {
        let mut memo = HashMap::new();
        let mut hashes: Vec<u64> = terms
            .iter()
            .map(|t| canon_hash(t, &vars, &mut memo, seed))
            .collect();
        hashes.sort_unstable();
        let mut h = mix(seed ^ (terms.len() as u64) << 32);
        for x in hashes {
            h = combine(h, x);
        }
        key = (key << 64) | h as u128;
    }
    key
}

/// Canonical key of a single term — [`query_key`] on a one-element query.
pub fn canon_key(t: &Term) -> u128 {
    query_key(std::slice::from_ref(t))
}

/// Fingerprint of the canonical hashing scheme itself.
///
/// Computed by running [`query_key`] over a fixed battery of probe
/// queries exercising every hashing ingredient (operator tags, sorts,
/// constants, commutativity, alpha renaming, multi-term combination) and
/// folding the results. Any change to the canonicalization — new tags,
/// different mixing, reordered passes — shifts this value, which the
/// persistent query cache stores in its header: a cache written under a
/// different scheme is discarded as stale instead of matching fresh
/// queries against keys that no longer mean the same formula.
pub fn schema_fingerprint() -> u64 {
    let p = Term::var("p", Sort::Bool);
    let q = Term::var("q", Sort::Bool);
    let x = Term::var("x", Sort::Bv(16));
    let y = Term::var("y", Sort::Bv(16));
    let c = Term::bv(16, 0xbf4);
    let probes: [Vec<Term>; 4] = [
        vec![p.or(&q.not()), p.implies(&q)],
        vec![x.bvadd(&y).eq_term(&c), x.bvult(&y)],
        vec![Term::and_all([p.clone(), q.clone(), x.eq_term(&y)])],
        vec![x.bvmul(&c).bvsub(&y).eq_term(&Term::bv(16, 1)), p],
    ];
    let mut h = mix(0xf19e_1234);
    for probe in &probes {
        let k = query_key(probe);
        h = combine(h, k as u64);
        h = combine(h, (k >> 64) as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(name: &str) -> Term {
        Term::var(name, Sort::Bool)
    }

    fn v(name: &str) -> Term {
        Term::var(name, Sort::Bv(8))
    }

    #[test]
    fn assertion_order_is_irrelevant() {
        let (p, q) = (b("p"), b("q"));
        let t1 = p.or(&q);
        let t2 = q.implies(&p);
        assert_eq!(
            query_key(&[t1.clone(), t2.clone()]),
            query_key(&[t2, t1])
        );
    }

    #[test]
    fn commutative_operands_sorted() {
        let (x, y) = (v("x"), v("y"));
        assert_eq!(canon_key(&x.bvadd(&y)), canon_key(&y.bvadd(&x)));
        assert_eq!(
            canon_key(&x.eq_term(&y)),
            canon_key(&y.eq_term(&x))
        );
        let (p, q, r) = (b("p"), b("q"), b("r"));
        assert_eq!(
            canon_key(&Term::and_all([p.clone(), q.clone(), r.clone()])),
            canon_key(&Term::and_all([r, p, q]))
        );
    }

    #[test]
    fn noncommutative_operands_are_ordered() {
        // NB `x - y` vs `y - x` over fresh variables are alpha-equivalent
        // (swap x and y), so a key collision there is sound. Break the
        // symmetry with a constant: `x - 3` and `3 - x` must not collide.
        let x = v("x");
        let c = Term::bv(8, 3);
        assert_ne!(canon_key(&x.bvsub(&c)), canon_key(&c.bvsub(&x)));
        assert_ne!(canon_key(&x.bvult(&c)), canon_key(&c.bvult(&x)));
    }

    #[test]
    fn alpha_renaming_hits() {
        // Same shape, different names: one cache entry.
        let t1 = v("a").bvadd(&v("b")).eq_term(&Term::bv(8, 7));
        let t2 = v("p").bvadd(&v("q")).eq_term(&Term::bv(8, 7));
        assert_eq!(canon_key(&t1), canon_key(&t2));
    }

    #[test]
    fn shared_variables_distinguished_from_distinct() {
        // x+x and x+y must not collide.
        let t1 = v("x").bvadd(&v("x"));
        let t2 = v("x").bvadd(&v("y"));
        assert_ne!(canon_key(&t1), canon_key(&t2));
    }

    #[test]
    fn renaming_is_consistent_across_terms() {
        // {p, !p} (unsat shape) must differ from {p, !q} (sat shape).
        let (p, q) = (b("p"), b("q"));
        let k1 = query_key(&[p.clone(), p.not()]);
        let k2 = query_key(&[p.clone(), q.not()]);
        assert_ne!(k1, k2);
    }

    #[test]
    fn distinct_constants_distinct_keys() {
        assert_ne!(
            canon_key(&v("x").eq_term(&Term::bv(8, 1))),
            canon_key(&v("x").eq_term(&Term::bv(8, 2)))
        );
    }
}
