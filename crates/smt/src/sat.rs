//! A CDCL SAT solver with two-watched-literal propagation, first-UIP clause
//! learning, VSIDS-style activities, phase saving and Luby restarts.
//!
//! This solver backs the internal [`crate::bitblast::BitBlastSolver`] used
//! as an independent oracle against Z3 in differential tests. It is a
//! complete, dependency-free implementation — not a toy DPLL — but it is
//! tuned for the modest formula sizes that role requires.

use crate::cnf::{Clause, Lit};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Ternary assignment value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Val {
    True,
    False,
    Undef,
}

impl Val {
    fn negate(self) -> Val {
        match self {
            Val::True => Val::False,
            Val::False => Val::True,
            Val::Undef => Val::Undef,
        }
    }
}

/// Result of a solve call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// Satisfiable; a model is available via [`CdclSolver::value`].
    Sat,
    /// Unsatisfiable.
    Unsat,
    /// A resource limit in [`SolveLimits`] was hit before a decision.
    Unknown,
}

/// Resource limits for a single [`CdclSolver::solve_limited`] call.
#[derive(Clone, Debug, Default)]
pub struct SolveLimits {
    /// Abort with [`SolveResult::Unknown`] once this instant passes. The
    /// clock is polled every few hundred conflicts/decisions, so overshoot
    /// is bounded by one propagation burst, not by formula size.
    pub deadline: Option<Instant>,
    /// Abort with [`SolveResult::Unknown`] after this many conflicts.
    pub max_conflicts: Option<u64>,
    /// Cooperative cancellation: abort with [`SolveResult::Unknown`] once
    /// this flag reads `true`. Polled at the deadline cadence; a portfolio
    /// race sets it so the losing solver releases its CPU as soon as a
    /// winner is known.
    pub cancel: Option<Arc<AtomicBool>>,
}

const CLAUSE_UNDEF: usize = usize::MAX;

struct VarState {
    val: Val,
    level: u32,
    reason: usize, // clause index or CLAUSE_UNDEF
    activity: f64,
    phase: bool,
    seen: bool,
}

/// `a` is picked before `b`: higher activity wins, ties go to the lower
/// variable index. The index tie-break reproduces the historical linear
/// scan (which kept the first maximum), so decision order — and therefore
/// models — are unchanged by the heap.
fn better(vars: &[VarState], a: u32, b: u32) -> bool {
    let (aa, ab) = (vars[a as usize].activity, vars[b as usize].activity);
    aa > ab || (aa == ab && a < b)
}

/// Indexed max-heap over variable activities, MiniSat-style: `pos[v]` maps a
/// variable to its heap slot (or `ABSENT`). Deletion is lazy — assigned
/// variables surface in [`OrderHeap::pop_max`] and are simply skipped by the
/// caller; [`CdclSolver::backtrack`] re-inserts variables it unassigns, so
/// every undefined variable is always present.
struct OrderHeap {
    heap: Vec<u32>,
    pos: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl OrderHeap {
    /// Heap over variables `1..=num_vars`, all inserted. With equal (zero)
    /// activities the ascending layout already satisfies the heap property.
    fn full(num_vars: u32) -> OrderHeap {
        OrderHeap {
            heap: (1..=num_vars).collect(),
            pos: (0..=num_vars).map(|v| v.wrapping_sub(1)).collect(),
        }
    }

    fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] != ABSENT
    }

    /// Extend the variable range to `num_vars`, inserting the new variables.
    fn grow(&mut self, num_vars: u32, vars: &[VarState]) {
        while self.pos.len() <= num_vars as usize {
            self.pos.push(ABSENT);
            self.insert((self.pos.len() - 1) as u32, vars);
        }
    }

    fn insert(&mut self, v: u32, vars: &[VarState]) {
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len() as u32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, vars);
    }

    /// Restore the heap property after `v`'s activity increased.
    fn on_bump(&mut self, v: u32, vars: &[VarState]) {
        if self.contains(v) {
            self.sift_up(self.pos[v as usize] as usize, vars);
        }
    }

    fn pop_max(&mut self, vars: &[VarState]) -> Option<u32> {
        let top = *self.heap.first()?;
        self.pos[top as usize] = ABSENT;
        let last = self.heap.pop().unwrap();
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, vars);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, vars: &[VarState]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if !better(vars, self.heap[i], self.heap[parent]) {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, vars: &[VarState]) {
        loop {
            let mut best = i;
            for child in [2 * i + 1, 2 * i + 2] {
                if child < self.heap.len() && better(vars, self.heap[child], self.heap[best]) {
                    best = child;
                }
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as u32;
        self.pos[self.heap[j] as usize] = j as u32;
    }
}

/// The CDCL solver.
pub struct CdclSolver {
    vars: Vec<VarState>, // index 0 unused
    clauses: Vec<Clause>,
    /// For each literal code, the clauses watching it.
    watches: Vec<Vec<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    var_inc: f64,
    /// Decision order: activity max-heap over unassigned variables.
    order: OrderHeap,
    /// Parallel to `clauses`: true for clauses learned by conflict
    /// analysis (candidates for [`CdclSolver::drop_learned`]), false for
    /// clauses asserted by the caller.
    learned_mark: Vec<bool>,
    num_learned: usize,
    conflicts_since_restart: u64,
    restart_idx: u64,
    /// Failed assumptions from the last unsat assumption solve.
    failed_assumptions: Vec<Lit>,
    /// False once a top-level conflict makes the formula trivially unsat.
    ok: bool,
}

fn lit_code(l: Lit) -> usize {
    let v = l.var() as usize;
    2 * v + usize::from(!l.is_pos())
}

/// Luby restart sequence (unit 64 conflicts).
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing i and its position.
    let mut k = 1u64;
    while (1u64 << (k + 1)) - 1 <= i {
        k += 1;
    }
    loop {
        if i == (1 << k) - 1 {
            return 1 << (k - 1);
        }
        i -= (1 << (k - 1)) - 1 + 1;
        k = 1;
        while (1u64 << (k + 1)) - 1 <= i {
            k += 1;
        }
    }
}

impl CdclSolver {
    /// Create a solver for `num_vars` variables with the given clauses.
    pub fn new(num_vars: u32, clauses: Vec<Clause>) -> CdclSolver {
        let mut s = CdclSolver {
            vars: (0..=num_vars)
                .map(|_| VarState {
                    val: Val::Undef,
                    level: 0,
                    reason: CLAUSE_UNDEF,
                    activity: 0.0,
                    phase: false,
                    seen: false,
                })
                .collect(),
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2 * (num_vars as usize + 1)],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            var_inc: 1.0,
            order: OrderHeap::full(num_vars),
            learned_mark: Vec::new(),
            num_learned: 0,
            conflicts_since_restart: 0,
            restart_idx: 1,
            failed_assumptions: Vec::new(),
            ok: true,
        };
        for c in clauses {
            if !s.add_clause(c) {
                s.ok = false;
            }
        }
        s
    }

    fn value_lit(&self, l: Lit) -> Val {
        let v = self.vars[l.var() as usize].val;
        if l.is_pos() {
            v
        } else {
            v.negate()
        }
    }

    /// Add a clause; returns false if the formula became trivially unsat.
    fn add_clause(&mut self, mut c: Clause) -> bool {
        c.sort();
        c.dedup();
        // tautology?
        for w in c.windows(2) {
            if w[0].var() == w[1].var() {
                return true;
            }
        }
        match c.len() {
            0 => false,
            1 => {
                // Unit at level 0.
                match self.value_lit(c[0]) {
                    Val::True => true,
                    Val::False => false,
                    Val::Undef => {
                        self.enqueue(c[0], CLAUSE_UNDEF);
                        true
                    }
                }
            }
            _ => {
                let ci = self.clauses.len();
                self.watches[lit_code(c[0])].push(ci);
                self.watches[lit_code(c[1])].push(ci);
                self.clauses.push(c);
                self.learned_mark.push(false);
                true
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: usize) {
        let v = l.var() as usize;
        debug_assert_eq!(self.vars[v].val, Val::Undef);
        self.vars[v].val = if l.is_pos() { Val::True } else { Val::False };
        self.vars[v].level = self.decision_level();
        self.vars[v].reason = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns a conflicting clause index or CLAUSE_UNDEF.
    fn propagate(&mut self) -> usize {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = p.negate();
            let code = lit_code(false_lit);
            let mut i = 0;
            'watches: while i < self.watches[code].len() {
                let ci = self.watches[code][i];
                // Ensure the false literal is at position 1.
                if self.clauses[ci][0] == false_lit {
                    self.clauses[ci].swap(0, 1);
                }
                let first = self.clauses[ci][0];
                if self.value_lit(first) == Val::True {
                    i += 1;
                    continue;
                }
                // Look for a new watch.
                for k in 2..self.clauses[ci].len() {
                    let lk = self.clauses[ci][k];
                    if self.value_lit(lk) != Val::False {
                        self.clauses[ci].swap(1, k);
                        self.watches[code].swap_remove(i);
                        self.watches[lit_code(lk)].push(ci);
                        continue 'watches;
                    }
                }
                // Clause is unit or conflicting.
                if self.value_lit(first) == Val::False {
                    self.qhead = self.trail.len();
                    return ci;
                }
                self.enqueue(first, ci);
                i += 1;
            }
        }
        CLAUSE_UNDEF
    }

    fn bump_var(&mut self, v: usize) {
        self.vars[v].activity += self.var_inc;
        if self.vars[v].activity > 1e100 {
            // Uniform rescale preserves the heap order — no fix-up needed.
            for vs in self.vars.iter_mut() {
                vs.activity *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.on_bump(v as u32, &self.vars);
    }

    /// First-UIP conflict analysis. Returns (learnt clause, backtrack level).
    fn analyze(&mut self, mut conflict: usize) -> (Clause, u32) {
        let mut learnt: Clause = vec![Lit(0)]; // slot 0 = asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut to_clear: Vec<usize> = Vec::new();

        loop {
            debug_assert_ne!(conflict, CLAUSE_UNDEF);
            let start = usize::from(p.is_some());
            for k in start..self.clauses[conflict].len() {
                let q = self.clauses[conflict][k];
                let v = q.var() as usize;
                if !self.vars[v].seen && self.vars[v].level > 0 {
                    self.vars[v].seen = true;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.vars[v].level == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal from the trail.
            loop {
                index -= 1;
                let l = self.trail[index];
                if self.vars[l.var() as usize].seen {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.unwrap().var() as usize;
            self.vars[pv].seen = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = p.unwrap().negate();
                break;
            }
            conflict = self.vars[pv].reason;
        }
        for v in to_clear {
            self.vars[v].seen = false;
        }
        // Backtrack level: second-highest level in the learnt clause.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.vars[learnt[i].var() as usize].level
                    > self.vars[learnt[max_i].var() as usize].level
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.vars[learnt[1].var() as usize].level
        };
        self.var_inc *= 1.05;
        (learnt, bt)
    }

    fn backtrack(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = l.var() as usize;
                self.vars[v].phase = self.vars[v].val == Val::True;
                self.vars[v].val = Val::Undef;
                self.vars[v].reason = CLAUSE_UNDEF;
                self.order.insert(l.var(), &self.vars);
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        // Lazy deletion: assigned variables surfacing here are stale heap
        // entries (they were assigned by propagation after insertion) and
        // are dropped; `backtrack` re-inserts anything it unassigns.
        while let Some(v) = self.order.pop_max(&self.vars) {
            if self.vars[v as usize].val == Val::Undef {
                return Some(if self.vars[v as usize].phase {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                });
            }
        }
        None
    }

    fn learn(&mut self, learnt: Clause) {
        if learnt.len() == 1 {
            self.enqueue(learnt[0], CLAUSE_UNDEF);
            return;
        }
        let ci = self.clauses.len();
        self.watches[lit_code(learnt[0])].push(ci);
        self.watches[lit_code(learnt[1])].push(ci);
        let assert_lit = learnt[0];
        self.clauses.push(learnt);
        self.learned_mark.push(true);
        self.num_learned += 1;
        self.enqueue(assert_lit, ci);
    }

    /// Solve under assumptions. On `Unsat`, [`CdclSolver::failed_assumptions`]
    /// holds the subset of assumptions involved in the conflict.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, &SolveLimits::default())
    }

    /// [`CdclSolver::solve`] with resource limits: returns
    /// [`SolveResult::Unknown`] when a limit fires, leaving the solver
    /// reusable for further calls.
    pub fn solve_limited(&mut self, assumptions: &[Lit], limits: &SolveLimits) -> SolveResult {
        self.backtrack(0);
        // Re-propagate the whole level-0 trail: units enqueued by
        // `add_clause` have never been through `propagate`, and
        // `backtrack(0)` advances `qhead` past them.
        self.qhead = 0;
        self.failed_assumptions.clear();
        if !self.ok || self.propagate() != CLAUSE_UNDEF {
            self.ok = false;
            return SolveResult::Unsat;
        }
        let mut conflicts_total: u64 = 0;
        let mut ticks: u32 = 0;
        loop {
            // Poll limits cheaply: the clock only every 256 loop rounds,
            // the conflict cap on every conflict below.
            ticks = ticks.wrapping_add(1);
            if ticks.is_multiple_of(256) {
                if let Some(deadline) = limits.deadline {
                    if Instant::now() >= deadline {
                        self.backtrack(0);
                        return SolveResult::Unknown;
                    }
                }
                if limits.cancel.as_ref().is_some_and(|c| c.load(Ordering::Relaxed)) {
                    self.backtrack(0);
                    return SolveResult::Unknown;
                }
            }
            let conflict = self.propagate();
            if conflict != CLAUSE_UNDEF {
                self.conflicts_since_restart += 1;
                conflicts_total += 1;
                if limits.max_conflicts.is_some_and(|cap| conflicts_total > cap) {
                    self.backtrack(0);
                    return SolveResult::Unknown;
                }
                if self.decision_level() == 0 {
                    return SolveResult::Unsat;
                }
                // If the conflict is at or below the assumption levels, the
                // assumptions are jointly inconsistent with the formula.
                if self.decision_level() <= assumptions.len() as u32 {
                    self.collect_failed(assumptions, conflict);
                    return SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(conflict);
                self.backtrack(bt);
                self.learn(learnt);
                if self.conflicts_since_restart >= 64 * luby(self.restart_idx) {
                    self.conflicts_since_restart = 0;
                    self.restart_idx += 1;
                    self.backtrack(0);
                }
            } else {
                // Place assumptions as the first decisions.
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.value_lit(a) {
                        Val::True => {
                            // Already satisfied: open an empty level so the
                            // index keeps advancing.
                            self.trail_lim.push(self.trail.len());
                        }
                        Val::False => {
                            // Conflicting assumption.
                            self.analyze_final(assumptions, a);
                            return SolveResult::Unsat;
                        }
                        Val::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, CLAUSE_UNDEF);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => return SolveResult::Sat,
                    Some(l) => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, CLAUSE_UNDEF);
                    }
                }
            }
        }
    }

    /// Conservative failed-assumption set from a conflict in the assumption
    /// prefix: every assumption assigned on the trail.
    fn collect_failed(&mut self, assumptions: &[Lit], _conflict: usize) {
        self.failed_assumptions = assumptions
            .iter()
            .copied()
            .filter(|&a| self.value_lit(a) != Val::Undef)
            .collect();
    }

    fn analyze_final(&mut self, assumptions: &[Lit], failing: Lit) {
        // The failing assumption plus everything before it.
        let mut out = Vec::new();
        for &a in assumptions {
            out.push(a);
            if a == failing {
                break;
            }
        }
        self.failed_assumptions = out;
    }

    /// Failed assumptions after an unsat assumption solve (superset of a
    /// minimal core).
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed_assumptions
    }

    /// Model value of a variable after `Sat` (unassigned vars default to
    /// false).
    pub fn value(&self, var: u32) -> bool {
        self.vars[var as usize].val == Val::True
    }

    /// Number of clauses including learnt ones.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Highest variable index the solver knows about.
    pub fn num_vars(&self) -> u32 {
        self.vars.len() as u32 - 1
    }

    /// Extend the variable space to `num_vars` (no-op when already that
    /// large). New variables start unassigned with zero activity and join
    /// the decision order.
    pub fn grow_vars(&mut self, num_vars: u32) {
        while self.vars.len() <= num_vars as usize {
            self.vars.push(VarState {
                val: Val::Undef,
                level: 0,
                reason: CLAUSE_UNDEF,
                activity: 0.0,
                phase: false,
                seen: false,
            });
        }
        if self.watches.len() < 2 * (num_vars as usize + 1) {
            self.watches.resize(2 * (num_vars as usize + 1), Vec::new());
        }
        self.order.grow(num_vars, &self.vars);
    }

    /// Add clauses after construction, growing the solver in place: learned
    /// clauses and activities are retained, which is what makes reusing one
    /// solver across queries cheaper than rebuilding it.
    ///
    /// Backtracks to level 0 first. A new clause may be momentarily
    /// inconsistent with the two-watched-literal invariant (both watches
    /// false at level 0); that is safe because `solve_limited` re-propagates
    /// the entire level-0 trail (`qhead = 0`) on entry, which revisits the
    /// new clause before any search happens.
    pub fn add_clauses<I: IntoIterator<Item = Clause>>(&mut self, clauses: I) {
        self.backtrack(0);
        for c in clauses {
            if !self.add_clause(c) {
                self.ok = false;
            }
        }
    }

    /// Number of learned clauses currently in the database.
    pub fn num_learned(&self) -> usize {
        self.num_learned
    }

    /// Delete every learned clause, compacting the database in place.
    /// Caller-asserted clauses and all level-0 facts survive — both are
    /// implied by the asserted formula, so subsequent solves stay sound
    /// and complete. A long-lived incremental context calls this between
    /// checks to bound the propagation weight stale lemmas accumulate; it
    /// is never called mid-solve, so single-query (oneshot) behavior is
    /// untouched.
    pub fn drop_learned(&mut self) {
        if self.num_learned == 0 {
            return;
        }
        self.backtrack(0);
        // Compact `clauses`, recording where each kept clause moved.
        let mut remap: Vec<usize> = Vec::with_capacity(self.clauses.len());
        let mut kept = 0usize;
        for &learned in &self.learned_mark {
            remap.push(if learned { CLAUSE_UNDEF } else { kept });
            kept += usize::from(!learned);
        }
        let mut i = 0;
        let marks = std::mem::take(&mut self.learned_mark);
        self.clauses.retain(|_| {
            let keep = !marks[i];
            i += 1;
            keep
        });
        self.learned_mark = vec![false; self.clauses.len()];
        self.num_learned = 0;
        for w in self.watches.iter_mut() {
            w.retain_mut(|ci| {
                *ci = remap[*ci];
                *ci != CLAUSE_UNDEF
            });
        }
        // Level-0 facts propagated out of a deleted lemma keep their
        // truth (lemmas are implied) but lose the reason index; conflict
        // analysis never walks level-0 reasons, so `CLAUSE_UNDEF` is fine.
        for l in &self.trail {
            let r = &mut self.vars[l.var() as usize].reason;
            if *r != CLAUSE_UNDEF {
                *r = remap[*r];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(num_vars: u32, clauses: &[&[i32]]) -> SolveResult {
        let cs: Vec<Clause> = clauses
            .iter()
            .map(|c| c.iter().map(|&l| Lit(l)).collect())
            .collect();
        CdclSolver::new(num_vars, cs).solve(&[])
    }

    #[test]
    fn trivial_sat() {
        assert_eq!(solve(1, &[&[1]]), SolveResult::Sat);
    }

    #[test]
    fn trivial_unsat() {
        assert_eq!(solve(1, &[&[1], &[-1]]), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        assert_eq!(solve(1, &[&[]]), SolveResult::Unsat);
    }

    #[test]
    fn chain_implication() {
        // x1 & (x1->x2) & ... & (x9->x10) & !x10 : unsat
        let mut cs: Vec<Vec<i32>> = vec![vec![1]];
        for i in 1..10 {
            cs.push(vec![-i, i + 1]);
        }
        cs.push(vec![-10]);
        let refs: Vec<&[i32]> = cs.iter().map(|c| c.as_slice()).collect();
        assert_eq!(solve(10, &refs), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_{i,j}: pigeon i in hole j. vars 1..=6 = (i,j) row-major.
        let v = |i: i32, j: i32| (i - 1) * 2 + j;
        let mut cs: Vec<Vec<i32>> = Vec::new();
        for i in 1..=3 {
            cs.push(vec![v(i, 1), v(i, 2)]);
        }
        for j in 1..=2 {
            for a in 1..=3 {
                for b in (a + 1)..=3 {
                    cs.push(vec![-v(a, j), -v(b, j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = cs.iter().map(|c| c.as_slice()).collect();
        assert_eq!(solve(6, &refs), SolveResult::Unsat);
    }

    #[test]
    fn model_satisfies_clauses() {
        let clauses: Vec<Clause> = vec![
            vec![Lit(1), Lit(2)],
            vec![Lit(-1), Lit(3)],
            vec![Lit(-2), Lit(-3)],
            vec![Lit(2), Lit(3)],
        ];
        let mut s = CdclSolver::new(3, clauses.clone());
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        for c in &clauses {
            assert!(c.iter().any(|&l| {
                let v = s.value(l.var());
                if l.is_pos() {
                    v
                } else {
                    !v
                }
            }));
        }
    }

    #[test]
    fn assumptions_flip_result() {
        // (x1 | x2) with assumption !x1 forces x2.
        let mut s = CdclSolver::new(2, vec![vec![Lit(1), Lit(2)]]);
        assert_eq!(s.solve(&[Lit(-1)]), SolveResult::Sat);
        assert!(s.value(2));
        // assumption x1 & !x1 style conflict through clauses
        let mut s = CdclSolver::new(2, vec![vec![Lit(-1), Lit(2)], vec![Lit(-1), Lit(-2)]]);
        assert_eq!(s.solve(&[Lit(1)]), SolveResult::Unsat);
        assert!(!s.failed_assumptions().is_empty());
        // still sat without assumptions
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn conflict_limit_yields_unknown_and_solver_stays_usable() {
        // Pigeonhole 5-into-4: hard enough to need many conflicts.
        let v = |i: i32, j: i32| (i - 1) * 4 + j;
        let mut cs: Vec<Clause> = Vec::new();
        for i in 1..=5 {
            cs.push((1..=4).map(|j| Lit(v(i, j))).collect());
        }
        for j in 1..=4 {
            for a in 1..=5 {
                for b in (a + 1)..=5 {
                    cs.push(vec![Lit(-v(a, j)), Lit(-v(b, j))]);
                }
            }
        }
        let mut s = CdclSolver::new(20, cs);
        let limited = SolveLimits {
            max_conflicts: Some(3),
            ..SolveLimits::default()
        };
        assert_eq!(s.solve_limited(&[], &limited), SolveResult::Unknown);
        // The same solver, unlimited, still reaches the right answer.
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn drop_learned_preserves_verdicts_and_models() {
        // Pigeonhole 4-into-3 forces real conflict learning; flushing the
        // lemmas must leave the solver sound, complete and reusable.
        let v = |i: i32, j: i32| (i - 1) * 3 + j;
        let mut cs: Vec<Clause> = Vec::new();
        for i in 1..=4 {
            cs.push((1..=3).map(|j| Lit(v(i, j))).collect());
        }
        for j in 1..=3 {
            for a in 1..=4 {
                for b in (a + 1)..=4 {
                    cs.push(vec![Lit(-v(a, j)), Lit(-v(b, j))]);
                }
            }
        }
        let mut s = CdclSolver::new(12, cs);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.num_learned() > 0);
        s.drop_learned();
        assert_eq!(s.num_learned(), 0);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);

        // A satisfiable instance: flush between solves, then grow it and
        // keep going — watches and reasons must survive the compaction.
        let mut s = CdclSolver::new(
            3,
            vec![
                vec![Lit(1), Lit(2)],
                vec![Lit(-1), Lit(3)],
                vec![Lit(-2), Lit(3)],
            ],
        );
        assert_eq!(s.solve(&[Lit(-3)]), SolveResult::Unsat);
        s.drop_learned();
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.value(3) || (s.value(1) || s.value(2)));
        s.grow_vars(4);
        s.add_clauses(vec![vec![Lit(-3), Lit(4)]]);
        assert_eq!(s.solve(&[Lit(3)]), SolveResult::Sat);
        assert!(s.value(4));
    }

    #[test]
    fn expired_deadline_yields_unknown() {
        let mut cs: Vec<Clause> = vec![vec![Lit(1), Lit(2)]];
        for i in 1..=8i32 {
            cs.push(vec![Lit(i), Lit(-(i % 8 + 1))]);
        }
        let mut s = CdclSolver::new(8, cs);
        let limits = SolveLimits {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            ..SolveLimits::default()
        };
        // An already-expired deadline must abort (possibly after one cheap
        // propagation burst) rather than hang or panic.
        let r = s.solve_limited(&[], &limits);
        assert!(r == SolveResult::Unknown || r == SolveResult::Sat);
    }

    #[test]
    fn grown_solver_matches_fresh_on_random_instances() {
        // Feed random 3-SAT instances in two increments to one solver and
        // all at once to a fresh one: verdicts must agree at every step,
        // including after an Unsat (ok=false is permanent by design).
        let mut seed = 0xdeadbeefu64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for _case in 0..40 {
            let nv_a = 4 + (rng() % 5);
            let nv_b = nv_a + (rng() % 4);
            let mk = |rng: &mut dyn FnMut() -> u32, n: usize, nv: u32| -> Vec<Clause> {
                (0..n)
                    .map(|_| {
                        (0..3)
                            .map(|_| {
                                let v = 1 + (rng() % nv);
                                if rng().is_multiple_of(2) {
                                    Lit::pos(v)
                                } else {
                                    Lit::neg(v)
                                }
                            })
                            .collect()
                    })
                    .collect()
            };
            let n1 = 3 + (rng() % 10) as usize;
            let first = mk(&mut rng, n1, nv_a);
            let n2 = 3 + (rng() % 10) as usize;
            let second = mk(&mut rng, n2, nv_b);

            let mut grown = CdclSolver::new(nv_a, first.clone());
            let r1 = grown.solve(&[]);
            let f1 = CdclSolver::new(nv_a, first.clone()).solve(&[]);
            assert_eq!(r1, f1);

            grown.grow_vars(nv_b);
            grown.add_clauses(second.clone());
            let r2 = grown.solve(&[]);
            let mut all = first.clone();
            all.extend(second.clone());
            let f2 = CdclSolver::new(nv_b, all).solve(&[]);
            assert_eq!(r2, f2, "grown vs fresh mismatch: {first:?} + {second:?}");
        }
    }

    #[test]
    fn grown_solver_assumptions_still_work() {
        // (x1 | x2); grow with (x3 -> !x2); assume x3 & !x1 forces conflict
        // with x2, so check the model path and the failed-assumption path.
        let mut s = CdclSolver::new(2, vec![vec![Lit(1), Lit(2)]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.grow_vars(3);
        s.add_clauses([vec![Lit(-3), Lit(-2)]]);
        assert_eq!(s.solve(&[Lit(3), Lit(-1)]), SolveResult::Unsat);
        assert!(!s.failed_assumptions().is_empty());
        assert_eq!(s.solve(&[Lit(3)]), SolveResult::Sat);
        assert!(s.value(1) && !s.value(2));
    }

    #[test]
    fn random_3sat_cross_check_bruteforce() {
        // Deterministic LCG-generated instances, cross-checked by brute force.
        let mut seed = 0x12345678u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for _case in 0..30 {
            let nv = 8;
            let nc = 4 + (rng() % 30) as usize;
            let clauses: Vec<Clause> = (0..nc)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = 1 + (rng() % nv);
                            if rng() % 2 == 0 {
                                Lit::pos(v)
                            } else {
                                Lit::neg(v)
                            }
                        })
                        .collect()
                })
                .collect();
            // Brute force.
            let mut brute_sat = false;
            for m in 0u32..(1 << nv) {
                if clauses.iter().all(|c| {
                    c.iter().any(|&l| {
                        let v = ((m >> (l.var() - 1)) & 1) == 1;
                        if l.is_pos() {
                            v
                        } else {
                            !v
                        }
                    })
                }) {
                    brute_sat = true;
                    break;
                }
            }
            let mut s = CdclSolver::new(nv, clauses.clone());
            let got = s.solve(&[]);
            assert_eq!(
                got == SolveResult::Sat,
                brute_sat,
                "mismatch on {clauses:?}"
            );
            if got == SolveResult::Sat {
                for c in &clauses {
                    assert!(c.iter().any(|&l| {
                        let v = s.value(l.var());
                        if l.is_pos() {
                            v
                        } else {
                            !v
                        }
                    }));
                }
            }
        }
    }
}
