//! Solver governance: budgets, retries and fallback around any [`Solver`].
//!
//! [`GovernedSolver`] wraps a backend and enforces a [`ResourceBudget`] on
//! every query:
//!
//! * a per-query wall-clock deadline and a lifetime query cap;
//! * on a transient `Unknown`, bounded retries on a **fresh context** with
//!   the assertion stack re-asserted in simplified form (stale learnt
//!   state and lowering memos are the classic cause of flaky `Unknown`s);
//! * if the primary backend still cannot decide and the formula is small
//!   enough, a last-resort **fallback** to the internal bit-blasting CDCL
//!   solver, which is complete on the QF_BV fragment bf4 emits;
//! * `Unknown` that survives all of that is returned as `Unknown`, with
//!   [`Solver::last_error`] explaining which limit fired — callers must
//!   treat it as "possible bug, undecided", never as "no bug".
//!
//! The wrapper mirrors the assertion stack itself, so it can rebuild any
//! backend from scratch at any time; this is also what makes the fresh
//! context retries and the fallback possible at all.

use crate::bitblast::BitBlastSolver;
use crate::incremental::IncrementalSolver;
use crate::simplify::simplify;
use crate::solver::{BudgetKind, ResourceBudget, SatResult, Solver, SolverError};
use crate::term::{Sort, Term};
use crate::Assignment;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Which backend a [`GovernedSolver`] (or the [`new_solver`] factory) runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Z3 when the crate is built with the `z3` feature, otherwise the
    /// internal bit-blasting CDCL solver.
    #[default]
    Auto,
    /// The internal bit-blasting CDCL solver.
    Internal,
    /// The Z3 backend (requires the `z3` feature; [`new_solver`] falls
    /// back to `Internal` when the feature is off).
    Z3,
}

impl BackendKind {
    fn resolve(self) -> BackendKind {
        match self {
            BackendKind::Auto | BackendKind::Z3 => {
                #[cfg(feature = "z3")]
                {
                    BackendKind::Z3
                }
                #[cfg(not(feature = "z3"))]
                {
                    BackendKind::Internal
                }
            }
            BackendKind::Internal => BackendKind::Internal,
        }
    }

    fn build(self, mode: SolverMode) -> Box<dyn Solver> {
        match self.resolve() {
            // The internal backend is context-per-check in oneshot mode and
            // a persistent assumption-literal context otherwise; Z3 is
            // natively incremental, so mode does not change its shape.
            BackendKind::Internal => match mode {
                SolverMode::Oneshot => Box::new(BitBlastSolver::new()),
                SolverMode::Incremental | SolverMode::Portfolio => {
                    Box::new(IncrementalSolver::new())
                }
            },
            #[cfg(feature = "z3")]
            BackendKind::Z3 => Box::new(crate::z3backend::Z3Backend::new()),
            #[cfg(not(feature = "z3"))]
            BackendKind::Z3 => unreachable!("resolve() maps Z3 to Internal without the feature"),
            BackendKind::Auto => unreachable!("resolve() never returns Auto"),
        }
    }
}

/// How a [`GovernedSolver`] discharges queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SolverMode {
    /// Every check blasts the full assertion stack on a fresh context —
    /// the historical behavior and the byte-identical default.
    #[default]
    Oneshot,
    /// One persistent context per solver: the assertion stack is encoded
    /// once and each query is discharged via assumption literals, keeping
    /// learned clauses and bit-blast structure across checks
    /// ([`IncrementalSolver`]).
    Incremental,
    /// Incremental primary, plus a per-query challenger on its own thread
    /// racing a fresh context; the first definite verdict wins (primary
    /// preferred on ties, so reports stay deterministic).
    Portfolio,
}

impl SolverMode {
    /// Parse a `--solver-mode` value.
    pub fn parse(s: &str) -> Option<SolverMode> {
        match s {
            "oneshot" => Some(SolverMode::Oneshot),
            "incremental" => Some(SolverMode::Incremental),
            "portfolio" => Some(SolverMode::Portfolio),
            _ => None,
        }
    }
}

/// Smallest formula size (term DAG nodes) for which portfolio mode spawns
/// a challenger thread. Racing a trivial query costs more in thread setup
/// than the query itself; small queries run on the primary alone. The
/// default sits just above the corpus's 90th-percentile query size
/// (~2.3k nodes), so only the queries that dominate wall-clock race.
pub const DEFAULT_RACE_MIN_SIZE: usize = 2048;

/// Configuration for [`new_solver`].
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Backend selection.
    pub backend: BackendKind,
    /// Query discharge strategy (see [`SolverMode`]).
    pub mode: SolverMode,
    /// Portfolio only: formula size below which no challenger is spawned.
    pub race_min_size: usize,
    /// Budget enforced by the governing wrapper.
    pub budget: ResourceBudget,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            backend: BackendKind::default(),
            mode: SolverMode::default(),
            race_min_size: DEFAULT_RACE_MIN_SIZE,
            budget: ResourceBudget::default(),
        }
    }
}

impl SolverConfig {
    /// Config with the default backend and the given per-query timeout.
    pub fn with_timeout(timeout: Duration) -> SolverConfig {
        SolverConfig {
            budget: ResourceBudget {
                timeout: Some(timeout),
                ..ResourceBudget::bounded_default()
            },
            ..SolverConfig::default()
        }
    }
}

/// Build the standard governed solver for the pipeline: the configured
/// backend wrapped in a [`GovernedSolver`] enforcing the configured budget.
pub fn new_solver(config: &SolverConfig) -> GovernedSolver {
    let mut s = GovernedSolver::with_mode(config.backend, config.mode);
    s.race_min_size = config.race_min_size;
    s.set_budget(config.budget.clone());
    s
}

/// Build a governed solver with default backend and the bounded default
/// budget — the drop-in replacement for bare backend construction.
pub fn default_solver() -> GovernedSolver {
    new_solver(&SolverConfig::default())
}

/// Counters describing what governance had to do; useful in reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GovernanceStats {
    /// Queries issued through this solver.
    pub queries: u64,
    /// Fresh-context retries performed after transient `Unknown`s.
    pub retries: u64,
    /// Retries abandoned because the remaining deadline was smaller than
    /// the minimum retry backoff — the query returned `Unknown` at once
    /// instead of burning a doomed attempt.
    pub retries_skipped: u64,
    /// Queries answered by the internal fallback solver.
    pub fallbacks: u64,
    /// Queries refused or aborted because a budget limit fired.
    pub budget_exhausted: u64,
}

/// Smallest backoff a retry would sleep (the first retry's backoff). A
/// deadline with less than this remaining cannot fit a useful retry.
const MIN_RETRY_BACKOFF: Duration = Duration::from_millis(2);

/// A [`Solver`] wrapper enforcing [`ResourceBudget`] with retry and
/// fallback. See the module docs for the exact policy.
pub struct GovernedSolver {
    kind: BackendKind,
    mode: SolverMode,
    /// Portfolio only: spawn a challenger when the formula is at least
    /// this many term DAG nodes.
    race_min_size: usize,
    primary: Box<dyn Solver>,
    /// Fallback solver that answered the most recent query, if any. Kept
    /// until the next state mutation so `model`/`unsat_core` read from the
    /// solver that actually produced the result.
    fallback: Option<BitBlastSolver>,
    /// Mirrored assertion stack (source of truth for rebuilds).
    frames: Vec<Vec<Term>>,
    budget: ResourceBudget,
    stats: GovernanceStats,
    last_error: Option<SolverError>,
}

impl Default for GovernedSolver {
    fn default() -> Self {
        Self::with_backend(BackendKind::Auto)
    }
}

impl GovernedSolver {
    /// Governed solver over the given backend with the bounded default
    /// budget, in the default (oneshot) mode.
    pub fn with_backend(kind: BackendKind) -> GovernedSolver {
        GovernedSolver::with_mode(kind, SolverMode::default())
    }

    /// Governed solver over the given backend in the given mode.
    pub fn with_mode(kind: BackendKind, mode: SolverMode) -> GovernedSolver {
        GovernedSolver {
            kind,
            mode,
            race_min_size: DEFAULT_RACE_MIN_SIZE,
            primary: kind.build(mode),
            fallback: None,
            frames: vec![Vec::new()],
            budget: ResourceBudget::bounded_default(),
            stats: GovernanceStats::default(),
            last_error: None,
        }
    }

    /// The query discharge mode this solver runs.
    pub fn mode(&self) -> SolverMode {
        self.mode
    }

    /// Counters for reporting.
    pub fn stats(&self) -> GovernanceStats {
        self.stats
    }

    /// The backend actually in use after feature resolution.
    pub fn backend_kind(&self) -> BackendKind {
        self.kind.resolve()
    }

    fn formula_size(&self, assumptions: &[Term]) -> usize {
        self.frames
            .iter()
            .flatten()
            .chain(assumptions)
            .map(crate::term_size)
            .sum()
    }

    /// Budget handed to a backend for one query, with the per-query
    /// deadline converted to whatever time remains.
    fn query_budget(&self, deadline: Option<Instant>) -> ResourceBudget {
        ResourceBudget {
            timeout: deadline.map(|d| d.saturating_duration_since(Instant::now())),
            ..self.budget.clone()
        }
    }

    /// Rebuild a backend of the primary kind from the mirrored stack,
    /// optionally with simplified assertions.
    fn rebuilt_primary(&self, simplified: bool) -> Box<dyn Solver> {
        let mut s = self.kind.build(self.mode);
        for frame in &self.frames {
            s.push();
            for t in frame {
                if simplified {
                    s.assert(&simplify(t));
                } else {
                    s.assert(t);
                }
            }
        }
        s
    }

    /// Rebuild the internal fallback solver from the mirrored stack.
    fn rebuilt_fallback(&self) -> BitBlastSolver {
        let mut s = BitBlastSolver::new();
        for frame in &self.frames {
            s.push();
            for t in frame {
                s.assert(&simplify(t));
            }
        }
        s
    }

    /// Any state mutation invalidates the fallback result of the previous
    /// query.
    fn invalidate_fallback(&mut self) {
        self.fallback = None;
    }

    fn governed_check(&mut self, assumptions: &[Term]) -> SatResult {
        self.invalidate_fallback();
        self.last_error = None;
        self.stats.queries += 1;
        bf4_obs::counter_add("smt.queries", 1);
        let mut sp = bf4_obs::span("smt", "check");
        if sp.is_active() {
            sp.add_tag("backend", backend_label(self.backend_kind()));
            if self.mode != SolverMode::Oneshot {
                sp.add_tag("mode", mode_label(self.mode));
            }
        }
        if self
            .budget
            .max_queries
            .is_some_and(|cap| self.stats.queries > cap)
        {
            self.stats.budget_exhausted += 1;
            bf4_obs::counter_add("smt.budget_exhausted", 1);
            sp.add_tag("verdict", "unknown");
            sp.add_tag("budget", "queries");
            self.last_error = Some(SolverError::Budget(BudgetKind::Queries));
            return SatResult::Unknown;
        }
        let size = self.formula_size(assumptions);
        if self.budget.max_formula_size.is_some_and(|cap| size > cap) {
            self.stats.budget_exhausted += 1;
            bf4_obs::counter_add("smt.budget_exhausted", 1);
            sp.add_tag("verdict", "unknown");
            sp.add_tag("budget", "formula_size");
            self.last_error = Some(SolverError::Budget(BudgetKind::FormulaSize));
            return SatResult::Unknown;
        }
        let deadline = self.budget.timeout.map(|t| Instant::now() + t);

        // Chaos hooks: an injected backend failure or timeout degrades this
        // query to `Unknown` — the same conservative answer a real one
        // produces — and is reported through `last_error` like a real one.
        let injected = if bf4_obs::fault::fire("smt.backend_error") {
            Some(SolverError::Backend("injected fault: backend failure".into()))
        } else if bf4_obs::fault::fire("smt.timeout") {
            Some(SolverError::Budget(BudgetKind::Timeout))
        } else {
            None
        };
        if let Some(err) = injected {
            self.stats.budget_exhausted += 1;
            bf4_obs::counter_add("smt.budget_exhausted", 1);
            sp.add_tag("verdict", "unknown");
            sp.add_tag("injected", "fault");
            self.last_error = Some(err);
            return SatResult::Unknown;
        }

        // Portfolio: race a challenger on its own thread while the primary
        // runs. The challenger is a fresh oneshot context of the *other*
        // backend (which resolves to a fresh internal context when the z3
        // feature is off) — independent search order is the point. Its
        // start is staggered: on a healthy query the primary answers
        // within the stagger and cancels a challenger that is still
        // asleep, so racing costs one thread spawn, not a duplicated
        // solve; only a slow (likely stuck) primary lets the challenger
        // start searching at all.
        let race = if self.mode == SolverMode::Portfolio && size >= self.race_min_size {
            bf4_obs::counter_add("smt.race.spawned", 1);
            let stagger = deadline.map_or(RACE_STAGGER, |d| {
                RACE_STAGGER.min(d.saturating_duration_since(Instant::now()) / 4)
            });
            Some(spawn_challenger(
                self.frames.clone(),
                assumptions.to_vec(),
                self.query_budget(deadline),
                stagger,
            ))
        } else {
            None
        };

        self.primary.set_budget(self.query_budget(deadline));
        let mut result = if assumptions.is_empty() {
            self.primary.check()
        } else {
            self.primary.check_assumptions(assumptions)
        };

        // Race arbitration: a definite primary verdict always wins (both
        // solvers are sound and complete on QF_BV, so verdicts agree and
        // preferring the primary keeps results deterministic). Only when
        // the primary came back Unknown do we wait out the challenger for
        // the remaining deadline and adopt its verdict — stored as the
        // answering solver so model/unsat_core stay consistent.
        if let Some((rx, cancel)) = race {
            if result != SatResult::Unknown {
                bf4_obs::counter_add("smt.race.primary_win", 1);
            } else {
                let got = match deadline {
                    Some(d) => rx
                        .recv_timeout(d.saturating_duration_since(Instant::now()))
                        .ok(),
                    None => rx.recv().ok(),
                };
                if let Some((r, challenger)) = got {
                    if r != SatResult::Unknown {
                        bf4_obs::counter_add("smt.race.challenger_win", 1);
                        sp.add_tag("race", "challenger");
                        result = r;
                        self.fallback = Some(challenger);
                    }
                }
            }
            // The race is decided either way: tell a still-running
            // challenger to stop so it releases its CPU mid-search
            // instead of solving to completion for a dropped receiver.
            cancel.store(true, std::sync::atomic::Ordering::Relaxed);
        }

        // Bounded fresh-context retries with simplified formulas. Backoff
        // between attempts is deliberately tiny: the point is to yield and
        // decorrelate, not to wait for an external service.
        let mut retries = 0;
        while result == SatResult::Unknown && retries < self.budget.max_retries {
            // A retry needs at least its minimum backoff worth of deadline
            // to have any chance; with less remaining, return `Unknown`
            // now instead of burning a doomed attempt.
            if let Some(d) = deadline {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining < MIN_RETRY_BACKOFF {
                    self.stats.retries_skipped += 1;
                    bf4_obs::counter_add("smt.retries_skipped", 1);
                    bf4_obs::warn(
                        "smt",
                        &format!(
                            "skipping retry: {remaining:?} of deadline left, \
                             below minimum backoff {MIN_RETRY_BACKOFF:?}"
                        ),
                    );
                    sp.add_tag("retries_skipped", "1");
                    break;
                }
            }
            retries += 1;
            self.stats.retries += 1;
            // Backoff capped to the remaining deadline: a pooled worker
            // must never sleep past its query budget just to retry.
            let mut backoff = Duration::from_millis(2 * retries as u64);
            if let Some(d) = deadline {
                backoff = backoff.min(d.saturating_duration_since(Instant::now()));
            }
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            let mut fresh = self.rebuilt_primary(true);
            fresh.set_budget(self.query_budget(deadline));
            result = if assumptions.is_empty() {
                fresh.check()
            } else {
                fresh.check_assumptions(assumptions)
            };
            if result != SatResult::Unknown {
                // The fresh context decided it; keep it as the answering
                // solver so model/unsat_core are consistent with `result`.
                self.primary = fresh;
            }
        }

        // Last resort: the internal solver is complete on QF_BV, so hand
        // it small formulas the primary could not decide. Pointless when
        // the primary *is* the internal solver.
        if result == SatResult::Unknown
            && self.backend_kind() != BackendKind::Internal
            && size <= self.budget.fallback_max_size
            && deadline.is_none_or(|d| Instant::now() < d)
        {
            self.stats.fallbacks += 1;
            bf4_obs::counter_add("smt.fallbacks", 1);
            sp.add_tag("fallback", "internal");
            let mut fb = self.rebuilt_fallback();
            fb.set_budget(self.query_budget(deadline));
            result = if assumptions.is_empty() {
                fb.check()
            } else {
                fb.check_assumptions(assumptions)
            };
            self.fallback = Some(fb);
        }

        if result == SatResult::Unknown {
            self.stats.budget_exhausted += 1;
            bf4_obs::counter_add("smt.budget_exhausted", 1);
            // Prefer the answering backend's own reason; otherwise report
            // the deadline, the usual cause.
            self.last_error = self
                .fallback
                .as_ref()
                .and_then(|f| Solver::last_error(f).cloned())
                .or_else(|| self.primary.last_error().cloned())
                .or(Some(SolverError::Budget(BudgetKind::Timeout)));
        }
        if sp.is_active() {
            sp.add_tag("verdict", verdict_label(result));
            if retries > 0 {
                sp.add_tag("retries", retries.to_string());
            }
        }
        if retries > 0 {
            bf4_obs::counter_add("smt.retries", retries as u64);
        }
        result
    }
}

/// How long a portfolio challenger sleeps before it starts solving.
/// Sized well above the corpus's per-query solve times, so a healthy
/// primary wins (and cancels the race) while the challenger is still
/// asleep and has consumed no CPU; a primary that overruns the stagger is
/// the stuck case the challenger exists for.
const RACE_STAGGER: Duration = Duration::from_millis(25);

/// Spawn a detached challenger: a fresh oneshot internal context replaying
/// the mirrored stack, solving under the same per-query budget. The result
/// (and the solver itself, for model/unsat_core extraction) comes back on
/// the channel. The returned flag cancels the challenger cooperatively —
/// the arbiter sets it once the race is decided — at two points: during
/// the stagger sleep (the healthy-primary case, where the challenger then
/// exits having done no work) and at the CDCL loop's limit poll (the
/// mid-search case).
fn spawn_challenger(
    frames: Vec<Vec<Term>>,
    assumptions: Vec<Term>,
    budget: ResourceBudget,
    stagger: Duration,
) -> (
    mpsc::Receiver<(SatResult, BitBlastSolver)>,
    Arc<std::sync::atomic::AtomicBool>,
) {
    let (tx, rx) = mpsc::channel();
    let cancel = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flag = Arc::clone(&cancel);
    std::thread::spawn(move || {
        let start = Instant::now();
        while start.elapsed() < stagger {
            if flag.load(std::sync::atomic::Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(1).min(stagger - start.elapsed()));
        }
        let mut s = BitBlastSolver::new();
        s.set_budget(budget);
        s.set_cancel(flag);
        for frame in &frames {
            s.push();
            for t in frame {
                s.assert(t);
            }
        }
        let r = if assumptions.is_empty() {
            s.check()
        } else {
            s.check_assumptions(&assumptions)
        };
        let _ = tx.send((r, s));
    });
    (rx, cancel)
}

fn backend_label(kind: BackendKind) -> &'static str {
    match kind {
        BackendKind::Internal => "internal",
        BackendKind::Z3 => "z3",
        BackendKind::Auto => "auto",
    }
}

fn mode_label(mode: SolverMode) -> &'static str {
    match mode {
        SolverMode::Oneshot => "oneshot",
        SolverMode::Incremental => "incremental",
        SolverMode::Portfolio => "portfolio",
    }
}

fn verdict_label(r: SatResult) -> &'static str {
    match r {
        SatResult::Sat => "sat",
        SatResult::Unsat => "unsat",
        SatResult::Unknown => "unknown",
    }
}

impl Solver for GovernedSolver {
    fn assert(&mut self, t: &Term) {
        self.invalidate_fallback();
        self.frames
            .last_mut()
            .expect("frame stack non-empty (base frame is never popped)")
            .push(t.clone());
        self.primary.assert(t);
    }

    fn push(&mut self) {
        self.invalidate_fallback();
        self.frames.push(Vec::new());
        self.primary.push();
    }

    fn pop(&mut self) {
        self.invalidate_fallback();
        // Unified pop-underflow contract (see `Solver::pop`): on underflow
        // neither the mirror nor the primary pops, so they cannot desync.
        debug_assert!(self.frames.len() > 1, "pop on base assertion frame");
        if self.frames.len() > 1 {
            self.frames.pop();
            self.primary.pop();
        }
    }

    fn check(&mut self) -> SatResult {
        self.governed_check(&[])
    }

    fn check_assumptions(&mut self, assumptions: &[Term]) -> SatResult {
        self.governed_check(assumptions)
    }

    fn unsat_core(&mut self) -> Vec<usize> {
        match &mut self.fallback {
            Some(fb) => fb.unsat_core(),
            None => self.primary.unsat_core(),
        }
    }

    fn model(&mut self, vars: &[(Arc<str>, Sort)]) -> Result<Assignment, SolverError> {
        match &mut self.fallback {
            Some(fb) => Solver::model(fb, vars),
            None => self.primary.model(vars),
        }
    }

    fn set_budget(&mut self, budget: ResourceBudget) {
        self.budget = budget;
    }

    fn last_error(&self) -> Option<&SolverError> {
        self.last_error.as_ref()
    }

    fn queries_used(&self) -> u64 {
        self.stats.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::term::Value;

    fn governed() -> GovernedSolver {
        default_solver()
    }

    #[test]
    fn decides_like_the_backend() {
        let x = Term::var("x", Sort::Bv(8));
        let f = x.bvmul(&Term::bv(8, 3)).eq_term(&Term::bv(8, 30));
        let mut s = governed();
        let out = s.solve(&f);
        assert_eq!(out.result, SatResult::Sat);
        let m = out.model.unwrap();
        assert_eq!(eval(&f, &m).unwrap(), Value::Bool(true));

        let g = x.bvmul(&Term::bv(8, 2)).eq_term(&Term::bv(8, 1));
        assert_eq!(s.solve(&g).result, SatResult::Unsat);
    }

    #[test]
    fn query_cap_fires_and_is_reported() {
        let x = Term::var("x", Sort::Bool);
        let mut s = governed();
        s.set_budget(ResourceBudget {
            max_queries: Some(2),
            ..ResourceBudget::default()
        });
        s.assert(&x);
        assert_eq!(s.check(), SatResult::Sat);
        assert_eq!(s.check(), SatResult::Sat);
        assert_eq!(s.check(), SatResult::Unknown);
        assert_eq!(
            s.last_error(),
            Some(&SolverError::Budget(BudgetKind::Queries))
        );
        assert_eq!(s.stats().budget_exhausted, 1);
    }

    #[test]
    fn oversized_formula_is_refused_not_run() {
        // A formula over the size cap must come back Unknown quickly, not
        // get blasted for minutes.
        let x = Term::var("x", Sort::Bv(64));
        let mut f = x.clone();
        for i in 0..64 {
            f = f.bvmul(&x.bvadd(&Term::bv(64, i)));
        }
        let big = f.eq_term(&Term::bv(64, 1));
        let mut s = governed();
        s.set_budget(ResourceBudget {
            max_formula_size: Some(16),
            ..ResourceBudget::default()
        });
        let start = Instant::now();
        assert_eq!(s.solve(&big).result, SatResult::Unknown);
        assert!(start.elapsed() < Duration::from_secs(1));
        assert_eq!(
            s.last_error(),
            Some(&SolverError::Budget(BudgetKind::FormulaSize))
        );
    }

    #[test]
    fn deadline_terminates_hard_query() {
        // 64-bit factoring-flavored constraint: far beyond what the CDCL
        // solver decides in 50ms, so the deadline must fire.
        let x = Term::var("x", Sort::Bv(64));
        let y = Term::var("y", Sort::Bv(64));
        let f = x
            .bvmul(&y)
            .eq_term(&Term::bv(64, 0xdead_beef_cafe_f00d))
            .and(&x.bvugt(&Term::bv(64, 1)))
            .and(&y.bvugt(&Term::bv(64, 1)));
        let mut s = governed();
        s.set_budget(ResourceBudget {
            timeout: Some(Duration::from_millis(50)),
            max_retries: 0,
            ..ResourceBudget::default()
        });
        let start = Instant::now();
        let r = s.solve(&f).result;
        // Must terminate promptly; CDCL may occasionally get lucky, so only
        // the time bound is strict.
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "deadline did not bound the query"
        );
        if r == SatResult::Unknown {
            assert!(matches!(
                s.last_error(),
                Some(SolverError::Budget(_))
            ));
        }
    }

    /// Pigeonhole 5-into-4: unsatisfiable, but the refutation needs
    /// search, so a conflict cap of 0 forces every attempt to `Unknown`
    /// fast — the standard rig for exercising the retry machinery.
    fn pigeonhole_5_into_4() -> Term {
        let p = |i: usize, j: usize| Term::var(format!("p{i}_{j}"), Sort::Bool);
        let mut clauses = Vec::new();
        for i in 0..5 {
            clauses.push(Term::or_all((0..4).map(|j| p(i, j))));
        }
        for j in 0..4 {
            for i in 0..5 {
                for k in (i + 1)..5 {
                    clauses.push(p(i, j).and(&p(k, j)).not());
                }
            }
        }
        Term::and_all(clauses)
    }

    #[test]
    fn retry_backoff_never_sleeps_past_the_deadline() {
        // Allow a huge retry count: the retry backoff must stay inside the
        // per-query deadline instead of sleeping unconditionally between
        // attempts.
        let f = pigeonhole_5_into_4();
        let timeout = Duration::from_millis(150);
        let mut s = governed();
        s.set_budget(ResourceBudget {
            timeout: Some(timeout),
            max_conflicts: Some(0),
            max_retries: 1_000_000,
            ..ResourceBudget::default()
        });
        let start = Instant::now();
        let r = s.solve(&f).result;
        let elapsed = start.elapsed();
        assert_eq!(r, SatResult::Unknown);
        assert!(
            elapsed < timeout + Duration::from_millis(150),
            "retry backoff overshot the deadline: {elapsed:?}"
        );
        assert!(s.stats().retries > 0, "retries must actually have run");
    }

    #[test]
    fn retry_skipped_when_deadline_cannot_fit_the_backoff() {
        // With a 1ms deadline the remaining time after the first attempt is
        // always below the 2ms minimum backoff: the solver must return
        // Unknown immediately and count a skipped retry, not sleep.
        let f = pigeonhole_5_into_4();
        let mut s = governed();
        s.set_budget(ResourceBudget {
            timeout: Some(Duration::from_millis(1)),
            max_conflicts: Some(0),
            max_retries: 10,
            ..ResourceBudget::default()
        });
        assert_eq!(s.solve(&f).result, SatResult::Unknown);
        assert_eq!(s.stats().retries, 0, "no retry fits a 1ms deadline");
        assert_eq!(s.stats().retries_skipped, 1);
    }

    // Injected-fault behavior is tested in `tests/fault_inject.rs`, which
    // runs in its own process: arming the global fault plan here would
    // race the other unit tests' solver queries.

    #[test]
    fn push_pop_mirrored_across_rebuilds() {
        let x = Term::var("x", Sort::Bool);
        let mut s = governed();
        s.assert(&x);
        s.push();
        s.assert(&x.not());
        assert_eq!(s.check(), SatResult::Unsat);
        s.pop();
        assert_eq!(s.check(), SatResult::Sat);
    }

    #[test]
    fn unsat_core_still_works_under_governance() {
        let x = Term::var("x", Sort::Bool);
        let y = Term::var("y", Sort::Bool);
        let mut s = governed();
        let assumptions = vec![x.clone(), y.clone(), x.not()];
        assert_eq!(s.check_assumptions(&assumptions), SatResult::Unsat);
        let core = s.unsat_core();
        assert!(core.contains(&0));
        assert!(core.contains(&2));
    }

    #[test]
    fn incremental_mode_matches_oneshot_verdicts() {
        let x = Term::var("x", Sort::Bv(8));
        let prefix = x.bvugt(&Term::bv(8, 10));
        let conds = [
            x.bvult(&Term::bv(8, 5)),
            x.bvult(&Term::bv(8, 12)),
            x.eq_term(&Term::bv(8, 11)),
        ];
        let mut inc = GovernedSolver::with_mode(BackendKind::Internal, SolverMode::Incremental);
        let mut one = GovernedSolver::with_mode(BackendKind::Internal, SolverMode::Oneshot);
        for s in [&mut inc, &mut one] {
            s.assert(&prefix);
        }
        for c in &conds {
            for s in [&mut inc, &mut one] {
                s.push();
                s.assert(c);
            }
            assert_eq!(inc.check(), one.check(), "diverged on {c:?}");
            for s in [&mut inc, &mut one] {
                s.pop();
            }
        }
    }

    #[test]
    fn portfolio_races_every_query_and_stays_correct() {
        // race_min_size 0 spawns a challenger on every check; verdicts and
        // push/pop behavior must be unchanged by the race.
        let x = Term::var("x", Sort::Bv(8));
        let mut s = new_solver(&SolverConfig {
            backend: BackendKind::Internal,
            mode: SolverMode::Portfolio,
            race_min_size: 0,
            budget: ResourceBudget::bounded_default(),
        });
        s.assert(&x.bvugt(&Term::bv(8, 10)));
        assert_eq!(s.check(), SatResult::Sat);
        s.push();
        s.assert(&x.bvult(&Term::bv(8, 5)));
        assert_eq!(s.check(), SatResult::Unsat);
        s.pop();
        assert_eq!(s.mode(), SolverMode::Portfolio);
    }

    /// A stub primary that can never decide anything — the rig for forcing
    /// the portfolio challenger to answer.
    struct AlwaysUnknown;

    impl Solver for AlwaysUnknown {
        fn assert(&mut self, _: &Term) {}
        fn push(&mut self) {}
        fn pop(&mut self) {}
        fn check(&mut self) -> SatResult {
            SatResult::Unknown
        }
        fn check_assumptions(&mut self, _: &[Term]) -> SatResult {
            SatResult::Unknown
        }
        fn unsat_core(&mut self) -> Vec<usize> {
            Vec::new()
        }
        fn model(&mut self, _: &[(Arc<str>, Sort)]) -> Result<Assignment, SolverError> {
            Err(SolverError::NoModel)
        }
    }

    #[test]
    fn portfolio_adopts_challenger_verdict_when_primary_is_stuck() {
        let x = Term::var("x", Sort::Bv(8));
        let mut s = new_solver(&SolverConfig {
            backend: BackendKind::Internal,
            mode: SolverMode::Portfolio,
            race_min_size: 0,
            budget: ResourceBudget {
                max_retries: 0,
                ..ResourceBudget::bounded_default()
            },
        });
        s.assert(&x.bvmul(&Term::bv(8, 3)).eq_term(&Term::bv(8, 30)));
        // Swap in a primary that always returns Unknown: with retries off
        // and an Internal backend (no governed fallback stage), a definite
        // verdict can only come from the raced challenger.
        s.primary = Box::new(AlwaysUnknown);
        assert_eq!(s.check(), SatResult::Sat);
        // model() must read the challenger, which answered the query.
        let m = s
            .model(&[(Arc::from("x"), Sort::Bv(8))])
            .expect("challenger model");
        assert_eq!(m.get("x" as &str), Some(&crate::term::Value::bv(8, 10)));
    }

    #[test]
    fn pop_underflow_is_a_noop_in_release_and_never_desyncs() {
        // The governed mirror and its primary must agree after an
        // unbalanced pop (debug builds assert instead — this test runs
        // the release-contract path explicitly via catch_unwind in debug).
        let x = Term::var("x", Sort::Bool);
        let underflow = |s: &mut GovernedSolver| {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.pop()));
            if cfg!(debug_assertions) {
                assert!(r.is_err(), "debug builds must assert on underflow");
            } else {
                assert!(r.is_ok());
            }
        };
        for mode in [SolverMode::Oneshot, SolverMode::Incremental] {
            let mut s = GovernedSolver::with_mode(BackendKind::Internal, mode);
            s.assert(&x);
            underflow(&mut s);
            // Base-frame assertions must survive the underflow attempt.
            assert_eq!(s.check(), SatResult::Sat);
            s.push();
            s.assert(&x.not());
            assert_eq!(s.check(), SatResult::Unsat);
            s.pop();
            assert_eq!(s.check(), SatResult::Sat);
        }
    }

    #[cfg(feature = "z3")]
    #[test]
    fn z3_stub_unknown_falls_back_to_internal() {
        // With the vendored z3 stub every check is Unknown, so governance
        // must route small formulas to the internal solver and still
        // produce real answers.
        let x = Term::var("x", Sort::Bv(8));
        let f = x.bvadd(&Term::bv(8, 1)).eq_term(&Term::bv(8, 0));
        let mut s = GovernedSolver::with_backend(BackendKind::Z3);
        let out = s.solve(&f);
        assert_eq!(out.result, SatResult::Sat);
        assert!(s.stats().fallbacks > 0);
    }
}
