//! Memoized traversals over term DAGs: free variables, substitution and
//! size metrics. All traversals key their memo tables on [`Term::id`] so
//! shared sub-DAGs are visited once.

use crate::term::{Sort, Term, TermNode};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Collect the free variables of `t` as a `name -> sort` map.
///
/// The result is a `BTreeMap` so iteration order is deterministic, which
/// keeps inferred annotations and counterexample dumps stable across runs.
pub fn free_vars(t: &Term) -> BTreeMap<Arc<str>, Sort> {
    let mut out = BTreeMap::new();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut stack = vec![t.clone()];
    while let Some(cur) = stack.pop() {
        if !seen.insert(cur.id()) {
            continue;
        }
        match cur.node() {
            TermNode::Const(_) => {}
            TermNode::Var(name, sort) => {
                out.insert(name.clone(), *sort);
            }
            TermNode::Not(a) | TermNode::BvNot(a) | TermNode::BvNeg(a) => stack.push(a.clone()),
            TermNode::And(xs) | TermNode::Or(xs) => stack.extend(xs.iter().cloned()),
            TermNode::Implies(a, b)
            | TermNode::Eq(a, b)
            | TermNode::Bv(_, a, b)
            | TermNode::Cmp(_, a, b)
            | TermNode::Concat(a, b) => {
                stack.push(a.clone());
                stack.push(b.clone());
            }
            TermNode::Ite(c, a, b) => {
                stack.push(c.clone());
                stack.push(a.clone());
                stack.push(b.clone());
            }
            TermNode::Extract { arg, .. }
            | TermNode::ZeroExt { arg, .. }
            | TermNode::SignExt { arg, .. } => stack.push(arg.clone()),
        }
    }
    out
}

/// Number of distinct DAG nodes in `t`.
pub fn term_size(t: &Term) -> usize {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut stack = vec![t.clone()];
    while let Some(cur) = stack.pop() {
        if !seen.insert(cur.id()) {
            continue;
        }
        for c in children(&cur) {
            stack.push(c);
        }
    }
    seen.len()
}

/// Children of a node, in order.
pub fn children(t: &Term) -> Vec<Term> {
    match t.node() {
        TermNode::Const(_) | TermNode::Var(..) => vec![],
        TermNode::Not(a) | TermNode::BvNot(a) | TermNode::BvNeg(a) => vec![a.clone()],
        TermNode::And(xs) | TermNode::Or(xs) => xs.clone(),
        TermNode::Implies(a, b)
        | TermNode::Eq(a, b)
        | TermNode::Bv(_, a, b)
        | TermNode::Cmp(_, a, b)
        | TermNode::Concat(a, b) => vec![a.clone(), b.clone()],
        TermNode::Ite(c, a, b) => vec![c.clone(), a.clone(), b.clone()],
        TermNode::Extract { arg, .. }
        | TermNode::ZeroExt { arg, .. }
        | TermNode::SignExt { arg, .. } => vec![arg.clone()],
    }
}

/// Substitute variables by name: every `Var(n, _)` with `n` in `map` is
/// replaced by `map[n]` (which must have the same sort). Rebuilding goes
/// through the smart constructors, so substitution re-triggers folding —
/// substituting constants typically collapses large sub-DAGs.
pub fn substitute(t: &Term, map: &HashMap<Arc<str>, Term>) -> Term {
    let mut memo: HashMap<u64, Term> = HashMap::new();
    subst_rec(t, map, &mut memo)
}

fn subst_rec(t: &Term, map: &HashMap<Arc<str>, Term>, memo: &mut HashMap<u64, Term>) -> Term {
    if let Some(r) = memo.get(&t.id()) {
        return r.clone();
    }
    let result = match t.node() {
        TermNode::Const(_) => t.clone(),
        TermNode::Var(name, sort) => match map.get(name) {
            Some(r) => {
                assert_eq!(r.sort(), *sort, "substitute: sort mismatch for {name}");
                r.clone()
            }
            None => t.clone(),
        },
        TermNode::Not(a) => subst_rec(a, map, memo).not(),
        TermNode::And(xs) => {
            Term::and_all(xs.iter().map(|x| subst_rec(x, map, memo)).collect::<Vec<_>>())
        }
        TermNode::Or(xs) => {
            Term::or_all(xs.iter().map(|x| subst_rec(x, map, memo)).collect::<Vec<_>>())
        }
        TermNode::Implies(a, b) => subst_rec(a, map, memo).implies(&subst_rec(b, map, memo)),
        TermNode::Ite(c, a, b) => {
            subst_rec(c, map, memo).ite(&subst_rec(a, map, memo), &subst_rec(b, map, memo))
        }
        TermNode::Eq(a, b) => subst_rec(a, map, memo).eq_term(&subst_rec(b, map, memo)),
        TermNode::Bv(op, a, b) => {
            let a = subst_rec(a, map, memo);
            let b = subst_rec(b, map, memo);
            use crate::term::BvOp::*;
            match op {
                Add => a.bvadd(&b),
                Sub => a.bvsub(&b),
                Mul => a.bvmul(&b),
                UDiv => a.bvudiv(&b),
                URem => a.bvurem(&b),
                And => a.bvand(&b),
                Or => a.bvor(&b),
                Xor => a.bvxor(&b),
                Shl => a.bvshl(&b),
                LShr => a.bvlshr(&b),
                AShr => a.bvashr(&b),
            }
        }
        TermNode::Cmp(op, a, b) => {
            let a = subst_rec(a, map, memo);
            let b = subst_rec(b, map, memo);
            use crate::term::CmpOp::*;
            match op {
                Ult => a.bvult(&b),
                Ule => a.bvule(&b),
                Ugt => a.bvugt(&b),
                Uge => a.bvuge(&b),
                Slt => a.bvslt(&b),
                Sle => a.bvsle(&b),
                Sgt => a.bvsgt(&b),
                Sge => a.bvsge(&b),
            }
        }
        TermNode::BvNot(a) => subst_rec(a, map, memo).bvnot(),
        TermNode::BvNeg(a) => subst_rec(a, map, memo).bvneg(),
        TermNode::Concat(a, b) => subst_rec(a, map, memo).concat(&subst_rec(b, map, memo)),
        TermNode::Extract { hi, lo, arg } => subst_rec(arg, map, memo).extract(*hi, *lo),
        TermNode::ZeroExt { add, arg } => subst_rec(arg, map, memo).zero_ext(*add),
        TermNode::SignExt { add, arg } => subst_rec(arg, map, memo).sign_ext(*add),
    };
    memo.insert(t.id(), result.clone());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    #[test]
    fn free_vars_shared_dag_counted_once() {
        let x = Term::var("x", Sort::Bv(8));
        let sum = x.bvadd(&x);
        let t = sum.eq_term(&Term::bv(8, 4)).and(&sum.bvult(&Term::bv(8, 9)));
        let fv = free_vars(&t);
        assert_eq!(fv.len(), 1);
        assert_eq!(fv.get("x" as &str), Some(&Sort::Bv(8)));
    }

    #[test]
    fn term_size_counts_distinct_nodes() {
        let x = Term::var("x", Sort::Bv(8));
        let sum = x.bvadd(&x); // x counted once
        assert_eq!(term_size(&sum), 2);
    }

    #[test]
    fn substitute_folds_constants() {
        let x = Term::var("x", Sort::Bv(8));
        let y = Term::var("y", Sort::Bv(8));
        let t = x.bvadd(&y).eq_term(&Term::bv(8, 10));
        let mut m = HashMap::new();
        m.insert(Arc::from("x"), Term::bv(8, 4));
        m.insert(Arc::from("y"), Term::bv(8, 6));
        assert!(substitute(&t, &m).is_true());
    }

    #[test]
    fn substitute_leaves_unmapped_vars() {
        let x = Term::var("x", Sort::Bool);
        let y = Term::var("y", Sort::Bool);
        let t = x.and(&y);
        let mut m = HashMap::new();
        m.insert(Arc::from("x"), Term::tt());
        let r = substitute(&t, &m);
        assert!(r.alpha_eq(&y));
    }

    #[test]
    #[should_panic(expected = "sort mismatch")]
    fn substitute_checks_sorts() {
        let x = Term::var("x", Sort::Bv(8));
        let mut m = HashMap::new();
        m.insert(Arc::from("x"), Term::tt());
        substitute(&x.eq_term(&Term::bv(8, 0)), &m);
    }
}
