//! S-expression serialization for [`Term`]s.
//!
//! The controller shim loads the annotations bf4 emits at compile time;
//! predicates travel as S-expressions in an SMT-LIB-flavoured dialect:
//!
//! ```text
//! (and (var pcn.nat#0.hit bool) (not (= (var pcn.nat#0.key1.mask bv32) (bv 32 0))))
//! ```
//!
//! Variables carry their sort inline so the reader needs no symbol table.
//! `to_sexpr ∘ parse_sexpr` is the identity on the printed form and
//! `parse_sexpr ∘ to_sexpr` is structurally the identity on terms (checked
//! by tests and the crate's property suite).

use crate::term::{BvOp, CmpOp, Sort, Term, TermNode};

/// Render a term as an S-expression.
pub fn to_sexpr(t: &Term) -> String {
    let mut out = String::new();
    write_sexpr(t, &mut out);
    out
}

fn sort_name(s: Sort) -> String {
    match s {
        Sort::Bool => "bool".into(),
        Sort::Bv(w) => format!("bv{w}"),
    }
}

fn write_sexpr(t: &Term, out: &mut String) {
    use TermNode::*;
    match t.node() {
        Const(crate::term::Value::Bool(b)) => out.push_str(if *b { "true" } else { "false" }),
        Const(crate::term::Value::Bv { width, bits }) => {
            out.push_str(&format!("(bv {width} {bits})"))
        }
        Var(n, s) => out.push_str(&format!("(var {} {})", n, sort_name(*s))),
        Not(a) => nary("not", std::slice::from_ref(a), out),
        And(xs) => nary("and", xs, out),
        Or(xs) => nary("or", xs, out),
        Implies(a, b) => nary("=>", &[a.clone(), b.clone()], out),
        Ite(c, a, b) => nary("ite", &[c.clone(), a.clone(), b.clone()], out),
        Eq(a, b) => nary("=", &[a.clone(), b.clone()], out),
        Bv(op, a, b) => nary(bv_op_name(*op), &[a.clone(), b.clone()], out),
        Cmp(op, a, b) => nary(cmp_op_name(*op), &[a.clone(), b.clone()], out),
        BvNot(a) => nary("bvnot", std::slice::from_ref(a), out),
        BvNeg(a) => nary("bvneg", std::slice::from_ref(a), out),
        Concat(a, b) => nary("concat", &[a.clone(), b.clone()], out),
        Extract { hi, lo, arg } => {
            out.push_str(&format!("(extract {hi} {lo} "));
            write_sexpr(arg, out);
            out.push(')');
        }
        ZeroExt { add, arg } => {
            out.push_str(&format!("(zext {add} "));
            write_sexpr(arg, out);
            out.push(')');
        }
        SignExt { add, arg } => {
            out.push_str(&format!("(sext {add} "));
            write_sexpr(arg, out);
            out.push(')');
        }
    }
}

fn nary(op: &str, args: &[Term], out: &mut String) {
    out.push('(');
    out.push_str(op);
    for a in args {
        out.push(' ');
        write_sexpr(a, out);
    }
    out.push(')');
}

fn bv_op_name(op: BvOp) -> &'static str {
    match op {
        BvOp::Add => "bvadd",
        BvOp::Sub => "bvsub",
        BvOp::Mul => "bvmul",
        BvOp::UDiv => "bvudiv",
        BvOp::URem => "bvurem",
        BvOp::And => "bvand",
        BvOp::Or => "bvor",
        BvOp::Xor => "bvxor",
        BvOp::Shl => "bvshl",
        BvOp::LShr => "bvlshr",
        BvOp::AShr => "bvashr",
    }
}

fn cmp_op_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Ult => "bvult",
        CmpOp::Ule => "bvule",
        CmpOp::Ugt => "bvugt",
        CmpOp::Uge => "bvuge",
        CmpOp::Slt => "bvslt",
        CmpOp::Sle => "bvsle",
        CmpOp::Sgt => "bvsgt",
        CmpOp::Sge => "bvsge",
    }
}

/// Parse an S-expression back into a term.
pub fn parse_sexpr(src: &str) -> Result<Term, String> {
    let tokens = tokenize(src)?;
    let mut pos = 0;
    let t = parse(&tokens, &mut pos)?;
    if pos != tokens.len() {
        return Err(format!("trailing tokens at {pos}"));
    }
    Ok(t)
}

#[derive(Debug, PartialEq)]
enum Tok {
    L,
    R,
    Atom(String),
}

fn tokenize(src: &str) -> Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in src.chars() {
        match c {
            '(' | ')' => {
                if !cur.is_empty() {
                    out.push(Tok::Atom(std::mem::take(&mut cur)));
                }
                out.push(if c == '(' { Tok::L } else { Tok::R });
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    out.push(Tok::Atom(std::mem::take(&mut cur)));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(Tok::Atom(cur));
    }
    Ok(out)
}

fn parse(tokens: &[Tok], pos: &mut usize) -> Result<Term, String> {
    match tokens.get(*pos) {
        Some(Tok::Atom(a)) => {
            *pos += 1;
            match a.as_str() {
                "true" => Ok(Term::tt()),
                "false" => Ok(Term::ff()),
                other => Err(format!("unexpected atom `{other}`")),
            }
        }
        Some(Tok::L) => {
            *pos += 1;
            let Some(Tok::Atom(head)) = tokens.get(*pos) else {
                return Err("expected operator".into());
            };
            let head = head.clone();
            *pos += 1;
            let t = parse_form(&head, tokens, pos)?;
            match tokens.get(*pos) {
                Some(Tok::R) => {
                    *pos += 1;
                    Ok(t)
                }
                _ => Err(format!("expected `)` after {head}")),
            }
        }
        other => Err(format!("unexpected token {other:?}")),
    }
}

fn parse_sort(s: &str) -> Result<Sort, String> {
    if s == "bool" {
        return Ok(Sort::Bool);
    }
    if let Some(w) = s.strip_prefix("bv") {
        let w: u32 = w.parse().map_err(|_| format!("bad sort {s}"))?;
        return Ok(Sort::Bv(w));
    }
    Err(format!("bad sort {s}"))
}

fn atom(tokens: &[Tok], pos: &mut usize) -> Result<String, String> {
    match tokens.get(*pos) {
        Some(Tok::Atom(a)) => {
            *pos += 1;
            Ok(a.clone())
        }
        other => Err(format!("expected atom, got {other:?}")),
    }
}

fn parse_args(tokens: &[Tok], pos: &mut usize) -> Result<Vec<Term>, String> {
    let mut out = Vec::new();
    while !matches!(tokens.get(*pos), Some(Tok::R) | None) {
        out.push(parse(tokens, pos)?);
    }
    Ok(out)
}

fn parse_form(head: &str, tokens: &[Tok], pos: &mut usize) -> Result<Term, String> {
    match head {
        "bv" => {
            let w: u32 = atom(tokens, pos)?.parse().map_err(|_| "bad width")?;
            let v: u128 = atom(tokens, pos)?.parse().map_err(|_| "bad value")?;
            Ok(Term::bv(w, v))
        }
        "var" => {
            let name = atom(tokens, pos)?;
            let sort = parse_sort(&atom(tokens, pos)?)?;
            Ok(Term::var(name, sort))
        }
        "extract" | "zext" | "sext" => {
            let a: u32 = atom(tokens, pos)?.parse().map_err(|_| "bad index")?;
            match head {
                "extract" => {
                    let lo: u32 = atom(tokens, pos)?.parse().map_err(|_| "bad index")?;
                    let arg = parse(tokens, pos)?;
                    Ok(arg.extract(a, lo))
                }
                "zext" => Ok(parse(tokens, pos)?.zero_ext(a)),
                _ => Ok(parse(tokens, pos)?.sign_ext(a)),
            }
        }
        _ => {
            let args = parse_args(tokens, pos)?;
            let need = |n: usize| -> Result<(), String> {
                if args.len() == n {
                    Ok(())
                } else {
                    Err(format!("{head}: expected {n} args, got {}", args.len()))
                }
            };
            match head {
                "not" => {
                    need(1)?;
                    Ok(args[0].not())
                }
                "and" => Ok(Term::and_all(args)),
                "or" => Ok(Term::or_all(args)),
                "=>" => {
                    need(2)?;
                    Ok(args[0].implies(&args[1]))
                }
                "ite" => {
                    need(3)?;
                    Ok(args[0].ite(&args[1], &args[2]))
                }
                "=" => {
                    need(2)?;
                    Ok(args[0].eq_term(&args[1]))
                }
                "concat" => {
                    need(2)?;
                    Ok(args[0].concat(&args[1]))
                }
                "bvnot" => {
                    need(1)?;
                    Ok(args[0].bvnot())
                }
                "bvneg" => {
                    need(1)?;
                    Ok(args[0].bvneg())
                }
                "bvadd" | "bvsub" | "bvmul" | "bvudiv" | "bvurem" | "bvand" | "bvor"
                | "bvxor" | "bvshl" | "bvlshr" | "bvashr" => {
                    need(2)?;
                    let (a, b) = (&args[0], &args[1]);
                    Ok(match head {
                        "bvadd" => a.bvadd(b),
                        "bvsub" => a.bvsub(b),
                        "bvmul" => a.bvmul(b),
                        "bvudiv" => a.bvudiv(b),
                        "bvurem" => a.bvurem(b),
                        "bvand" => a.bvand(b),
                        "bvor" => a.bvor(b),
                        "bvxor" => a.bvxor(b),
                        "bvshl" => a.bvshl(b),
                        "bvlshr" => a.bvlshr(b),
                        _ => a.bvashr(b),
                    })
                }
                "bvult" | "bvule" | "bvugt" | "bvuge" | "bvslt" | "bvsle" | "bvsgt"
                | "bvsge" => {
                    need(2)?;
                    let (a, b) = (&args[0], &args[1]);
                    Ok(match head {
                        "bvult" => a.bvult(b),
                        "bvule" => a.bvule(b),
                        "bvugt" => a.bvugt(b),
                        "bvuge" => a.bvuge(b),
                        "bvslt" => a.bvslt(b),
                        "bvsle" => a.bvsle(b),
                        "bvsgt" => a.bvsgt(b),
                        _ => a.bvsge(b),
                    })
                }
                other => Err(format!("unknown operator `{other}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(t: &Term) {
        let s = to_sexpr(t);
        let back = parse_sexpr(&s).unwrap_or_else(|e| panic!("parse `{s}`: {e}"));
        assert!(t.alpha_eq(&back), "{t} != {back} (via {s})");
    }

    #[test]
    fn roundtrip_basics() {
        let x = Term::var("pcn.nat#0.hit", Sort::Bool);
        let m = Term::var("pcn.nat#0.key1.mask", Sort::Bv(32));
        roundtrip(&x);
        roundtrip(&m.eq_term(&Term::bv(32, 0)).not().and(&x));
        roundtrip(&Term::bv(9, 511));
        roundtrip(&Term::tt());
    }

    #[test]
    fn roundtrip_bv_ops() {
        let a = Term::var("a", Sort::Bv(16));
        let b = Term::var("b", Sort::Bv(16));
        roundtrip(&a.bvadd(&b).bvmul(&a).bvxor(&b));
        roundtrip(&a.bvslt(&b).ite(&a.bvnot(), &b.bvneg()));
        roundtrip(&a.extract(7, 0).zero_ext(4).concat(&b.extract(3, 0)));
    }

    #[test]
    fn roundtrip_folding_stability() {
        // Constructors fold at parse time; the parsed term is equivalent
        // even when folding collapses it.
        let t = Term::bv(8, 3).bvadd(&Term::bv(8, 4));
        let s = "(bvadd (bv 8 3) (bv 8 4))";
        let parsed = parse_sexpr(s).unwrap();
        assert!(t.alpha_eq(&parsed));
        assert_eq!(parsed.as_bv_const(), Some(7));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_sexpr("(bogus 1 2)").is_err());
        assert!(parse_sexpr("(and true").is_err());
        assert!(parse_sexpr("xyz").is_err());
        assert!(parse_sexpr("(= (bv 8 1))").is_err());
    }
}
