//! Concrete evaluation of terms under a variable assignment.
//!
//! Used by the dataplane interpreter (`bf4-sim`), the runtime shim's
//! condition checker (`bf4-shim`), counterexample replay, and the
//! differential test harness that cross-checks the Z3 backend against the
//! internal solver.

use crate::term::{fold_bv, fold_cmp, Sort, Term, TermNode, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A concrete variable assignment.
pub type Assignment = HashMap<Arc<str>, Value>;

/// Errors raised during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A free variable had no binding in the assignment.
    Unbound(Arc<str>),
    /// A bound value had the wrong sort.
    SortMismatch {
        /// The variable concerned.
        var: Arc<str>,
        /// Sort the term expects.
        expected: Sort,
        /// Sort the assignment supplied.
        got: Sort,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Unbound(v) => write!(f, "unbound variable {v}"),
            EvalError::SortMismatch { var, expected, got } => {
                write!(f, "variable {var}: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluate `t` under `env`. Shared sub-DAGs are evaluated once.
pub fn eval(t: &Term, env: &Assignment) -> Result<Value, EvalError> {
    let mut memo: HashMap<u64, Value> = HashMap::new();
    eval_rec(t, env, &mut memo)
}

fn eval_rec(
    t: &Term,
    env: &Assignment,
    memo: &mut HashMap<u64, Value>,
) -> Result<Value, EvalError> {
    if let Some(v) = memo.get(&t.id()) {
        return Ok(*v);
    }
    let v = match t.node() {
        TermNode::Const(v) => *v,
        TermNode::Var(name, sort) => {
            let v = env
                .get(name)
                .copied()
                .ok_or_else(|| EvalError::Unbound(name.clone()))?;
            if v.sort() != *sort {
                return Err(EvalError::SortMismatch {
                    var: name.clone(),
                    expected: *sort,
                    got: v.sort(),
                });
            }
            v
        }
        TermNode::Not(a) => Value::Bool(!eval_rec(a, env, memo)?.as_bool()),
        TermNode::And(xs) => {
            let mut acc = true;
            for x in xs {
                // Evaluate all operands (no short-circuit) so sort errors
                // surface deterministically regardless of operand order.
                acc &= eval_rec(x, env, memo)?.as_bool();
            }
            Value::Bool(acc)
        }
        TermNode::Or(xs) => {
            let mut acc = false;
            for x in xs {
                acc |= eval_rec(x, env, memo)?.as_bool();
            }
            Value::Bool(acc)
        }
        TermNode::Implies(a, b) => {
            let a = eval_rec(a, env, memo)?.as_bool();
            let b = eval_rec(b, env, memo)?.as_bool();
            Value::Bool(!a || b)
        }
        TermNode::Ite(c, a, b) => {
            if eval_rec(c, env, memo)?.as_bool() {
                eval_rec(a, env, memo)?
            } else {
                eval_rec(b, env, memo)?
            }
        }
        TermNode::Eq(a, b) => Value::Bool(eval_rec(a, env, memo)? == eval_rec(b, env, memo)?),
        TermNode::Bv(op, a, b) => {
            let w = t.width();
            let a = eval_rec(a, env, memo)?.as_bits();
            let b = eval_rec(b, env, memo)?.as_bits();
            Value::bv(w, fold_bv(*op, w, a, b))
        }
        TermNode::Cmp(op, a, b) => {
            let w = a.width();
            let a = eval_rec(a, env, memo)?.as_bits();
            let b = eval_rec(b, env, memo)?.as_bits();
            Value::Bool(fold_cmp(*op, w, a, b))
        }
        TermNode::BvNot(a) => {
            let w = t.width();
            Value::bv(w, !eval_rec(a, env, memo)?.as_bits())
        }
        TermNode::BvNeg(a) => {
            let w = t.width();
            Value::bv(w, eval_rec(a, env, memo)?.as_bits().wrapping_neg())
        }
        TermNode::Concat(a, b) => {
            let bw = b.width();
            let av = eval_rec(a, env, memo)?.as_bits();
            let bv = eval_rec(b, env, memo)?.as_bits();
            Value::bv(t.width(), (av << bw) | bv)
        }
        TermNode::Extract { hi: _, lo, arg } => {
            let v = eval_rec(arg, env, memo)?.as_bits();
            Value::bv(t.width(), v >> lo)
        }
        TermNode::ZeroExt { arg, .. } => {
            Value::bv(t.width(), eval_rec(arg, env, memo)?.as_bits())
        }
        TermNode::SignExt { arg, .. } => {
            let ow = arg.width();
            let v = eval_rec(arg, env, memo)?.as_bits();
            let sign = (v >> (ow - 1)) & 1;
            let bits = if sign == 1 {
                v | (crate::term::mask(t.width(), u128::MAX)
                    & !crate::term::mask(ow, u128::MAX))
            } else {
                v
            };
            Value::bv(t.width(), bits)
        }
    };
    memo.insert(t.id(), v);
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    fn env(pairs: &[(&str, Value)]) -> Assignment {
        pairs
            .iter()
            .map(|(n, v)| (Arc::from(*n), *v))
            .collect()
    }

    #[test]
    fn eval_arith() {
        let x = Term::var("x", Sort::Bv(8));
        let t = x.bvadd(&Term::bv(8, 1)).bvmul(&Term::bv(8, 3));
        let v = eval(&t, &env(&[("x", Value::bv(8, 9))])).unwrap();
        assert_eq!(v, Value::bv(8, 30));
    }

    #[test]
    fn eval_bool_structure() {
        let a = Term::var("a", Sort::Bool);
        let b = Term::var("b", Sort::Bool);
        let t = a.implies(&b).and(&a);
        let v = eval(
            &t,
            &env(&[("a", Value::Bool(true)), ("b", Value::Bool(true))]),
        )
        .unwrap();
        assert_eq!(v, Value::Bool(true));
        let v = eval(
            &t,
            &env(&[("a", Value::Bool(true)), ("b", Value::Bool(false))]),
        )
        .unwrap();
        assert_eq!(v, Value::Bool(false));
    }

    #[test]
    fn eval_unbound_error() {
        let x = Term::var("x", Sort::Bool);
        assert_eq!(eval(&x, &env(&[])), Err(EvalError::Unbound(Arc::from("x"))));
    }

    #[test]
    fn eval_sort_mismatch_error() {
        let x = Term::var("x", Sort::Bool);
        let r = eval(&x, &env(&[("x", Value::bv(8, 1))]));
        assert!(matches!(r, Err(EvalError::SortMismatch { .. })));
    }

    #[test]
    fn eval_ite_and_extract() {
        let c = Term::var("c", Sort::Bool);
        let t = c.ite(&Term::bv(16, 0xab00), &Term::bv(16, 0x00cd));
        let hi = t.extract(15, 8);
        let v = eval(&hi, &env(&[("c", Value::Bool(true))])).unwrap();
        assert_eq!(v, Value::bv(8, 0xab));
        let v = eval(&hi, &env(&[("c", Value::Bool(false))])).unwrap();
        assert_eq!(v, Value::bv(8, 0));
    }

    #[test]
    fn eval_sign_ext() {
        let x = Term::var("x", Sort::Bv(4));
        let t = x.sign_ext(4);
        let v = eval(&t, &env(&[("x", Value::bv(4, 0b1001))])).unwrap();
        assert_eq!(v, Value::bv(8, 0xf9));
    }
}
