//! Z3 backend: lowers [`Term`] DAGs to Z3 ASTs and implements [`Solver`].
//!
//! Lowering memoizes on [`Term::id`], so DAG sharing in our term language is
//! preserved in the Z3 AST — without this, weakest-precondition formulas for
//! programs with many join points would blow up exponentially when lowered
//! (the classic problem addressed by Flanagan & Saxe, which the paper cites).
//!
//! Unsat cores: Z3 reports cores as a subset of the assumption literals.
//! Arbitrary boolean terms are therefore wrapped in fresh named tracking
//! literals (`bf4!a!<n>`) implied by the real assumption; the core is mapped
//! back to assumption indices by name.
//!
//! Robustness: sort mismatches during lowering or model extraction are
//! reported as [`SolverError::SortMismatch`] — a poisoned solver answers
//! `Unknown` (with [`Solver::last_error`] set) instead of panicking, so one
//! ill-sorted formula cannot take down a corpus run.

use crate::solver::{SatResult, Solver, SolverError};
use crate::term::{BvOp, CmpOp, Sort, Term, TermNode, Value};
use crate::Assignment;
use std::collections::HashMap;
use std::sync::Arc;
use z3::ast::{Bool, BV};

/// Lowered Z3 AST, typed.
#[derive(Clone)]
enum Z {
    B(Bool),
    V(BV),
}

impl Z {
    fn b(self) -> Result<Bool, SolverError> {
        match self {
            Z::B(b) => Ok(b),
            Z::V(_) => Err(SolverError::SortMismatch(
                "expected Bool, got BV".to_string(),
            )),
        }
    }
    fn v(self) -> Result<BV, SolverError> {
        match self {
            Z::V(v) => Ok(v),
            Z::B(_) => Err(SolverError::SortMismatch(
                "expected BV, got Bool".to_string(),
            )),
        }
    }
}

/// A [`Solver`] implementation backed by Z3.
///
/// Note: the `z3` crate uses a thread-local context, so a `Z3Backend` (and
/// any `Term` lowered through it) must stay on the thread that created it.
pub struct Z3Backend {
    solver: z3::Solver,
    memo: HashMap<u64, Z>,
    consts: HashMap<Arc<str>, Z>,
    /// Tracking literals for the most recent `check_assumptions` call.
    last_trackers: Vec<Bool>,
    fresh: u64,
    /// Set when an assertion failed to lower; checks answer `Unknown`.
    poisoned: Option<SolverError>,
}

impl Default for Z3Backend {
    fn default() -> Self {
        Self::new()
    }
}

impl Z3Backend {
    /// Create a fresh solver.
    pub fn new() -> Z3Backend {
        Z3Backend {
            solver: z3::Solver::new(),
            memo: HashMap::new(),
            consts: HashMap::new(),
            last_trackers: Vec::new(),
            fresh: 0,
            poisoned: None,
        }
    }

    fn lower(&mut self, t: &Term) -> Result<Z, SolverError> {
        if let Some(z) = self.memo.get(&t.id()) {
            return Ok(z.clone());
        }
        let z = match t.node() {
            TermNode::Const(Value::Bool(b)) => Z::B(Bool::from_bool(*b)),
            TermNode::Const(Value::Bv { width, bits }) => Z::V(lower_bv_lit(*width, *bits)),
            TermNode::Var(name, sort) => {
                if let Some(z) = self.consts.get(name) {
                    z.clone()
                } else {
                    let z = match sort {
                        Sort::Bool => Z::B(Bool::new_const(name.to_string())),
                        Sort::Bv(w) => Z::V(BV::new_const(name.to_string(), *w)),
                    };
                    self.consts.insert(name.clone(), z.clone());
                    z
                }
            }
            TermNode::Not(a) => Z::B(self.lower(a)?.b()?.not()),
            TermNode::And(xs) => {
                let parts: Vec<Bool> = xs
                    .iter()
                    .map(|x| self.lower(x)?.b())
                    .collect::<Result<_, _>>()?;
                Z::B(Bool::and(&parts))
            }
            TermNode::Or(xs) => {
                let parts: Vec<Bool> = xs
                    .iter()
                    .map(|x| self.lower(x)?.b())
                    .collect::<Result<_, _>>()?;
                Z::B(Bool::or(&parts))
            }
            TermNode::Implies(a, b) => {
                let a = self.lower(a)?.b()?;
                let b = self.lower(b)?.b()?;
                Z::B(a.implies(&b))
            }
            TermNode::Ite(c, a, b) => {
                let c = self.lower(c)?.b()?;
                match (self.lower(a)?, self.lower(b)?) {
                    (Z::B(a), Z::B(b)) => Z::B(c.ite(&a, &b)),
                    (Z::V(a), Z::V(b)) => Z::V(c.ite(&a, &b)),
                    _ => {
                        return Err(SolverError::SortMismatch(
                            "ite branches have different sorts".to_string(),
                        ))
                    }
                }
            }
            TermNode::Eq(a, b) => match (self.lower(a)?, self.lower(b)?) {
                (Z::B(a), Z::B(b)) => Z::B(a.iff(&b)),
                (Z::V(a), Z::V(b)) => Z::B(a.eq(&b)),
                _ => {
                    return Err(SolverError::SortMismatch(
                        "eq operands have different sorts".to_string(),
                    ))
                }
            },
            TermNode::Bv(op, a, b) => {
                let a = self.lower(a)?.v()?;
                let b = self.lower(b)?.v()?;
                Z::V(match op {
                    BvOp::Add => a.bvadd(&b),
                    BvOp::Sub => a.bvsub(&b),
                    BvOp::Mul => a.bvmul(&b),
                    BvOp::UDiv => a.bvudiv(&b),
                    BvOp::URem => a.bvurem(&b),
                    BvOp::And => a.bvand(&b),
                    BvOp::Or => a.bvor(&b),
                    BvOp::Xor => a.bvxor(&b),
                    BvOp::Shl => a.bvshl(&b),
                    BvOp::LShr => a.bvlshr(&b),
                    BvOp::AShr => a.bvashr(&b),
                })
            }
            TermNode::Cmp(op, a, b) => {
                let a = self.lower(a)?.v()?;
                let b = self.lower(b)?.v()?;
                Z::B(match op {
                    CmpOp::Ult => a.bvult(&b),
                    CmpOp::Ule => a.bvule(&b),
                    CmpOp::Ugt => a.bvugt(&b),
                    CmpOp::Uge => a.bvuge(&b),
                    CmpOp::Slt => a.bvslt(&b),
                    CmpOp::Sle => a.bvsle(&b),
                    CmpOp::Sgt => a.bvsgt(&b),
                    CmpOp::Sge => a.bvsge(&b),
                })
            }
            TermNode::BvNot(a) => Z::V(self.lower(a)?.v()?.bvnot()),
            TermNode::BvNeg(a) => Z::V(self.lower(a)?.v()?.bvneg()),
            TermNode::Concat(a, b) => {
                let a = self.lower(a)?.v()?;
                let b = self.lower(b)?.v()?;
                Z::V(a.concat(&b))
            }
            TermNode::Extract { hi, lo, arg } => Z::V(self.lower(arg)?.v()?.extract(*hi, *lo)),
            TermNode::ZeroExt { add, arg } => Z::V(self.lower(arg)?.v()?.zero_ext(*add)),
            TermNode::SignExt { add, arg } => Z::V(self.lower(arg)?.v()?.sign_ext(*add)),
        };
        self.memo.insert(t.id(), z.clone());
        Ok(z)
    }

    fn bv_value(model: &z3::Model, ast: &BV) -> Option<u128> {
        let w = ast.get_size();
        if w <= 64 {
            let v = model.eval(ast, true)?;
            v.as_u64().map(|x| x as u128)
        } else {
            // Evaluate halves separately; `as_u64` only handles <= 64 bits.
            let hi = model.eval(&ast.extract(w - 1, 64), true)?.as_u64()? as u128;
            let lo = model.eval(&ast.extract(63, 0), true)?.as_u64()? as u128;
            Some((hi << 64) | lo)
        }
    }
}

/// Build a Z3 BV literal of any width up to 128 bits.
fn lower_bv_lit(width: u32, bits: u128) -> BV {
    if width <= 64 {
        BV::from_u64(bits as u64, width)
    } else {
        let hi = BV::from_u64((bits >> 64) as u64, width - 64);
        let lo = BV::from_u64(bits as u64, 64);
        hi.concat(&lo)
    }
}

impl Solver for Z3Backend {
    fn assert(&mut self, t: &Term) {
        match self.lower(t).and_then(Z::b) {
            Ok(b) => self.solver.assert(&b),
            Err(e) => self.poisoned = Some(e),
        }
    }

    fn push(&mut self) {
        self.solver.push();
    }

    fn pop(&mut self) {
        self.solver.pop(1);
    }

    fn check(&mut self) -> SatResult {
        if self.poisoned.is_some() {
            return SatResult::Unknown;
        }
        match self.solver.check() {
            z3::SatResult::Sat => SatResult::Sat,
            z3::SatResult::Unsat => SatResult::Unsat,
            z3::SatResult::Unknown => SatResult::Unknown,
        }
    }

    fn check_assumptions(&mut self, assumptions: &[Term]) -> SatResult {
        if self.poisoned.is_some() {
            return SatResult::Unknown;
        }
        // Each assumption `f` is wrapped in a fresh tracking literal `p`
        // with a permanent assertion `p => f`. A tracker is only ever
        // assumed in this one call, so leftover implications from earlier
        // calls are vacuous and need no scope management.
        self.last_trackers.clear();
        let mut trackers = Vec::with_capacity(assumptions.len());
        for a in assumptions {
            let name = format!("bf4!a!{}", self.fresh);
            self.fresh += 1;
            let p = Bool::new_const(name);
            let lowered = match self.lower(a).and_then(Z::b) {
                Ok(b) => b,
                Err(e) => {
                    self.poisoned = Some(e);
                    return SatResult::Unknown;
                }
            };
            self.solver.assert(p.implies(&lowered));
            trackers.push(p);
        }
        let r = self.solver.check_assumptions(&trackers);
        self.last_trackers = trackers;
        match r {
            z3::SatResult::Sat => SatResult::Sat,
            z3::SatResult::Unsat => SatResult::Unsat,
            z3::SatResult::Unknown => SatResult::Unknown,
        }
    }

    fn unsat_core(&mut self) -> Vec<usize> {
        let core = self.solver.get_unsat_core();
        let names: Vec<String> = core.iter().map(|b| format!("{b}")).collect();
        let mut out = Vec::new();
        for (i, t) in self.last_trackers.iter().enumerate() {
            let tn = format!("{t}");
            if names.iter().any(|n| *n == tn) {
                out.push(i);
            }
        }
        out
    }

    fn model(&mut self, vars: &[(Arc<str>, Sort)]) -> Result<Assignment, SolverError> {
        let model = self.solver.get_model().ok_or(SolverError::NoModel)?;
        let mut out = Assignment::new();
        for (name, sort) in vars {
            let z = self.consts.get(name);
            let v = match (z, sort) {
                (Some(Z::B(b)), Sort::Bool) => {
                    Value::Bool(model.eval(b, true).and_then(|x| x.as_bool()).unwrap_or(false))
                }
                (Some(Z::V(bv)), Sort::Bv(w)) => {
                    Value::bv(*w, Self::bv_value(&model, bv).unwrap_or(0))
                }
                // Variable never reached the solver: default per model
                // completion semantics.
                (None, Sort::Bool) => Value::Bool(false),
                (None, Sort::Bv(w)) => Value::bv(*w, 0),
                (Some(_), _) => {
                    return Err(SolverError::SortMismatch(format!(
                        "model extraction: lowered AST for `{name}` disagrees with requested sort {sort:?}"
                    )))
                }
            };
            out.insert(name.clone(), v);
        }
        Ok(out)
    }

    fn last_error(&self) -> Option<&SolverError> {
        self.poisoned.as_ref()
    }
}

// With the vendored z3 stub every check is `Unknown`, so the behavioral
// tests below only make sense against a real libz3. They are kept, marked
// ignored, for environments that link one.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::term::Sort;

    #[test]
    #[ignore = "requires a real libz3; the vendored stub answers Unknown"]
    fn sat_with_model_roundtrip() {
        let x = Term::var("x", Sort::Bv(8));
        let y = Term::var("y", Sort::Bv(8));
        let f = x.bvadd(&y).eq_term(&Term::bv(8, 10)).and(&x.bvugt(&y));
        let mut s = Z3Backend::new();
        let out = s.solve(&f);
        assert_eq!(out.result, SatResult::Sat);
        let m = out.model.unwrap();
        // model must actually satisfy the formula
        assert_eq!(eval(&f, &m).unwrap(), Value::Bool(true));
    }

    #[test]
    #[ignore = "requires a real libz3; the vendored stub answers Unknown"]
    fn unsat_simple() {
        let x = Term::var("x", Sort::Bool);
        let mut s = Z3Backend::new();
        s.assert(&x);
        s.assert(&x.not());
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    #[ignore = "requires a real libz3; the vendored stub answers Unknown"]
    fn push_pop_restores() {
        let x = Term::var("x", Sort::Bool);
        let mut s = Z3Backend::new();
        s.assert(&x);
        s.push();
        s.assert(&x.not());
        assert_eq!(s.check(), SatResult::Unsat);
        s.pop();
        assert_eq!(s.check(), SatResult::Sat);
    }

    #[test]
    #[ignore = "requires a real libz3; the vendored stub answers Unknown"]
    fn assumptions_and_core() {
        // x && !x via two assumptions plus an irrelevant third.
        let x = Term::var("x", Sort::Bool);
        let z = Term::var("z", Sort::Bool);
        let mut s = Z3Backend::new();
        let assumptions = vec![x.clone(), x.not(), z.clone()];
        assert_eq!(s.check_assumptions(&assumptions), SatResult::Unsat);
        let core = s.unsat_core();
        assert!(core.contains(&0));
        assert!(core.contains(&1));
        assert!(!core.contains(&2), "irrelevant assumption in core");
        // solver state restored
        assert_eq!(s.check(), SatResult::Sat);
    }

    #[test]
    #[ignore = "requires a real libz3; the vendored stub answers Unknown"]
    fn wide_bv_literals() {
        let x = Term::var("x", Sort::Bv(100));
        let big: u128 = (1u128 << 99) | 12345;
        let f = x.eq_term(&Term::bv(100, big));
        let mut s = Z3Backend::new();
        let out = s.solve(&f);
        assert_eq!(out.result, SatResult::Sat);
        let m = out.model.unwrap();
        assert_eq!(m.get("x" as &str), Some(&Value::bv(100, big)));
    }

    #[test]
    #[ignore = "requires a real libz3; the vendored stub answers Unknown"]
    fn ite_lowering() {
        let c = Term::var("c", Sort::Bool);
        let t = c
            .ite(&Term::bv(8, 1), &Term::bv(8, 2))
            .eq_term(&Term::bv(8, 2));
        let mut s = Z3Backend::new();
        let out = s.solve(&t);
        let m = out.model.unwrap();
        assert_eq!(m.get("c" as &str), Some(&Value::Bool(false)));
    }

    #[test]
    fn stub_or_real_lowering_never_panics() {
        // Exercises the full lowering surface; with the stub this checks
        // that nothing in assert/check panics even though answers are
        // Unknown.
        let x = Term::var("x", Sort::Bv(8));
        let y = Term::var("y", Sort::Bv(8));
        let f = x
            .bvadd(&y)
            .bvmul(&x.bvnot())
            .bvudiv(&y.bvor(&Term::bv(8, 3)))
            .bvult(&x.bvlshr(&Term::bv(8, 2)))
            .and(&x.concat(&y).extract(11, 4).eq_term(&Term::bv(8, 9)));
        let mut s = Z3Backend::new();
        s.assert(&f);
        let _ = s.check();
        assert!(s.last_error().is_none(), "well-sorted formula poisoned solver");
    }
}
