//! CNF representation shared by the bit-blaster and the CDCL solver.

/// A literal: a variable index with a sign. Variables are numbered from 1;
/// the literal for variable `v` is `v` (positive) or `-v` (negated),
/// packed as `2*v + sign` internally.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Lit(pub i32);

impl Lit {
    /// Positive literal of variable `v` (v >= 1).
    pub fn pos(v: u32) -> Lit {
        Lit(v as i32)
    }

    /// Negative literal of variable `v`.
    pub fn neg(v: u32) -> Lit {
        Lit(-(v as i32))
    }

    /// The underlying variable index.
    pub fn var(self) -> u32 {
        self.0.unsigned_abs()
    }

    /// True if this is a positive literal.
    pub fn is_pos(self) -> bool {
        self.0 > 0
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(-self.0)
    }
}

/// A disjunction of literals.
pub type Clause = Vec<Lit>;

/// A CNF formula under construction, with a fresh-variable allocator and
/// Tseitin-style gate encoders.
#[derive(Default, Clone, Debug)]
pub struct CnfBuilder {
    /// Highest allocated variable index.
    pub num_vars: u32,
    /// The clause database.
    pub clauses: Vec<Clause>,
}

impl CnfBuilder {
    /// Empty formula.
    pub fn new() -> CnfBuilder {
        CnfBuilder::default()
    }

    /// Allocate a fresh variable and return its positive literal.
    pub fn fresh(&mut self) -> Lit {
        self.num_vars += 1;
        Lit::pos(self.num_vars)
    }

    /// A literal constrained to be true (the constant `true`).
    pub fn true_lit(&mut self) -> Lit {
        let l = self.fresh();
        self.add(vec![l]);
        l
    }

    /// Add a clause.
    pub fn add(&mut self, clause: Clause) {
        self.clauses.push(clause);
    }

    /// `out <-> !a`: encoded by returning the negated literal (free).
    pub fn not_gate(&mut self, a: Lit) -> Lit {
        a.negate()
    }

    /// Tseitin AND gate: returns `out` with `out <-> a & b`.
    pub fn and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        let out = self.fresh();
        self.add(vec![out.negate(), a]);
        self.add(vec![out.negate(), b]);
        self.add(vec![out, a.negate(), b.negate()]);
        out
    }

    /// Tseitin OR gate.
    pub fn or_gate(&mut self, a: Lit, b: Lit) -> Lit {
        self.and_gate(a.negate(), b.negate()).negate()
    }

    /// Tseitin XOR gate: `out <-> a ^ b`.
    pub fn xor_gate(&mut self, a: Lit, b: Lit) -> Lit {
        let out = self.fresh();
        self.add(vec![out.negate(), a, b]);
        self.add(vec![out.negate(), a.negate(), b.negate()]);
        self.add(vec![out, a.negate(), b]);
        self.add(vec![out, a, b.negate()]);
        out
    }

    /// N-ary AND.
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => self.true_lit(),
            [l] => *l,
            _ => {
                let out = self.fresh();
                let mut long = Vec::with_capacity(lits.len() + 1);
                long.push(out);
                for &l in lits {
                    self.add(vec![out.negate(), l]);
                    long.push(l.negate());
                }
                self.add(long);
                out
            }
        }
    }

    /// N-ary OR.
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        let negs: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
        self.and_many(&negs).negate()
    }

    /// Multiplexer: `out <-> if c then a else b`.
    pub fn mux_gate(&mut self, c: Lit, a: Lit, b: Lit) -> Lit {
        let out = self.fresh();
        self.add(vec![out.negate(), c.negate(), a]);
        self.add(vec![out, c.negate(), a.negate()]);
        self.add(vec![out.negate(), c, b]);
        self.add(vec![out, c, b.negate()]);
        out
    }

    /// Full adder: returns (sum, carry_out).
    pub fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let ab = self.xor_gate(a, b);
        let sum = self.xor_gate(ab, cin);
        let c1 = self.and_gate(a, b);
        let c2 = self.and_gate(ab, cin);
        let cout = self.or_gate(c1, c2);
        (sum, cout)
    }

    /// `out <-> (a == b)` bitwise over equal-length slices.
    pub fn eq_gate(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        assert_eq!(a.len(), b.len());
        let bits: Vec<Lit> = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| self.xor_gate(x, y).negate())
            .collect();
        self.and_many(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force a small CNF over its first `n` vars, treating the rest as
    /// existentially quantified (checked by trying every full assignment).
    fn models(cnf: &CnfBuilder) -> Vec<Vec<bool>> {
        let n = cnf.num_vars as usize;
        assert!(n <= 16, "brute force limit");
        let mut out = Vec::new();
        for m in 0u32..(1 << n) {
            let assign = |l: Lit| {
                let v = ((m >> (l.var() - 1)) & 1) == 1;
                if l.is_pos() {
                    v
                } else {
                    !v
                }
            };
            if cnf.clauses.iter().all(|c| c.iter().any(|&l| assign(l))) {
                out.push((0..n).map(|i| ((m >> i) & 1) == 1).collect());
            }
        }
        out
    }

    #[test]
    fn and_gate_truth_table() {
        let mut cnf = CnfBuilder::new();
        let a = cnf.fresh();
        let b = cnf.fresh();
        let o = cnf.and_gate(a, b);
        for m in models(&cnf) {
            let (av, bv, ov) = (m[0], m[1], m[2]);
            assert_eq!(ov, av && bv);
        }
        assert_eq!(models(&cnf).len(), 4);
        let _ = o;
    }

    #[test]
    fn xor_gate_truth_table() {
        let mut cnf = CnfBuilder::new();
        let a = cnf.fresh();
        let b = cnf.fresh();
        let _o = cnf.xor_gate(a, b);
        for m in models(&cnf) {
            assert_eq!(m[2], m[0] ^ m[1]);
        }
    }

    #[test]
    fn mux_gate_truth_table() {
        let mut cnf = CnfBuilder::new();
        let c = cnf.fresh();
        let a = cnf.fresh();
        let b = cnf.fresh();
        let _o = cnf.mux_gate(c, a, b);
        for m in models(&cnf) {
            let expect = if m[0] { m[1] } else { m[2] };
            assert_eq!(m[3], expect);
        }
    }

    #[test]
    fn full_adder_truth_table() {
        let mut cnf = CnfBuilder::new();
        let a = cnf.fresh();
        let b = cnf.fresh();
        let cin = cnf.fresh();
        let (sum, cout) = cnf.full_adder(a, b, cin);
        for m in models(&cnf) {
            let lit = |l: Lit| {
                let v = m[(l.var() - 1) as usize];
                if l.is_pos() {
                    v
                } else {
                    !v
                }
            };
            let total = m[0] as u8 + m[1] as u8 + m[2] as u8;
            assert_eq!(lit(sum), total & 1 == 1);
            assert_eq!(lit(cout), total >= 2);
        }
    }
}
