//! The QF_BV term language.
//!
//! Terms are immutable, reference-counted DAG nodes. Every [`Term`] carries a
//! process-unique id so that analyses (lowering, substitution, free
//! variables) can memoize on identity instead of re-walking shared
//! sub-DAGs — this is what keeps weakest-precondition formulas, which share
//! heavily across CFG join points, tractable.
//!
//! Constructors perform constant folding and cheap algebraic rewrites
//! (identity/absorbing elements, double negation, trivial `ite`). Deeper
//! simplification lives in [`crate::simplify`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Maximum supported bit-vector width. P4 allows arbitrary widths; every
/// program in our corpus (and, to our knowledge, every practical P4 header
/// field) fits in 128 bits, which lets us store literals in a `u128`.
pub const MAX_WIDTH: u32 = 128;

/// The sort (type) of a term.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Sort {
    /// Boolean.
    Bool,
    /// Bit-vector of the given width (1..=[`MAX_WIDTH`]).
    Bv(u32),
}

impl Sort {
    /// Width of a bit-vector sort; panics on `Bool`.
    pub fn width(self) -> u32 {
        match self {
            Sort::Bv(w) => w,
            Sort::Bool => panic!("Sort::width called on Bool"),
        }
    }

    /// True if this is a bit-vector sort.
    pub fn is_bv(self) -> bool {
        matches!(self, Sort::Bv(_))
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "bool"),
            Sort::Bv(w) => write!(f, "bv{w}"),
        }
    }
}

/// A concrete value: the result of evaluating a term, or a literal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// Boolean value.
    Bool(bool),
    /// Bit-vector value; `bits` is always masked to `width` bits.
    Bv {
        /// Width in bits (1..=[`MAX_WIDTH`]).
        width: u32,
        /// The payload, masked to `width`.
        bits: u128,
    },
}

impl Value {
    /// Construct a bit-vector value, masking `bits` to `width`.
    pub fn bv(width: u32, bits: u128) -> Value {
        assert!((1..=MAX_WIDTH).contains(&width), "bad bv width {width}");
        Value::Bv {
            width,
            bits: mask(width, bits),
        }
    }

    /// Sort of this value.
    pub fn sort(&self) -> Sort {
        match self {
            Value::Bool(_) => Sort::Bool,
            Value::Bv { width, .. } => Sort::Bv(*width),
        }
    }

    /// The boolean payload; panics if this is a bit-vector.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            _ => panic!("as_bool on {self:?}"),
        }
    }

    /// The bit-vector payload; panics if this is a boolean.
    pub fn as_bits(&self) -> u128 {
        match self {
            Value::Bv { bits, .. } => *bits,
            _ => panic!("as_bits on {self:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Bv { width, bits } => write!(f, "{bits}w{width}"),
        }
    }
}

/// Mask `bits` down to the low `width` bits.
pub fn mask(width: u32, bits: u128) -> u128 {
    if width >= 128 {
        bits
    } else {
        bits & ((1u128 << width) - 1)
    }
}

/// Binary bit-vector operators (`Bv x Bv -> Bv`, same width), with
/// SMT-LIB semantics (see [`fold_bv`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum BvOp {
    Add,
    Sub,
    Mul,
    UDiv,
    URem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
}

/// Bit-vector comparison operators (`Bv x Bv -> Bool`); `U`/`S` prefixes
/// select unsigned/signed interpretation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum CmpOp {
    Ult,
    Ule,
    Ugt,
    Uge,
    Slt,
    Sle,
    Sgt,
    Sge,
}

/// A term-DAG node. Construct via the methods on [`Term`]; the enum is public
/// so that backends and analyses can pattern-match.
#[derive(Debug)]
pub enum TermNode {
    /// Literal constant.
    Const(Value),
    /// Free variable with a name and sort.
    Var(Arc<str>, Sort),
    /// Boolean negation.
    Not(Term),
    /// N-ary conjunction (flattened, no literal `true` members).
    And(Vec<Term>),
    /// N-ary disjunction (flattened, no literal `false` members).
    Or(Vec<Term>),
    /// Implication.
    Implies(Term, Term),
    /// If-then-else; branches share any sort.
    Ite(Term, Term, Term),
    /// Equality over any shared sort.
    Eq(Term, Term),
    /// Binary bit-vector arithmetic/bitwise op.
    Bv(BvOp, Term, Term),
    /// Bit-vector comparison producing a boolean.
    Cmp(CmpOp, Term, Term),
    /// Bitwise complement.
    BvNot(Term),
    /// Two's-complement negation.
    BvNeg(Term),
    /// Concatenation: `hi ++ lo` (width = sum).
    Concat(Term, Term),
    /// Bit extraction `arg[hi:lo]` inclusive (width = hi-lo+1).
    Extract {
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
        /// Extracted operand.
        arg: Term,
    },
    /// Zero-extension by `add` bits.
    ZeroExt {
        /// Bits added.
        add: u32,
        /// Extended operand.
        arg: Term,
    },
    /// Sign-extension by `add` bits.
    SignExt {
        /// Bits added.
        add: u32,
        /// Extended operand.
        arg: Term,
    },
}

struct Inner {
    id: u64,
    sort: Sort,
    node: TermNode,
}

/// A reference-counted, immutable QF_BV term.
///
/// Cloning is cheap (an `Arc` bump). Equality (`==`) is *identity* equality —
/// two structurally equal terms built separately compare unequal; use
/// [`Term::alpha_eq`] for structural comparison where needed. Identity
/// equality is the right default for memoized analyses and is what all
/// internal maps key on.
#[derive(Clone)]
pub struct Term(Arc<Inner>);

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

impl PartialEq for Term {
    fn eq(&self, other: &Self) -> bool {
        self.0.id == other.0.id
    }
}
impl Eq for Term {}
impl std::hash::Hash for Term {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.id.hash(state);
    }
}

impl Term {
    fn mk(sort: Sort, node: TermNode) -> Term {
        Term(Arc::new(Inner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            sort,
            node,
        }))
    }

    /// Process-unique id of this node; stable for the node's lifetime.
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// The node payload.
    pub fn node(&self) -> &TermNode {
        &self.0.node
    }

    /// The sort of this term.
    pub fn sort(&self) -> Sort {
        self.0.sort
    }

    /// Width shortcut for bit-vector terms.
    pub fn width(&self) -> u32 {
        self.0.sort.width()
    }

    // ---- leaves ----

    /// Boolean literal.
    pub fn bool(b: bool) -> Term {
        Term::mk(Sort::Bool, TermNode::Const(Value::Bool(b)))
    }

    /// The literal `true`.
    pub fn tt() -> Term {
        Term::bool(true)
    }

    /// The literal `false`.
    pub fn ff() -> Term {
        Term::bool(false)
    }

    /// Bit-vector literal (masked to `width`).
    pub fn bv(width: u32, bits: u128) -> Term {
        Term::mk(Sort::Bv(width), TermNode::Const(Value::bv(width, bits)))
    }

    /// Literal from a [`Value`].
    pub fn value(v: Value) -> Term {
        Term::mk(v.sort(), TermNode::Const(v))
    }

    /// Free variable.
    pub fn var(name: impl Into<Arc<str>>, sort: Sort) -> Term {
        Term::mk(sort, TermNode::Var(name.into(), sort))
    }

    /// If this term is a literal, its value.
    pub fn as_const(&self) -> Option<Value> {
        match self.node() {
            TermNode::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// If this term is a boolean literal, its value.
    pub fn as_bool_const(&self) -> Option<bool> {
        match self.as_const() {
            Some(Value::Bool(b)) => Some(b),
            _ => None,
        }
    }

    /// If this term is a bit-vector literal, its bits.
    pub fn as_bv_const(&self) -> Option<u128> {
        match self.as_const() {
            Some(Value::Bv { bits, .. }) => Some(bits),
            _ => None,
        }
    }

    /// True if this term is the literal `true`.
    pub fn is_true(&self) -> bool {
        self.as_bool_const() == Some(true)
    }

    /// True if this term is the literal `false`.
    pub fn is_false(&self) -> bool {
        self.as_bool_const() == Some(false)
    }

    // ---- boolean connectives ----

    /// Logical negation with double-negation and literal folding.
    pub fn not(&self) -> Term {
        assert_eq!(self.sort(), Sort::Bool, "not: non-bool operand");
        match self.node() {
            TermNode::Const(Value::Bool(b)) => Term::bool(!b),
            TermNode::Not(inner) => inner.clone(),
            _ => Term::mk(Sort::Bool, TermNode::Not(self.clone())),
        }
    }

    /// N-ary conjunction; flattens one level, drops `true`, folds `false`.
    pub fn and_all(terms: impl IntoIterator<Item = Term>) -> Term {
        let mut out: Vec<Term> = Vec::new();
        for t in terms {
            assert_eq!(t.sort(), Sort::Bool, "and: non-bool operand");
            if t.is_true() {
                continue;
            }
            if t.is_false() {
                return Term::ff();
            }
            if let TermNode::And(inner) = t.node() {
                // Only flatten small nests: unbounded flattening destroys
                // the DAG sharing that keeps WP formulas compact.
                if inner.len() <= 4 {
                    out.extend(inner.iter().cloned());
                    continue;
                }
            }
            out.push(t);
        }
        match out.len() {
            0 => Term::tt(),
            1 => out.pop().unwrap(),
            _ => Term::mk(Sort::Bool, TermNode::And(out)),
        }
    }

    /// Binary conjunction.
    pub fn and(&self, other: &Term) -> Term {
        Term::and_all([self.clone(), other.clone()])
    }

    /// N-ary disjunction; flattens one level, drops `false`, folds `true`.
    pub fn or_all(terms: impl IntoIterator<Item = Term>) -> Term {
        let mut out: Vec<Term> = Vec::new();
        for t in terms {
            assert_eq!(t.sort(), Sort::Bool, "or: non-bool operand");
            if t.is_false() {
                continue;
            }
            if t.is_true() {
                return Term::tt();
            }
            if let TermNode::Or(inner) = t.node() {
                if inner.len() <= 4 {
                    out.extend(inner.iter().cloned());
                    continue;
                }
            }
            out.push(t);
        }
        match out.len() {
            0 => Term::ff(),
            1 => out.pop().unwrap(),
            _ => Term::mk(Sort::Bool, TermNode::Or(out)),
        }
    }

    /// Binary disjunction.
    pub fn or(&self, other: &Term) -> Term {
        Term::or_all([self.clone(), other.clone()])
    }

    /// Implication `self => other`.
    pub fn implies(&self, other: &Term) -> Term {
        assert_eq!(self.sort(), Sort::Bool);
        assert_eq!(other.sort(), Sort::Bool);
        if self.is_false() || other.is_true() {
            return Term::tt();
        }
        if self.is_true() {
            return other.clone();
        }
        if other.is_false() {
            return self.not();
        }
        Term::mk(Sort::Bool, TermNode::Implies(self.clone(), other.clone()))
    }

    /// Logical equivalence, expressed through [`Term::eq_term`].
    pub fn iff(&self, other: &Term) -> Term {
        self.eq_term(other)
    }

    /// If-then-else over any sort.
    pub fn ite(&self, then_t: &Term, else_t: &Term) -> Term {
        assert_eq!(self.sort(), Sort::Bool, "ite: non-bool condition");
        assert_eq!(then_t.sort(), else_t.sort(), "ite: branch sort mismatch");
        if self.is_true() {
            return then_t.clone();
        }
        if self.is_false() {
            return else_t.clone();
        }
        if then_t == else_t {
            return then_t.clone();
        }
        // ite(c, true, false) = c;  ite(c, false, true) = !c
        if then_t.sort() == Sort::Bool {
            if then_t.is_true() && else_t.is_false() {
                return self.clone();
            }
            if then_t.is_false() && else_t.is_true() {
                return self.not();
            }
        }
        Term::mk(
            then_t.sort(),
            TermNode::Ite(self.clone(), then_t.clone(), else_t.clone()),
        )
    }

    /// Equality over a shared sort (booleans or same-width bit-vectors).
    pub fn eq_term(&self, other: &Term) -> Term {
        assert_eq!(
            self.sort(),
            other.sort(),
            "eq: sort mismatch {} vs {}",
            self.sort(),
            other.sort()
        );
        if self == other {
            return Term::tt();
        }
        if let (Some(a), Some(b)) = (self.as_const(), other.as_const()) {
            return Term::bool(a == b);
        }
        // bool-side folds: (x == true) -> x, (x == false) -> !x
        if self.sort() == Sort::Bool {
            if let Some(b) = other.as_bool_const() {
                return if b { self.clone() } else { self.not() };
            }
            if let Some(b) = self.as_bool_const() {
                return if b { other.clone() } else { other.not() };
            }
        }
        Term::mk(Sort::Bool, TermNode::Eq(self.clone(), other.clone()))
    }

    /// Disequality.
    pub fn ne_term(&self, other: &Term) -> Term {
        self.eq_term(other).not()
    }

    // ---- bit-vector ops ----

    fn bvbin(&self, op: BvOp, other: &Term) -> Term {
        let w = self.width();
        assert_eq!(
            w,
            other.width(),
            "bv {op:?}: width mismatch {} vs {}",
            w,
            other.width()
        );
        if let (Some(a), Some(b)) = (self.as_bv_const(), other.as_bv_const()) {
            return Term::bv(w, fold_bv(op, w, a, b));
        }
        // identity / absorbing rewrites
        match op {
            BvOp::Add | BvOp::Or | BvOp::Xor | BvOp::Shl | BvOp::LShr | BvOp::AShr => {
                if other.as_bv_const() == Some(0) {
                    return self.clone();
                }
                if matches!(op, BvOp::Add | BvOp::Or | BvOp::Xor) && self.as_bv_const() == Some(0)
                {
                    return other.clone();
                }
            }
            BvOp::Sub => {
                if other.as_bv_const() == Some(0) {
                    return self.clone();
                }
                if self == other {
                    return Term::bv(w, 0);
                }
            }
            BvOp::And => {
                if other.as_bv_const() == Some(0) || self.as_bv_const() == Some(0) {
                    return Term::bv(w, 0);
                }
                let ones = mask(w, u128::MAX);
                if other.as_bv_const() == Some(ones) {
                    return self.clone();
                }
                if self.as_bv_const() == Some(ones) {
                    return other.clone();
                }
                if self == other {
                    return self.clone();
                }
            }
            BvOp::Mul => {
                if other.as_bv_const() == Some(1) {
                    return self.clone();
                }
                if self.as_bv_const() == Some(1) {
                    return other.clone();
                }
                if other.as_bv_const() == Some(0) || self.as_bv_const() == Some(0) {
                    return Term::bv(w, 0);
                }
            }
            _ => {}
        }
        Term::mk(Sort::Bv(w), TermNode::Bv(op, self.clone(), other.clone()))
    }

    /// Addition (wrap-around).
    pub fn bvadd(&self, o: &Term) -> Term {
        self.bvbin(BvOp::Add, o)
    }
    /// Subtraction (wrap-around).
    pub fn bvsub(&self, o: &Term) -> Term {
        self.bvbin(BvOp::Sub, o)
    }
    /// Multiplication (truncating).
    pub fn bvmul(&self, o: &Term) -> Term {
        self.bvbin(BvOp::Mul, o)
    }
    /// Unsigned division (per SMT-LIB, `x / 0` is all-ones).
    pub fn bvudiv(&self, o: &Term) -> Term {
        self.bvbin(BvOp::UDiv, o)
    }
    /// Unsigned remainder (per SMT-LIB, `x % 0` is `x`).
    pub fn bvurem(&self, o: &Term) -> Term {
        self.bvbin(BvOp::URem, o)
    }
    /// Bitwise and.
    pub fn bvand(&self, o: &Term) -> Term {
        self.bvbin(BvOp::And, o)
    }
    /// Bitwise or.
    pub fn bvor(&self, o: &Term) -> Term {
        self.bvbin(BvOp::Or, o)
    }
    /// Bitwise xor.
    pub fn bvxor(&self, o: &Term) -> Term {
        self.bvbin(BvOp::Xor, o)
    }
    /// Left shift (shift amount is the second operand, same width).
    pub fn bvshl(&self, o: &Term) -> Term {
        self.bvbin(BvOp::Shl, o)
    }
    /// Logical right shift.
    pub fn bvlshr(&self, o: &Term) -> Term {
        self.bvbin(BvOp::LShr, o)
    }
    /// Arithmetic right shift.
    pub fn bvashr(&self, o: &Term) -> Term {
        self.bvbin(BvOp::AShr, o)
    }

    /// Bitwise complement.
    pub fn bvnot(&self) -> Term {
        let w = self.width();
        if let Some(a) = self.as_bv_const() {
            return Term::bv(w, !a);
        }
        if let TermNode::BvNot(inner) = self.node() {
            return inner.clone();
        }
        Term::mk(Sort::Bv(w), TermNode::BvNot(self.clone()))
    }

    /// Two's-complement negation.
    pub fn bvneg(&self) -> Term {
        let w = self.width();
        if let Some(a) = self.as_bv_const() {
            return Term::bv(w, a.wrapping_neg());
        }
        Term::mk(Sort::Bv(w), TermNode::BvNeg(self.clone()))
    }

    fn cmp(&self, op: CmpOp, other: &Term) -> Term {
        let w = self.width();
        assert_eq!(w, other.width(), "cmp {op:?}: width mismatch");
        if let (Some(a), Some(b)) = (self.as_bv_const(), other.as_bv_const()) {
            return Term::bool(fold_cmp(op, w, a, b));
        }
        if self == other {
            return Term::bool(matches!(op, CmpOp::Ule | CmpOp::Uge | CmpOp::Sle | CmpOp::Sge));
        }
        Term::mk(Sort::Bool, TermNode::Cmp(op, self.clone(), other.clone()))
    }

    /// Unsigned `<`.
    pub fn bvult(&self, o: &Term) -> Term {
        self.cmp(CmpOp::Ult, o)
    }
    /// Unsigned `<=`.
    pub fn bvule(&self, o: &Term) -> Term {
        self.cmp(CmpOp::Ule, o)
    }
    /// Unsigned `>`.
    pub fn bvugt(&self, o: &Term) -> Term {
        self.cmp(CmpOp::Ugt, o)
    }
    /// Unsigned `>=`.
    pub fn bvuge(&self, o: &Term) -> Term {
        self.cmp(CmpOp::Uge, o)
    }
    /// Signed `<`.
    pub fn bvslt(&self, o: &Term) -> Term {
        self.cmp(CmpOp::Slt, o)
    }
    /// Signed `<=`.
    pub fn bvsle(&self, o: &Term) -> Term {
        self.cmp(CmpOp::Sle, o)
    }
    /// Signed `>`.
    pub fn bvsgt(&self, o: &Term) -> Term {
        self.cmp(CmpOp::Sgt, o)
    }
    /// Signed `>=`.
    pub fn bvsge(&self, o: &Term) -> Term {
        self.cmp(CmpOp::Sge, o)
    }

    /// Concatenation `self ++ low` — `self` supplies the high bits.
    pub fn concat(&self, low: &Term) -> Term {
        let w = self.width() + low.width();
        assert!(w <= MAX_WIDTH, "concat width {w} exceeds {MAX_WIDTH}");
        if let (Some(a), Some(b)) = (self.as_bv_const(), low.as_bv_const()) {
            return Term::bv(w, (a << low.width()) | b);
        }
        Term::mk(Sort::Bv(w), TermNode::Concat(self.clone(), low.clone()))
    }

    /// Extract bits `hi..=lo`.
    pub fn extract(&self, hi: u32, lo: u32) -> Term {
        let w = self.width();
        assert!(hi >= lo && hi < w, "extract [{hi}:{lo}] out of bv{w}");
        let nw = hi - lo + 1;
        if nw == w {
            return self.clone();
        }
        if let Some(a) = self.as_bv_const() {
            return Term::bv(nw, a >> lo);
        }
        Term::mk(
            Sort::Bv(nw),
            TermNode::Extract {
                hi,
                lo,
                arg: self.clone(),
            },
        )
    }

    /// Zero-extend by `add` bits.
    pub fn zero_ext(&self, add: u32) -> Term {
        if add == 0 {
            return self.clone();
        }
        let w = self.width() + add;
        assert!(w <= MAX_WIDTH);
        if let Some(a) = self.as_bv_const() {
            return Term::bv(w, a);
        }
        Term::mk(
            Sort::Bv(w),
            TermNode::ZeroExt {
                add,
                arg: self.clone(),
            },
        )
    }

    /// Sign-extend by `add` bits.
    pub fn sign_ext(&self, add: u32) -> Term {
        if add == 0 {
            return self.clone();
        }
        let ow = self.width();
        let w = ow + add;
        assert!(w <= MAX_WIDTH);
        if let Some(a) = self.as_bv_const() {
            let sign = (a >> (ow - 1)) & 1;
            let ext = if sign == 1 {
                mask(w, u128::MAX) & !mask(ow, u128::MAX)
            } else {
                0
            };
            return Term::bv(w, a | ext);
        }
        Term::mk(
            Sort::Bv(w),
            TermNode::SignExt {
                add,
                arg: self.clone(),
            },
        )
    }

    /// Resize to `new_width`: truncate or zero-extend as needed. This is the
    /// semantics P4 gives to width casts between unsigned bit types.
    pub fn resize(&self, new_width: u32) -> Term {
        let w = self.width();
        if new_width == w {
            self.clone()
        } else if new_width < w {
            self.extract(new_width - 1, 0)
        } else {
            self.zero_ext(new_width - w)
        }
    }

    /// Structural (deep) equality; used only in tests and on small atoms.
    pub fn alpha_eq(&self, other: &Term) -> bool {
        if self == other {
            return true;
        }
        if self.sort() != other.sort() {
            return false;
        }
        use TermNode::*;
        match (self.node(), other.node()) {
            (Const(a), Const(b)) => a == b,
            (Var(a, sa), Var(b, sb)) => a == b && sa == sb,
            (Not(a), Not(b)) => a.alpha_eq(b),
            (And(a), And(b)) | (Or(a), Or(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.alpha_eq(y))
            }
            (Implies(a1, a2), Implies(b1, b2)) | (Eq(a1, a2), Eq(b1, b2)) => {
                a1.alpha_eq(b1) && a2.alpha_eq(b2)
            }
            (Ite(a1, a2, a3), Ite(b1, b2, b3)) => {
                a1.alpha_eq(b1) && a2.alpha_eq(b2) && a3.alpha_eq(b3)
            }
            (Bv(oa, a1, a2), Bv(ob, b1, b2)) => oa == ob && a1.alpha_eq(b1) && a2.alpha_eq(b2),
            (Cmp(oa, a1, a2), Cmp(ob, b1, b2)) => oa == ob && a1.alpha_eq(b1) && a2.alpha_eq(b2),
            (BvNot(a), BvNot(b)) | (BvNeg(a), BvNeg(b)) => a.alpha_eq(b),
            (Concat(a1, a2), Concat(b1, b2)) => a1.alpha_eq(b1) && a2.alpha_eq(b2),
            (
                Extract {
                    hi: h1,
                    lo: l1,
                    arg: a,
                },
                Extract {
                    hi: h2,
                    lo: l2,
                    arg: b,
                },
            ) => h1 == h2 && l1 == l2 && a.alpha_eq(b),
            (ZeroExt { add: x, arg: a }, ZeroExt { add: y, arg: b })
            | (SignExt { add: x, arg: a }, SignExt { add: y, arg: b }) => {
                x == y && a.alpha_eq(b)
            }
            _ => false,
        }
    }
}

/// Fold a binary bit-vector operation on constants (SMT-LIB semantics).
pub fn fold_bv(op: BvOp, w: u32, a: u128, b: u128) -> u128 {
    let m = |x| mask(w, x);
    match op {
        BvOp::Add => m(a.wrapping_add(b)),
        BvOp::Sub => m(a.wrapping_sub(b)),
        BvOp::Mul => m(a.wrapping_mul(b)),
        BvOp::UDiv => m(a.checked_div(b).unwrap_or(u128::MAX)),
        BvOp::URem => {
            if b == 0 {
                a
            } else {
                m(a % b)
            }
        }
        BvOp::And => a & b,
        BvOp::Or => a | b,
        BvOp::Xor => a ^ b,
        BvOp::Shl => {
            if b >= w as u128 {
                0
            } else {
                m(a << b)
            }
        }
        BvOp::LShr => {
            if b >= w as u128 {
                0
            } else {
                a >> b
            }
        }
        BvOp::AShr => {
            let sign = (a >> (w - 1)) & 1;
            if b >= w as u128 {
                if sign == 1 {
                    mask(w, u128::MAX)
                } else {
                    0
                }
            } else {
                let shifted = a >> b;
                if sign == 1 {
                    let fill = mask(w, u128::MAX) & !(mask(w, u128::MAX) >> b);
                    m(shifted | fill)
                } else {
                    shifted
                }
            }
        }
    }
}

/// Signed interpretation of a `w`-bit value.
pub fn to_signed(w: u32, a: u128) -> i128 {
    if w == 128 {
        return a as i128; // two's-complement reinterpretation
    }
    let sign = (a >> (w - 1)) & 1;
    if sign == 1 {
        (a as i128) - (1i128 << w)
    } else {
        a as i128
    }
}

/// Fold a bit-vector comparison on constants.
pub fn fold_cmp(op: CmpOp, w: u32, a: u128, b: u128) -> bool {
    match op {
        CmpOp::Ult => a < b,
        CmpOp::Ule => a <= b,
        CmpOp::Ugt => a > b,
        CmpOp::Uge => a >= b,
        CmpOp::Slt => to_signed(w, a) < to_signed(w, b),
        CmpOp::Sle => to_signed(w, a) <= to_signed(w, b),
        CmpOp::Sgt => to_signed(w, a) > to_signed(w, b),
        CmpOp::Sge => to_signed(w, a) >= to_signed(w, b),
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Depth-limited printer: WP formulas can be enormous.
        fn go(t: &Term, f: &mut fmt::Formatter<'_>, depth: u32) -> fmt::Result {
            if depth > 12 {
                return write!(f, "…");
            }
            use TermNode::*;
            match t.node() {
                Const(v) => write!(f, "{v}"),
                Var(n, _) => write!(f, "{n}"),
                Not(a) => {
                    write!(f, "!(")?;
                    go(a, f, depth + 1)?;
                    write!(f, ")")
                }
                And(xs) | Or(xs) => {
                    let sep = if matches!(t.node(), And(_)) { " && " } else { " || " };
                    write!(f, "(")?;
                    for (i, x) in xs.iter().enumerate() {
                        if i > 0 {
                            write!(f, "{sep}")?;
                        }
                        go(x, f, depth + 1)?;
                    }
                    write!(f, ")")
                }
                Implies(a, b) => {
                    write!(f, "(")?;
                    go(a, f, depth + 1)?;
                    write!(f, " => ")?;
                    go(b, f, depth + 1)?;
                    write!(f, ")")
                }
                Ite(c, a, b) => {
                    write!(f, "ite(")?;
                    go(c, f, depth + 1)?;
                    write!(f, ", ")?;
                    go(a, f, depth + 1)?;
                    write!(f, ", ")?;
                    go(b, f, depth + 1)?;
                    write!(f, ")")
                }
                Eq(a, b) => {
                    write!(f, "(")?;
                    go(a, f, depth + 1)?;
                    write!(f, " == ")?;
                    go(b, f, depth + 1)?;
                    write!(f, ")")
                }
                Bv(op, a, b) => {
                    write!(f, "({op:?} ")?;
                    go(a, f, depth + 1)?;
                    write!(f, " ")?;
                    go(b, f, depth + 1)?;
                    write!(f, ")")
                }
                Cmp(op, a, b) => {
                    write!(f, "({op:?} ")?;
                    go(a, f, depth + 1)?;
                    write!(f, " ")?;
                    go(b, f, depth + 1)?;
                    write!(f, ")")
                }
                BvNot(a) => {
                    write!(f, "~(")?;
                    go(a, f, depth + 1)?;
                    write!(f, ")")
                }
                BvNeg(a) => {
                    write!(f, "-(")?;
                    go(a, f, depth + 1)?;
                    write!(f, ")")
                }
                Concat(a, b) => {
                    write!(f, "(")?;
                    go(a, f, depth + 1)?;
                    write!(f, " ++ ")?;
                    go(b, f, depth + 1)?;
                    write!(f, ")")
                }
                Extract { hi, lo, arg } => {
                    go(arg, f, depth + 1)?;
                    write!(f, "[{hi}:{lo}]")
                }
                ZeroExt { add, arg } => {
                    write!(f, "zext{add}(")?;
                    go(arg, f, depth + 1)?;
                    write!(f, ")")
                }
                SignExt { add, arg } => {
                    write!(f, "sext{add}(")?;
                    go(arg, f, depth + 1)?;
                    write!(f, ")")
                }
            }
        }
        go(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_folding_add() {
        let t = Term::bv(8, 250).bvadd(&Term::bv(8, 10));
        assert_eq!(t.as_bv_const(), Some(4)); // wraps mod 256
    }

    #[test]
    fn and_identities() {
        let x = Term::var("x", Sort::Bool);
        assert_eq!(x.and(&Term::tt()), x);
        assert!(x.and(&Term::ff()).is_false());
        assert!(Term::and_all([]).is_true());
    }

    #[test]
    fn or_identities() {
        let x = Term::var("x", Sort::Bool);
        assert_eq!(x.or(&Term::ff()), x);
        assert!(x.or(&Term::tt()).is_true());
        assert!(Term::or_all([]).is_false());
    }

    #[test]
    fn double_negation() {
        let x = Term::var("x", Sort::Bool);
        assert_eq!(x.not().not(), x);
    }

    #[test]
    fn eq_same_node_is_true() {
        let x = Term::var("x", Sort::Bv(4));
        assert!(x.eq_term(&x).is_true());
    }

    #[test]
    fn eq_bool_const_folds_to_operand() {
        let x = Term::var("x", Sort::Bool);
        assert_eq!(x.eq_term(&Term::tt()), x);
        assert!(matches!(x.eq_term(&Term::ff()).node(), TermNode::Not(_)));
    }

    #[test]
    fn ite_folds() {
        let x = Term::var("x", Sort::Bv(8));
        let y = Term::var("y", Sort::Bv(8));
        let c = Term::var("c", Sort::Bool);
        assert_eq!(Term::tt().ite(&x, &y), x);
        assert_eq!(Term::ff().ite(&x, &y), y);
        assert_eq!(c.ite(&x, &x), x);
        assert_eq!(c.ite(&Term::tt(), &Term::ff()), c);
    }

    #[test]
    fn sub_self_is_zero() {
        let x = Term::var("x", Sort::Bv(16));
        assert_eq!(x.bvsub(&x).as_bv_const(), Some(0));
    }

    #[test]
    fn and_with_ones_and_zero() {
        let x = Term::var("x", Sort::Bv(8));
        assert_eq!(x.bvand(&Term::bv(8, 0xff)), x);
        assert_eq!(x.bvand(&Term::bv(8, 0)).as_bv_const(), Some(0));
    }

    #[test]
    fn extract_and_concat_fold() {
        let t = Term::bv(16, 0xabcd);
        assert_eq!(t.extract(15, 8).as_bv_const(), Some(0xab));
        assert_eq!(t.extract(7, 0).as_bv_const(), Some(0xcd));
        let c = Term::bv(8, 0xab).concat(&Term::bv(8, 0xcd));
        assert_eq!(c.as_bv_const(), Some(0xabcd));
        assert_eq!(c.width(), 16);
    }

    #[test]
    fn sign_ext_fold() {
        assert_eq!(Term::bv(4, 0b1000).sign_ext(4).as_bv_const(), Some(0xf8));
        assert_eq!(Term::bv(4, 0b0100).sign_ext(4).as_bv_const(), Some(0x04));
    }

    #[test]
    fn resize_semantics() {
        let t = Term::bv(16, 0xabcd);
        assert_eq!(t.resize(8).as_bv_const(), Some(0xcd));
        assert_eq!(t.resize(32).as_bv_const(), Some(0xabcd));
        assert_eq!(t.resize(16), t);
    }

    #[test]
    fn signed_compare_folds() {
        // -1 < 0 signed, but 0xff > 0 unsigned
        let a = Term::bv(8, 0xff);
        let b = Term::bv(8, 0);
        assert!(a.bvslt(&b).is_true());
        assert!(a.bvult(&b).is_false());
    }

    #[test]
    fn udiv_urem_by_zero_smtlib() {
        assert_eq!(fold_bv(BvOp::UDiv, 8, 7, 0), 0xff);
        assert_eq!(fold_bv(BvOp::URem, 8, 7, 0), 7);
    }

    #[test]
    fn shift_semantics() {
        assert_eq!(fold_bv(BvOp::Shl, 8, 1, 9), 0);
        assert_eq!(fold_bv(BvOp::LShr, 8, 0x80, 7), 1);
        assert_eq!(fold_bv(BvOp::AShr, 8, 0x80, 7), 0xff);
        assert_eq!(fold_bv(BvOp::AShr, 8, 0x40, 6), 1);
    }

    #[test]
    fn identity_vs_structural_equality() {
        let a = Term::var("v", Sort::Bv(8)).bvadd(&Term::var("w", Sort::Bv(8)));
        let b = Term::var("v", Sort::Bv(8)).bvadd(&Term::var("w", Sort::Bv(8)));
        assert_ne!(a, b); // identity
        assert!(a.alpha_eq(&b)); // structure
    }
}
