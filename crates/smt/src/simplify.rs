//! A deeper, whole-DAG simplifier applied before formulas reach the solver.
//!
//! Construction-time folding (in [`crate::term`]) only sees one node at a
//! time. This pass re-traverses a formula bottom-up (memoized on node id)
//! and applies context rewrites that matter for the formulas the
//! verification core produces:
//!
//! * equality propagation through `ite`: `ite(c, a, b) == k` with constant
//!   `k`, `a`, `b` collapses to `c`, `!c`, `true` or `false`;
//! * extraction through concatenation;
//! * conjunction/disjunction complement detection (`x && !x` → `false`);
//! * re-application of all constructor folds after child rewriting.
//!
//! Simplification is semantics-preserving; `tests` cross-check random
//! formulas against Z3 equivalence in the crate's property suite.

use crate::term::{Term, TermNode};
use crate::visit::substitute;
use std::collections::HashMap;

/// Simplify a term (idempotent, semantics-preserving).
pub fn simplify(t: &Term) -> Term {
    // Rebuilding through the smart constructors already re-folds; the
    // cheapest full-strength pass is an identity substitution.
    let rebuilt = substitute(t, &HashMap::new());
    extra_pass(&rebuilt, &mut HashMap::new())
}

fn extra_pass(t: &Term, memo: &mut HashMap<u64, Term>) -> Term {
    if let Some(r) = memo.get(&t.id()) {
        return r.clone();
    }
    let out = match t.node() {
        TermNode::And(xs) => {
            let xs: Vec<Term> = xs.iter().map(|x| extra_pass(x, memo)).collect();
            // complement detection: x && !x
            if has_complement(&xs) {
                Term::ff()
            } else {
                Term::and_all(dedup_by_id(xs))
            }
        }
        TermNode::Or(xs) => {
            let xs: Vec<Term> = xs.iter().map(|x| extra_pass(x, memo)).collect();
            if has_complement(&xs) {
                Term::tt()
            } else {
                Term::or_all(dedup_by_id(xs))
            }
        }
        TermNode::Eq(a, b) => {
            let a = extra_pass(a, memo);
            let b = extra_pass(b, memo);
            // ite(c, k1, k2) == k  with all k const
            if let Some(r) = ite_eq_const(&a, &b).or_else(|| ite_eq_const(&b, &a)) {
                r
            } else {
                a.eq_term(&b)
            }
        }
        TermNode::Not(a) => extra_pass(a, memo).not(),
        TermNode::Extract { hi, lo, arg } => {
            let arg = extra_pass(arg, memo);
            // extract over concat: pick the side when fully contained
            if let TermNode::Concat(h, l) = arg.node() {
                let lw = l.width();
                if *hi < lw {
                    return remember(t, extra_pass(&l.extract(*hi, *lo), memo), memo);
                }
                if *lo >= lw {
                    return remember(
                        t,
                        extra_pass(&h.extract(*hi - lw, *lo - lw), memo),
                        memo,
                    );
                }
            }
            arg.extract(*hi, *lo)
        }
        _ => t.clone(),
    };
    remember(t, out, memo)
}

fn remember(key: &Term, val: Term, memo: &mut HashMap<u64, Term>) -> Term {
    memo.insert(key.id(), val.clone());
    val
}

fn dedup_by_id(mut xs: Vec<Term>) -> Vec<Term> {
    let mut seen = std::collections::HashSet::new();
    xs.retain(|x| seen.insert(x.id()));
    xs
}

fn has_complement(xs: &[Term]) -> bool {
    let ids: std::collections::HashSet<u64> = xs.iter().map(|x| x.id()).collect();
    xs.iter().any(|x| {
        if let TermNode::Not(inner) = x.node() {
            ids.contains(&inner.id())
        } else {
            false
        }
    })
}

/// `ite(c, a, b) == k` where `a`, `b`, `k` are constants.
fn ite_eq_const(ite: &Term, k: &Term) -> Option<Term> {
    let kv = k.as_const()?;
    if let TermNode::Ite(c, a, b) = ite.node() {
        let av = a.as_const()?;
        let bv = b.as_const()?;
        return Some(match (av == kv, bv == kv) {
            (true, true) => Term::tt(),
            (true, false) => c.clone(),
            (false, true) => c.not(),
            (false, false) => Term::ff(),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    #[test]
    fn complement_in_and() {
        let x = Term::var("x", Sort::Bool);
        let y = Term::var("y", Sort::Bool);
        let nx = x.not();
        let t = Term::and_all([x.clone(), y.clone(), nx]);
        assert!(simplify(&t).is_false());
    }

    #[test]
    fn complement_in_or() {
        let x = Term::var("x", Sort::Bool);
        let t = Term::or_all([x.clone(), x.not()]);
        assert!(simplify(&t).is_true());
    }

    #[test]
    fn ite_eq_const_collapses() {
        let c = Term::var("c", Sort::Bool);
        let t = c
            .ite(&Term::bv(8, 1), &Term::bv(8, 2))
            .eq_term(&Term::bv(8, 1));
        assert_eq!(simplify(&t), c);
        let t = c
            .ite(&Term::bv(8, 1), &Term::bv(8, 2))
            .eq_term(&Term::bv(8, 2));
        assert!(matches!(simplify(&t).node(), TermNode::Not(_)));
        let t = c
            .ite(&Term::bv(8, 1), &Term::bv(8, 2))
            .eq_term(&Term::bv(8, 7));
        assert!(simplify(&t).is_false());
    }

    #[test]
    fn extract_through_concat() {
        let x = Term::var("x", Sort::Bv(8));
        let y = Term::var("y", Sort::Bv(8));
        let t = x.concat(&y).extract(15, 8); // == x
        assert_eq!(simplify(&t), x);
        let t = x.concat(&y).extract(7, 0); // == y
        assert_eq!(simplify(&t), y);
    }

    #[test]
    fn dedup_conjuncts() {
        let x = Term::var("x", Sort::Bool);
        let y = Term::var("y", Sort::Bool);
        let t = Term::and_all([x.clone(), y.clone(), x.clone()]);
        let s = simplify(&t);
        if let TermNode::And(xs) = s.node() {
            assert_eq!(xs.len(), 2);
        } else {
            panic!("expected And, got {s}");
        }
    }

    #[test]
    fn idempotent() {
        let x = Term::var("x", Sort::Bv(8));
        let t = x
            .bvadd(&Term::bv(8, 0))
            .eq_term(&Term::bv(8, 3))
            .and(&Term::var("b", Sort::Bool));
        let s1 = simplify(&t);
        let s2 = simplify(&s1);
        assert!(s1.alpha_eq(&s2));
    }
}
