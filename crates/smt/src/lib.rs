#![warn(missing_docs)]

//! # bf4-smt — SMT terms and solver backends for the bf4 verifier
//!
//! This crate provides the logical substrate used by the rest of the bf4
//! pipeline:
//!
//! * a DAG-shared **term language** over booleans and fixed-width
//!   bit-vectors ([`Term`], [`Sort`]), with constant folding and light
//!   algebraic simplification applied at construction time;
//! * **analyses** over terms: free variables, substitution, size metrics,
//!   and a concrete evaluator ([`eval`]) used by the dataplane interpreter
//!   and the differential test harness;
//! * a [`Z3Backend`] that lowers terms to Z3 ASTs (preserving DAG sharing)
//!   and exposes the solver operations the paper's algorithms rely on:
//!   incremental `check`, models, assumption-based checking and unsat cores
//!   (Algorithm 1 of the paper is built directly on these);
//! * an **internal bit-blasting CDCL solver** ([`sat`], [`bitblast`]) used as
//!   an independent oracle in differential tests so that the Z3 lowering
//!   itself is covered by tests that do not trust Z3 blindly.
//!
//! The term language is deliberately small: the P4 fragment bf4 analyses
//! compiles to quantifier-free bit-vector logic (QF_BV) only.

pub mod bitblast;
pub mod cnf;
pub mod eval;
pub mod sat;
pub mod sexpr;
pub mod simplify;
pub mod solver;
pub mod term;
pub mod visit;
pub mod z3backend;

pub use eval::{eval, Assignment, EvalError};
pub use sexpr::{parse_sexpr, to_sexpr};
pub use solver::{SatResult, SolveOutcome, Solver};
pub use term::{Sort, Term, TermNode, Value};
pub use visit::{free_vars, substitute, term_size};
pub use z3backend::Z3Backend;
