#![warn(missing_docs)]

//! # bf4-smt — SMT terms and solver backends for the bf4 verifier
//!
//! This crate provides the logical substrate used by the rest of the bf4
//! pipeline:
//!
//! * a DAG-shared **term language** over booleans and fixed-width
//!   bit-vectors ([`Term`], [`Sort`]), with constant folding and light
//!   algebraic simplification applied at construction time;
//! * **analyses** over terms: free variables, substitution, size metrics,
//!   and a concrete evaluator ([`eval`]) used by the dataplane interpreter
//!   and the differential test harness;
//! * an **internal bit-blasting CDCL solver** ([`sat`], [`bitblast`]): the
//!   default, dependency-free backend exposing the solver operations the
//!   paper's algorithms rely on — incremental `check`, models,
//!   assumption-based checking and unsat cores (Algorithm 1 of the paper is
//!   built directly on these);
//! * a `Z3Backend` (behind the `z3` feature) lowering terms to Z3 ASTs
//!   while preserving DAG sharing; without a real libz3 the vendored stub
//!   answers `Unknown` to everything, which the governance layer absorbs;
//! * a **governance layer** ([`governed`]): [`GovernedSolver`] enforces
//!   [`ResourceBudget`]s (deadlines, query counts, formula-size caps) on
//!   any backend, retries transient `Unknown`s on a fresh context and
//!   falls back to the internal solver for small formulas. Pipelines
//!   construct solvers through [`new_solver`]/[`default_solver`] so every
//!   query in the system is budgeted.
//!
//! The term language is deliberately small: the P4 fragment bf4 analyses
//! compiles to quantifier-free bit-vector logic (QF_BV) only.

pub mod bitblast;
pub mod canon;
pub mod cnf;
pub mod eval;
pub mod governed;
pub mod incremental;
pub mod sat;
pub mod sexpr;
pub mod simplify;
pub mod solver;
pub mod term;
pub mod visit;
#[cfg(feature = "z3")]
pub mod z3backend;

pub use canon::{canon_key, query_key, schema_fingerprint};
pub use eval::{eval, Assignment, EvalError};
pub use governed::{
    default_solver, new_solver, BackendKind, GovernedSolver, SolverConfig, SolverMode,
};
pub use incremental::IncrementalSolver;
pub use sexpr::{parse_sexpr, to_sexpr};
pub use solver::{
    BudgetKind, ResourceBudget, SatResult, SolveOutcome, Solver, SolverError,
};
pub use term::{Sort, Term, TermNode, Value};
pub use visit::{free_vars, substitute, term_size};
#[cfg(feature = "z3")]
pub use z3backend::Z3Backend;
