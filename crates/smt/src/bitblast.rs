//! Bit-blasting from [`Term`] to CNF, plus [`BitBlastSolver`], a [`Solver`]
//! implementation running entirely on the internal CDCL engine.
//!
//! Every bit-vector term lowers to a little-endian vector of literals
//! (`bits[0]` = LSB); boolean terms lower to a single literal. Gates follow
//! the standard constructions: ripple-carry adders, shift-and-add
//! multipliers, barrel shifters, and division by definition
//! (`a = q*b + r ∧ r < b` when `b ≠ 0`, with the SMT-LIB convention for
//! `b = 0`).
//!
//! The solver re-blasts its assertion stack on every `check`; it trades
//! incrementality for simplicity, which is the right trade for its role as
//! a cross-checking oracle.

use crate::cnf::{CnfBuilder, Lit};
use crate::sat::{CdclSolver, SolveLimits, SolveResult};
use crate::solver::{BudgetKind, ResourceBudget, SatResult, Solver, SolverError};
use crate::term::{BvOp, CmpOp, Sort, Term, TermNode, Value};
use crate::Assignment;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// A lowered term: one literal per bit (LSB first) or a single boolean.
#[derive(Clone, Debug)]
pub(crate) enum Bits {
    B(Lit),
    V(Vec<Lit>),
}

impl Bits {
    pub(crate) fn b(&self) -> Lit {
        match self {
            Bits::B(l) => *l,
            _ => panic!("expected bool bits"),
        }
    }
    fn v(&self) -> &[Lit] {
        match self {
            Bits::V(v) => v,
            _ => panic!("expected bv bits"),
        }
    }
}

/// Bit-blasting context.
pub(crate) struct Blaster {
    pub(crate) cnf: CnfBuilder,
    memo: HashMap<u64, Bits>,
    pub(crate) vars: HashMap<Arc<str>, Bits>,
    lit_true: Option<Lit>,
}

impl Blaster {
    pub(crate) fn new() -> Blaster {
        Blaster {
            cnf: CnfBuilder::new(),
            memo: HashMap::new(),
            vars: HashMap::new(),
            lit_true: None,
        }
    }

    fn tlit(&mut self) -> Lit {
        if let Some(l) = self.lit_true {
            return l;
        }
        let l = self.cnf.true_lit();
        self.lit_true = Some(l);
        l
    }

    fn flit(&mut self) -> Lit {
        self.tlit().negate()
    }

    fn const_bits(&mut self, width: u32, bits: u128) -> Vec<Lit> {
        (0..width)
            .map(|i| {
                if (bits >> i) & 1 == 1 {
                    self.tlit()
                } else {
                    self.flit()
                }
            })
            .collect()
    }

    fn var_bits(&mut self, name: &Arc<str>, sort: Sort) -> Bits {
        if let Some(b) = self.vars.get(name) {
            return b.clone();
        }
        let b = match sort {
            Sort::Bool => Bits::B(self.cnf.fresh()),
            Sort::Bv(w) => Bits::V((0..w).map(|_| self.cnf.fresh()).collect()),
        };
        self.vars.insert(name.clone(), b.clone());
        b
    }

    fn add(&mut self, a: &[Lit], b: &[Lit], cin: Lit) -> (Vec<Lit>, Lit) {
        let mut out = Vec::with_capacity(a.len());
        let mut carry = cin;
        for i in 0..a.len() {
            let (s, c) = self.cnf.full_adder(a[i], b[i], carry);
            out.push(s);
            carry = c;
        }
        (out, carry)
    }

    fn neg_bits(&mut self, a: &[Lit]) -> Vec<Lit> {
        // two's complement: ~a + 1
        let inv: Vec<Lit> = a.iter().map(|l| l.negate()).collect();
        let t = self.tlit();
        let zero: Vec<Lit> = a.iter().map(|_| t.negate()).collect();
        self.add(&inv, &zero, t).0
    }

    fn mul(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let f = self.flit();
        let mut acc: Vec<Lit> = vec![f; w];
        for i in 0..w {
            // partial = (a << i) & b[i]
            let mut partial: Vec<Lit> = vec![f; w];
            for j in i..w {
                partial[j] = self.cnf.and_gate(a[j - i], b[i]);
            }
            acc = self.add(&acc, &partial, f).0;
        }
        acc
    }

    fn ult(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        // a < b  <=>  borrow out of a - b
        let invb: Vec<Lit> = b.iter().map(|l| l.negate()).collect();
        let t = self.tlit();
        let (_, carry) = self.add(a, &invb, t);
        carry.negate()
    }

    fn slt(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let w = a.len();
        let sa = a[w - 1];
        let sb = b[w - 1];
        let u = self.ult(a, b);
        // different signs: a<b iff a negative; same signs: unsigned compare
        let diff = self.cnf.xor_gate(sa, sb);
        self.cnf.mux_gate(diff, sa, u)
    }

    fn shift(&mut self, a: &[Lit], amt: &[Lit], right: bool, arith: bool) -> Vec<Lit> {
        let w = a.len();
        let fill0 = self.flit();
        let fill = if arith { a[w - 1] } else { fill0 };
        let mut cur: Vec<Lit> = a.to_vec();
        // Barrel shifter over the meaningful stage bits.
        let stages = 32 - (w as u32).leading_zeros(); // ceil(log2(w))+..
        for (s, &amt_s) in amt.iter().enumerate() {
            let shift_by = 1usize << s.min(63);
            if s as u32 >= stages {
                // Shifting by >= w zeroes (or sign-fills) everything when the
                // bit is set.
                let mut next = Vec::with_capacity(w);
                for &c in cur.iter().take(w) {
                    next.push(self.cnf.mux_gate(amt_s, fill, c));
                }
                cur = next;
                continue;
            }
            let mut next = Vec::with_capacity(w);
            for i in 0..w {
                let shifted = if right {
                    if i + shift_by < w {
                        cur[i + shift_by]
                    } else {
                        fill
                    }
                } else if i >= shift_by {
                    cur[i - shift_by]
                } else {
                    fill0
                };
                next.push(self.cnf.mux_gate(amt[s], shifted, cur[i]));
            }
            cur = next;
        }
        cur
    }

    fn is_zero(&mut self, a: &[Lit]) -> Lit {
        let negs: Vec<Lit> = a.iter().map(|l| l.negate()).collect();
        self.cnf.and_many(&negs)
    }

    /// Division/remainder by definition with fresh result vectors.
    ///
    /// The defining equation `a == q*b + r` is evaluated at width `2w`
    /// (operands zero-extended), where the product of two `w`-bit values
    /// cannot wrap — this rules out spurious solutions like
    /// `q*b + r ≡ a (mod 2^w)` with `q > a/b`.
    fn divrem(&mut self, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        let q: Vec<Lit> = (0..w).map(|_| self.cnf.fresh()).collect();
        let r: Vec<Lit> = (0..w).map(|_| self.cnf.fresh()).collect();
        let bz = self.is_zero(b);
        let f = self.flit();
        let widen = |v: &[Lit]| {
            let mut out = v.to_vec();
            out.extend(std::iter::repeat_n(f, w));
            out
        };
        let (aw, qw, bw, rw) = (widen(a), widen(&q), widen(b), widen(&r));
        // When b != 0:  a == q*b + r (exact, at 2w bits)  &&  r < b.
        let qb = self.mul(&qw, &bw);
        let (sum, _) = self.add(&qb, &rw, f);
        let eq = self.cnf.eq_gate(&aw, &sum);
        let rlt = self.ult(&r, b);
        let ok = self.cnf.and_gate(eq, rlt);
        // When b == 0: q == ones, r == a (SMT-LIB).
        let ones: Vec<Lit> = (0..w).map(|_| self.tlit()).collect();
        let qones = self.cnf.eq_gate(&q, &ones);
        let req = self.cnf.eq_gate(&r, a);
        let zcase = self.cnf.and_gate(qones, req);
        let cond = self.cnf.mux_gate(bz, zcase, ok);
        self.cnf.add(vec![cond]);
        (q, r)
    }

    pub(crate) fn blast(&mut self, t: &Term) -> Bits {
        if let Some(b) = self.memo.get(&t.id()) {
            return b.clone();
        }
        let result = match t.node() {
            TermNode::Const(Value::Bool(b)) => {
                Bits::B(if *b { self.tlit() } else { self.flit() })
            }
            TermNode::Const(Value::Bv { width, bits }) => {
                Bits::V(self.const_bits(*width, *bits))
            }
            TermNode::Var(name, sort) => self.var_bits(name, *sort),
            TermNode::Not(a) => {
                let a = self.blast(a).b();
                Bits::B(a.negate())
            }
            TermNode::And(xs) => {
                let lits: Vec<Lit> = xs.iter().map(|x| self.blast(x).b()).collect();
                Bits::B(self.cnf.and_many(&lits))
            }
            TermNode::Or(xs) => {
                let lits: Vec<Lit> = xs.iter().map(|x| self.blast(x).b()).collect();
                Bits::B(self.cnf.or_many(&lits))
            }
            TermNode::Implies(a, b) => {
                let a = self.blast(a).b();
                let b = self.blast(b).b();
                Bits::B(self.cnf.or_gate(a.negate(), b))
            }
            TermNode::Ite(c, a, b) => {
                let c = self.blast(c).b();
                match (self.blast(a), self.blast(b)) {
                    (Bits::B(x), Bits::B(y)) => Bits::B(self.cnf.mux_gate(c, x, y)),
                    (Bits::V(x), Bits::V(y)) => Bits::V(
                        x.iter()
                            .zip(&y)
                            .map(|(&p, &q)| self.cnf.mux_gate(c, p, q))
                            .collect(),
                    ),
                    _ => unreachable!("sorted terms"),
                }
            }
            TermNode::Eq(a, b) => match (self.blast(a), self.blast(b)) {
                (Bits::B(x), Bits::B(y)) => Bits::B(self.cnf.xor_gate(x, y).negate()),
                (Bits::V(x), Bits::V(y)) => Bits::B(self.cnf.eq_gate(&x, &y)),
                _ => unreachable!("sorted terms"),
            },
            TermNode::Bv(op, a, b) => {
                let av = self.blast(a).v().to_vec();
                let bv = self.blast(b).v().to_vec();
                let f = self.flit();
                Bits::V(match op {
                    BvOp::Add => self.add(&av, &bv, f).0,
                    BvOp::Sub => {
                        let invb: Vec<Lit> = bv.iter().map(|l| l.negate()).collect();
                        let t = self.tlit();
                        self.add(&av, &invb, t).0
                    }
                    BvOp::Mul => self.mul(&av, &bv),
                    BvOp::UDiv => self.divrem(&av, &bv).0,
                    BvOp::URem => self.divrem(&av, &bv).1,
                    BvOp::And => av
                        .iter()
                        .zip(&bv)
                        .map(|(&x, &y)| self.cnf.and_gate(x, y))
                        .collect(),
                    BvOp::Or => av
                        .iter()
                        .zip(&bv)
                        .map(|(&x, &y)| self.cnf.or_gate(x, y))
                        .collect(),
                    BvOp::Xor => av
                        .iter()
                        .zip(&bv)
                        .map(|(&x, &y)| self.cnf.xor_gate(x, y))
                        .collect(),
                    BvOp::Shl => self.shift(&av, &bv, false, false),
                    BvOp::LShr => self.shift(&av, &bv, true, false),
                    BvOp::AShr => self.shift(&av, &bv, true, true),
                })
            }
            TermNode::Cmp(op, a, b) => {
                let av = self.blast(a).v().to_vec();
                let bv = self.blast(b).v().to_vec();
                Bits::B(match op {
                    CmpOp::Ult => self.ult(&av, &bv),
                    CmpOp::Ule => self.ult(&bv, &av).negate(),
                    CmpOp::Ugt => self.ult(&bv, &av),
                    CmpOp::Uge => self.ult(&av, &bv).negate(),
                    CmpOp::Slt => self.slt(&av, &bv),
                    CmpOp::Sle => self.slt(&bv, &av).negate(),
                    CmpOp::Sgt => self.slt(&bv, &av),
                    CmpOp::Sge => self.slt(&av, &bv).negate(),
                })
            }
            TermNode::BvNot(a) => {
                Bits::V(self.blast(a).v().iter().map(|l| l.negate()).collect())
            }
            TermNode::BvNeg(a) => {
                let av = self.blast(a).v().to_vec();
                Bits::V(self.neg_bits(&av))
            }
            TermNode::Concat(a, b) => {
                // b supplies the low bits
                let mut out = self.blast(b).v().to_vec();
                out.extend_from_slice(self.blast(a).v());
                Bits::V(out)
            }
            TermNode::Extract { hi, lo, arg } => {
                let av = self.blast(arg).v().to_vec();
                Bits::V(av[*lo as usize..=*hi as usize].to_vec())
            }
            TermNode::ZeroExt { add, arg } => {
                let mut out = self.blast(arg).v().to_vec();
                let f = self.flit();
                out.extend(std::iter::repeat_n(f, *add as usize));
                Bits::V(out)
            }
            TermNode::SignExt { add, arg } => {
                let mut out = self.blast(arg).v().to_vec();
                let s = *out.last().unwrap();
                out.extend(std::iter::repeat_n(s, *add as usize));
                Bits::V(out)
            }
        };
        self.memo.insert(t.id(), result.clone());
        result
    }
}

/// A [`Solver`] running on the internal CDCL engine via bit-blasting.
#[derive(Default)]
pub struct BitBlastSolver {
    /// Assertion stack: frames of asserted terms.
    frames: Vec<Vec<Term>>,
    /// Artifacts of the last `check`, for `model`/`unsat_core`.
    last: Option<LastSolve>,
    /// Resource limits applied to every check (default: unlimited).
    budget: ResourceBudget,
    /// Cooperative cancellation flag handed to every CDCL call. Set by a
    /// portfolio race when the other solver answered first, so a losing
    /// challenger stops burning CPU mid-search.
    cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Why the last check returned `Unknown`, when it did.
    last_error: Option<SolverError>,
}

struct LastSolve {
    solver: CdclSolver,
    vars: HashMap<Arc<str>, Bits>,
    result: SatResult,
    /// assumption index -> CNF literal
    assumption_lits: Vec<Lit>,
}

impl BitBlastSolver {
    /// Fresh empty solver.
    pub fn new() -> BitBlastSolver {
        BitBlastSolver {
            frames: vec![Vec::new()],
            last: None,
            budget: ResourceBudget::default(),
            cancel: None,
            last_error: None,
        }
    }

    /// Make every subsequent check poll `flag` and abort with `Unknown`
    /// once it reads `true` (polled at the deadline cadence).
    pub fn set_cancel(&mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) {
        self.cancel = Some(flag);
    }

    /// Current formula size (term DAG nodes over the assertion stack plus
    /// the given assumptions) — the quantity checked against
    /// [`ResourceBudget::max_formula_size`] before blasting.
    fn formula_size(&self, assumptions: &[Term]) -> usize {
        self.frames
            .iter()
            .flatten()
            .chain(assumptions)
            .map(crate::term_size)
            .sum()
    }

    fn run(&mut self, assumptions: &[Term]) -> SatResult {
        self.last_error = None;
        if let Some(cap) = self.budget.max_formula_size {
            let size = self.formula_size(assumptions);
            if size > cap {
                self.last = None;
                self.last_error = Some(SolverError::Budget(BudgetKind::FormulaSize));
                return SatResult::Unknown;
            }
        }
        let deadline = self.budget.timeout.map(|t| Instant::now() + t);
        let mut blaster = Blaster::new();
        for frame in &self.frames {
            for t in frame {
                let l = blaster.blast(t).b();
                blaster.cnf.add(vec![l]);
            }
        }
        let assumption_lits: Vec<Lit> =
            assumptions.iter().map(|t| blaster.blast(t).b()).collect();
        let limits = SolveLimits {
            deadline,
            max_conflicts: self.budget.max_conflicts,
            cancel: self.cancel.clone(),
        };
        let mut solver = CdclSolver::new(blaster.cnf.num_vars, blaster.cnf.clauses.clone());
        let result = match solver.solve_limited(&assumption_lits, &limits) {
            SolveResult::Sat => SatResult::Sat,
            SolveResult::Unsat => SatResult::Unsat,
            SolveResult::Unknown => {
                let kind = if deadline.is_some_and(|d| Instant::now() >= d) {
                    BudgetKind::Timeout
                } else {
                    BudgetKind::Conflicts
                };
                self.last_error = Some(SolverError::Budget(kind));
                SatResult::Unknown
            }
        };
        self.last = Some(LastSolve {
            solver,
            vars: blaster.vars,
            result,
            assumption_lits,
        });
        result
    }
}

impl Solver for BitBlastSolver {
    fn assert(&mut self, t: &Term) {
        self.frames.last_mut().unwrap().push(t.clone());
    }

    fn push(&mut self) {
        self.frames.push(Vec::new());
    }

    fn pop(&mut self) {
        // Unified pop-underflow contract (see `Solver::pop`): the base frame
        // is never popped. Underflow is a caller bug — loud in debug builds,
        // a no-op in release so backends cannot desync assertion state.
        debug_assert!(self.frames.len() > 1, "pop on base assertion frame");
        if self.frames.len() > 1 {
            self.frames.pop();
        }
    }

    fn check(&mut self) -> SatResult {
        self.run(&[])
    }

    fn check_assumptions(&mut self, assumptions: &[Term]) -> SatResult {
        self.run(assumptions)
    }

    fn unsat_core(&mut self) -> Vec<usize> {
        // Deletion-based minimization: try dropping each assumption in turn.
        let last = match &self.last {
            Some(l) if l.result == SatResult::Unsat => l,
            _ => return Vec::new(),
        };
        // The whole minimization shares one deadline; an inconclusive trial
        // keeps its assumption (a non-minimal core is still a valid core).
        let limits = SolveLimits {
            deadline: self.budget.timeout.map(|t| Instant::now() + t),
            max_conflicts: self.budget.max_conflicts,
            cancel: self.cancel.clone(),
        };
        let all = last.assumption_lits.clone();
        let mut kept: Vec<usize> = (0..all.len()).collect();
        let mut i = 0;
        while i < kept.len() {
            let trial: Vec<Lit> = kept
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, &k)| all[k])
                .collect();
            let solver = &mut self.last.as_mut().unwrap().solver;
            if solver.solve_limited(&trial, &limits) == SolveResult::Unsat {
                kept.remove(i);
            } else {
                i += 1;
            }
        }
        // Restore the unsat state marker.
        kept
    }

    fn model(&mut self, vars: &[(Arc<str>, Sort)]) -> Result<Assignment, SolverError> {
        let last = self.last.as_ref().ok_or(SolverError::NoModel)?;
        if last.result != SatResult::Sat {
            return Err(SolverError::NoModel);
        }
        let mut out = Assignment::new();
        for (name, sort) in vars {
            let v = match (last.vars.get(name), sort) {
                (Some(Bits::B(l)), Sort::Bool) => {
                    let b = last.solver.value(l.var());
                    Value::Bool(if l.is_pos() { b } else { !b })
                }
                (Some(Bits::V(bits)), Sort::Bv(w)) => {
                    let mut x: u128 = 0;
                    for (i, l) in bits.iter().enumerate() {
                        let b = last.solver.value(l.var());
                        let b = if l.is_pos() { b } else { !b };
                        if b {
                            x |= 1 << i;
                        }
                    }
                    Value::bv(*w, x)
                }
                (None, Sort::Bool) => Value::Bool(false),
                (None, Sort::Bv(w)) => Value::bv(*w, 0),
                (Some(_), _) => {
                    let err = SolverError::SortMismatch(format!(
                        "model extraction: stored bits for `{name}` disagree with requested sort {sort:?}"
                    ));
                    self.last_error = Some(err.clone());
                    return Err(err);
                }
            };
            out.insert(name.clone(), v);
        }
        Ok(out)
    }

    fn set_budget(&mut self, budget: ResourceBudget) {
        self.budget = budget;
    }

    fn last_error(&self) -> Option<&SolverError> {
        self.last_error.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::term::Sort;

    fn sat_model(f: &Term) -> Option<Assignment> {
        let mut s = BitBlastSolver::new();
        let out = s.solve(f);
        out.model
    }

    #[test]
    fn arithmetic_sat() {
        let x = Term::var("x", Sort::Bv(8));
        let f = x.bvmul(&Term::bv(8, 3)).eq_term(&Term::bv(8, 30));
        let m = sat_model(&f).expect("sat");
        assert_eq!(eval(&f, &m).unwrap(), Value::Bool(true));
    }

    #[test]
    fn arithmetic_unsat() {
        // x*2 == 1 has no solution mod 2^8 (even != odd).
        let x = Term::var("x", Sort::Bv(8));
        let f = x.bvmul(&Term::bv(8, 2)).eq_term(&Term::bv(8, 1));
        let mut s = BitBlastSolver::new();
        assert_eq!(s.solve(&f).result, SatResult::Unsat);
    }

    #[test]
    fn comparison_chain() {
        let x = Term::var("x", Sort::Bv(6));
        let f = x
            .bvugt(&Term::bv(6, 10))
            .and(&x.bvult(&Term::bv(6, 12)));
        let m = sat_model(&f).expect("sat");
        assert_eq!(m.get("x" as &str), Some(&Value::bv(6, 11)));
    }

    #[test]
    fn signed_comparison() {
        // x < 0 signed and x > 100 unsigned: any negative 8-bit value > 100.
        let x = Term::var("x", Sort::Bv(8));
        let f = x
            .bvslt(&Term::bv(8, 0))
            .and(&x.bvugt(&Term::bv(8, 100)));
        let m = sat_model(&f).expect("sat");
        assert_eq!(eval(&f, &m).unwrap(), Value::Bool(true));
    }

    #[test]
    fn shifts() {
        let x = Term::var("x", Sort::Bv(8));
        let f = x.bvshl(&Term::bv(8, 3)).eq_term(&Term::bv(8, 0xa8)); // x<<3 == 0b10101000
        let m = sat_model(&f).expect("sat");
        assert_eq!(eval(&f, &m).unwrap(), Value::Bool(true));
    }

    #[test]
    fn division_definition() {
        let x = Term::var("x", Sort::Bv(6));
        let f = x
            .bvudiv(&Term::bv(6, 7))
            .eq_term(&Term::bv(6, 4))
            .and(&x.bvurem(&Term::bv(6, 7)).eq_term(&Term::bv(6, 3)));
        let m = sat_model(&f).expect("sat");
        assert_eq!(m.get("x" as &str), Some(&Value::bv(6, 31)));
    }

    #[test]
    fn division_by_zero_smtlib() {
        let x = Term::var("x", Sort::Bv(4));
        // x / 0 == 15 must be valid (all ones), so its negation is unsat.
        let f = x.bvudiv(&Term::bv(4, 0)).ne_term(&Term::bv(4, 0xf));
        let mut s = BitBlastSolver::new();
        assert_eq!(s.solve(&f).result, SatResult::Unsat);
    }

    #[test]
    fn concat_extract() {
        let x = Term::var("x", Sort::Bv(4));
        let y = Term::var("y", Sort::Bv(4));
        let f = x
            .concat(&y)
            .eq_term(&Term::bv(8, 0x5a));
        let m = sat_model(&f).expect("sat");
        assert_eq!(m.get("x" as &str), Some(&Value::bv(4, 5)));
        assert_eq!(m.get("y" as &str), Some(&Value::bv(4, 0xa)));
    }

    #[test]
    fn push_pop() {
        let x = Term::var("x", Sort::Bool);
        let mut s = BitBlastSolver::new();
        s.assert(&x);
        s.push();
        s.assert(&x.not());
        assert_eq!(s.check(), SatResult::Unsat);
        s.pop();
        assert_eq!(s.check(), SatResult::Sat);
    }

    #[test]
    fn assumption_core_minimized() {
        let x = Term::var("x", Sort::Bool);
        let y = Term::var("y", Sort::Bool);
        let mut s = BitBlastSolver::new();
        let assumptions = vec![x.clone(), y.clone(), x.not()];
        assert_eq!(s.check_assumptions(&assumptions), SatResult::Unsat);
        let core = s.unsat_core();
        assert_eq!(core, vec![0, 2], "y is irrelevant");
    }
}
