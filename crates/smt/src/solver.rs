//! The solver abstraction used by the verification core.
//!
//! Two implementations exist: [`crate::Z3Backend`] (the production backend,
//! as in the paper) and [`crate::bitblast::BitBlastSolver`] (an internal
//! CDCL solver over bit-blasted formulas, used as an independent oracle in
//! differential tests).

use crate::term::{Sort, Term};
use crate::Assignment;
use std::sync::Arc;

/// Result of a satisfiability check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment exists.
    Sat,
    /// No satisfying assignment exists.
    Unsat,
    /// The solver could not decide (resource limits).
    Unknown,
}

/// A satisfiability result bundled with a model when available.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// Sat/Unsat/Unknown.
    pub result: SatResult,
    /// Model for the requested variables, on `Sat`.
    pub model: Option<Assignment>,
}

/// Incremental solver interface over [`Term`] formulas.
///
/// The interface mirrors exactly the Z3 features Algorithm 1 (Infer)
/// depends on: incremental assertion, models, assumption-based checking and
/// unsat cores over the assumptions of the *most recent*
/// [`Solver::check_assumptions`] call.
pub trait Solver {
    /// Permanently assert a boolean term.
    fn assert(&mut self, t: &Term);

    /// Push a backtracking point.
    fn push(&mut self);

    /// Pop the most recent backtracking point.
    fn pop(&mut self);

    /// Check satisfiability of the asserted formulas.
    fn check(&mut self) -> SatResult;

    /// Check satisfiability under additional boolean assumptions.
    fn check_assumptions(&mut self, assumptions: &[Term]) -> SatResult;

    /// After an `Unsat` from [`Solver::check_assumptions`]: indices (into the
    /// assumption slice) of a small inconsistent subset.
    fn unsat_core(&mut self) -> Vec<usize>;

    /// After a `Sat`: concrete values for the requested variables. Variables
    /// the solver never saw get default values (false / zero), matching Z3's
    /// model-completion semantics.
    fn model(&mut self, vars: &[(Arc<str>, Sort)]) -> Option<Assignment>;

    /// Convenience: one-shot satisfiability of a single formula,
    /// returning a model over its free variables.
    fn solve(&mut self, t: &Term) -> SolveOutcome {
        self.push();
        self.assert(t);
        let result = self.check();
        let model = if result == SatResult::Sat {
            let fv: Vec<(Arc<str>, Sort)> = crate::free_vars(t).into_iter().collect();
            self.model(&fv)
        } else {
            None
        };
        self.pop();
        SolveOutcome { result, model }
    }
}
