//! The solver abstraction used by the verification core, plus the resource
//! governance vocabulary ([`ResourceBudget`], [`SolverError`]) shared by all
//! backends.
//!
//! Three implementations exist: [`crate::bitblast::BitBlastSolver`] (the
//! internal CDCL solver over bit-blasted formulas, the default backend),
//! `Z3Backend` (behind the `z3` feature), and
//! [`crate::governed::GovernedSolver`], which wraps either and enforces
//! budgets, retries transient `Unknown`s and falls back to the internal
//! solver.

use crate::term::{Sort, Term};
use crate::Assignment;
use std::sync::Arc;
use std::time::Duration;

/// Result of a satisfiability check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment exists.
    Sat,
    /// No satisfying assignment exists.
    Unsat,
    /// The solver could not decide (resource limits).
    Unknown,
}

/// Which resource limit a query ran into.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BudgetKind {
    /// Per-query wall-clock deadline expired.
    Timeout,
    /// The query counter hit [`ResourceBudget::max_queries`].
    Queries,
    /// The formula exceeded [`ResourceBudget::max_formula_size`] nodes.
    FormulaSize,
    /// The CDCL engine hit [`ResourceBudget::max_conflicts`].
    Conflicts,
}

impl std::fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BudgetKind::Timeout => "timeout",
            BudgetKind::Queries => "query count",
            BudgetKind::FormulaSize => "formula size",
            BudgetKind::Conflicts => "conflict limit",
        })
    }
}

/// Why a solver operation could not produce a definite answer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SolverError {
    /// A term had the wrong sort for its position (e.g. a bit-vector where
    /// a boolean was required). Indicates a lowering bug upstream; reported
    /// instead of panicking so one bad formula cannot kill a corpus run.
    SortMismatch(String),
    /// A resource budget was exhausted before the query was decided.
    Budget(BudgetKind),
    /// `model` was called without a preceding `Sat`, or the backend could
    /// not produce a model.
    NoModel,
    /// Backend-specific failure.
    Backend(String),
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::SortMismatch(what) => write!(f, "sort mismatch: {what}"),
            SolverError::Budget(kind) => write!(f, "budget exhausted: {kind}"),
            SolverError::NoModel => write!(f, "no model available"),
            SolverError::Backend(what) => write!(f, "backend error: {what}"),
        }
    }
}

impl std::error::Error for SolverError {}

/// Resource limits for solver queries.
///
/// The default budget is unlimited, matching the historical behavior of the
/// raw backends; [`crate::governed::GovernedSolver`] installs a bounded
/// default so nothing it runs can hang the pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Per-query wall-clock deadline.
    pub timeout: Option<Duration>,
    /// Total queries a governed solver may issue over its lifetime.
    pub max_queries: Option<u64>,
    /// Maximum formula size (term DAG nodes summed over the assertion
    /// stack) a query may involve — the memory proxy: bit-blasting cost is
    /// linear-ish in this number.
    pub max_formula_size: Option<usize>,
    /// Conflict cap for the internal CDCL engine.
    pub max_conflicts: Option<u64>,
    /// How many times a governed solver retries a transient `Unknown` on a
    /// fresh context with a simplified formula.
    pub max_retries: u32,
    /// Largest formula size the governed solver will hand to the internal
    /// bit-blaster as a fallback after the primary backend gave `Unknown`.
    pub fallback_max_size: usize,
}

impl Default for ResourceBudget {
    fn default() -> ResourceBudget {
        ResourceBudget {
            timeout: None,
            max_queries: None,
            max_formula_size: None,
            max_conflicts: None,
            max_retries: 1,
            fallback_max_size: 200_000,
        }
    }
}

impl ResourceBudget {
    /// The bounded budget [`crate::governed::GovernedSolver`] uses unless
    /// told otherwise: generous enough for every corpus program, small
    /// enough that a degenerate query cannot hang a run.
    pub fn bounded_default() -> ResourceBudget {
        ResourceBudget {
            timeout: Some(Duration::from_secs(30)),
            max_formula_size: Some(2_000_000),
            ..ResourceBudget::default()
        }
    }

    /// Budget with only a per-query timeout set.
    pub fn with_timeout(timeout: Duration) -> ResourceBudget {
        ResourceBudget {
            timeout: Some(timeout),
            ..ResourceBudget::default()
        }
    }
}

/// A satisfiability result bundled with a model when available.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// Sat/Unsat/Unknown.
    pub result: SatResult,
    /// Model for the requested variables, on `Sat`.
    pub model: Option<Assignment>,
}

/// Incremental solver interface over [`Term`] formulas.
///
/// The interface mirrors exactly the solver features Algorithm 1 (Infer)
/// depends on: incremental assertion, models, assumption-based checking and
/// unsat cores over the assumptions of the *most recent*
/// [`Solver::check_assumptions`] call.
///
/// Robustness contract: implementations must not panic on malformed input.
/// Sort mismatches and resource exhaustion surface as
/// [`SatResult::Unknown`] from checks (with [`Solver::last_error`]
/// explaining why) or as [`SolverError`] from [`Solver::model`].
pub trait Solver {
    /// Permanently assert a boolean term.
    fn assert(&mut self, t: &Term);

    /// Push a backtracking point.
    fn push(&mut self);

    /// Pop the most recent backtracking point.
    ///
    /// Pop-underflow contract (uniform across all backends, so incremental
    /// callers can never desync assertion state between them): the base
    /// assertion frame is never popped. Popping with no open backtracking
    /// point is a caller bug — it trips a `debug_assert` in debug builds
    /// and is a no-op in release builds.
    fn pop(&mut self);

    /// Check satisfiability of the asserted formulas.
    fn check(&mut self) -> SatResult;

    /// Check satisfiability under additional boolean assumptions.
    fn check_assumptions(&mut self, assumptions: &[Term]) -> SatResult;

    /// After an `Unsat` from [`Solver::check_assumptions`]: indices (into the
    /// assumption slice) of a small inconsistent subset.
    fn unsat_core(&mut self) -> Vec<usize>;

    /// After a `Sat`: concrete values for the requested variables. Variables
    /// the solver never saw get default values (false / zero), matching Z3's
    /// model-completion semantics.
    fn model(&mut self, vars: &[(Arc<str>, Sort)]) -> Result<Assignment, SolverError>;

    /// Install a resource budget. Backends that cannot enforce a given
    /// limit ignore it; the default implementation ignores everything.
    fn set_budget(&mut self, _budget: ResourceBudget) {}

    /// Why the most recent check returned [`SatResult::Unknown`] (or the
    /// most recent operation failed), if the backend recorded a reason.
    fn last_error(&self) -> Option<&SolverError> {
        None
    }

    /// Queries issued through this solver so far, when the implementation
    /// counts them (governed and cached solvers do; raw backends report 0).
    fn queries_used(&self) -> u64 {
        0
    }

    /// Convenience: one-shot satisfiability of a single formula,
    /// returning a model over its free variables.
    fn solve(&mut self, t: &Term) -> SolveOutcome {
        self.push();
        self.assert(t);
        let result = self.check();
        let model = if result == SatResult::Sat {
            let fv: Vec<(Arc<str>, Sort)> = crate::free_vars(t).into_iter().collect();
            self.model(&fv).ok()
        } else {
            None
        };
        self.pop();
        SolveOutcome { result, model }
    }
}
