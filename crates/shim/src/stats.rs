//! Latency statistics for the §5.3 evaluation: median / p90 / p99 / max
//! over per-update validation times.
//!
//! Percentiles come from the shared [`bf4_obs::Histogram`] — the same
//! log2-bucket quantile code path the engine's per-stage roll-ups use —
//! so `p50`/`p90`/`p99` are exclusive bucket upper bounds, not exact
//! order statistics. `max` and `mean` remain exact (the histogram tracks
//! true moments alongside the buckets).

use bf4_obs::Histogram;
use std::time::Duration;

/// Aggregated latency percentiles.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Median upper bound.
    pub p50: Duration,
    /// 90th-percentile upper bound.
    pub p90: Duration,
    /// 99th-percentile upper bound.
    pub p99: Duration,
    /// Maximum (exact).
    pub max: Duration,
    /// Mean (exact).
    pub mean: Duration,
}

/// Compute latency stats over a set of samples by folding them into a
/// shared histogram.
pub fn latency_stats(samples: &[Duration]) -> LatencyStats {
    let mut h = Histogram::default();
    for &s in samples {
        h.record(s);
    }
    from_histogram(&h)
}

/// Read the stats out of an already-populated histogram.
pub fn from_histogram(h: &Histogram) -> LatencyStats {
    if h.count() == 0 {
        return LatencyStats::default();
    }
    LatencyStats {
        count: h.count() as usize,
        p50: h.quantile_bound(0.50),
        p90: h.quantile_bound(0.90),
        p99: h.quantile_bound(0.99),
        max: h.max(),
        mean: h.mean(),
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} p50<{:?} p90<{:?} p99<{:?} max={:?} mean={:?}",
            self.count, self.p50, self.p90, self.p99, self.max, self.mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_bounds_on_known_distribution() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let s = latency_stats(&samples);
        assert_eq!(s.count, 100);
        // Bucket bounds: the reported quantile must bound the exact order
        // statistic from above, within one log2 bucket.
        assert!(s.p50 >= Duration::from_millis(50), "p50={:?}", s.p50);
        assert_eq!(s.p50, Duration::from_micros(1 << 16)); // 50ms in 32.8..65.5ms
        assert!(s.p90 >= Duration::from_millis(90), "p90={:?}", s.p90);
        assert_eq!(s.p90, Duration::from_micros(1 << 17)); // 90ms in 65.5..131ms
        assert_eq!(s.max, Duration::from_millis(100)); // moments stay exact
        assert_eq!(s.mean, Duration::from_micros(50_500));
    }

    #[test]
    fn empty_is_zero() {
        let s = latency_stats(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, Duration::ZERO);
        assert_eq!(s.p50, Duration::ZERO);
    }

    #[test]
    fn single_sample_bounded_at_every_quantile() {
        let s = latency_stats(&[Duration::from_micros(42)]);
        // 42µs lives in bucket 5 (32..64): every quantile reports its
        // exclusive upper bound.
        for q in [s.p50, s.p90, s.p99] {
            assert_eq!(q, Duration::from_micros(64));
            assert!(q > Duration::from_micros(42));
        }
        assert_eq!(s.max, Duration::from_micros(42));
    }

    #[test]
    fn matches_engine_quantile_code_path() {
        // The dedup contract: a histogram fed the same samples yields the
        // same bounds latency_stats reports.
        let samples: Vec<Duration> = (0..500).map(|i| Duration::from_micros(i * 7)).collect();
        let mut h = Histogram::default();
        for &x in &samples {
            h.record(x);
        }
        let s = latency_stats(&samples);
        assert_eq!(s.p50, h.quantile_bound(0.50));
        assert_eq!(s.p90, h.quantile_bound(0.90));
        assert_eq!(s.p99, h.quantile_bound(0.99));
        assert_eq!(s.max, h.max());
    }
}
