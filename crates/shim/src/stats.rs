//! Latency statistics for the §5.3 evaluation: median / p90 / max over
//! per-update validation times.

use std::time::Duration;

/// Aggregated latency percentiles.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Median.
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Maximum.
    pub max: Duration,
    /// Mean.
    pub mean: Duration,
}

/// Compute percentiles over a set of latency samples.
pub fn latency_stats(samples: &[Duration]) -> LatencyStats {
    if samples.is_empty() {
        return LatencyStats::default();
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let pct = |p: f64| -> Duration {
        let idx = ((sorted.len() as f64 - 1.0) * p).floor() as usize;
        sorted[idx.min(sorted.len() - 1)]
    };
    let total: Duration = sorted.iter().sum();
    LatencyStats {
        count: sorted.len(),
        p50: pct(0.50),
        p90: pct(0.90),
        p99: pct(0.99),
        max: *sorted.last().unwrap(),
        mean: total / (sorted.len() as u32),
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} p50={:?} p90={:?} p99={:?} max={:?} mean={:?}",
            self.count, self.p50, self.p90, self.p99, self.max, self.mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_distribution() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let s = latency_stats(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, Duration::from_millis(50));
        assert_eq!(s.p90, Duration::from_millis(90));
        assert_eq!(s.max, Duration::from_millis(100));
    }

    #[test]
    fn empty_is_zero() {
        let s = latency_stats(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, Duration::ZERO);
    }

    #[test]
    fn single_sample() {
        let s = latency_stats(&[Duration::from_micros(42)]);
        assert_eq!(s.p50, Duration::from_micros(42));
        assert_eq!(s.p90, Duration::from_micros(42));
    }
}
