//! Append-only journal of accepted updates with crash recovery.
//!
//! The shim of §4.4 keeps shadow copies of every asserted table; if the
//! shim process dies, the shadow state is gone while the dataplane still
//! holds the accepted rules — every later multi-table check would run
//! against an empty shadow and silently accept violating rules. To make
//! the shim restartable, every *accepted* update is appended to a journal
//! before the decision is returned:
//!
//! * one record per line, self-delimiting, with a per-line FNV-1a
//!   checksum — a crash half-way through a write leaves a truncated or
//!   corrupt tail that parsing detects and drops instead of choking on;
//! * recovery replays the valid prefix into a fresh [`Shim`]. Replay is
//!   idempotent: an insert already present reads back as
//!   [`ShimError::Duplicate`] and a delete of an already-dead rule as
//!   [`ShimError::NoSuchRule`]; both are skipped, so recovering twice (or
//!   from a journal that double-logged an entry) converges to the same
//!   state;
//! * insert records carry the rule id the original run assigned, and
//!   recovery cross-checks that replay reproduces it — a mismatch means
//!   the journal does not match the annotation file it is replayed under
//!   and is reported rather than papered over.
//!
//! The journal is plain bytes ([`Journal::bytes`]); callers persist it
//! wherever they like ([`Journal::persist`] writes it to a file) and hand
//! the bytes back to [`JournaledShim::recover`] after a crash.

use crate::{Decision, RuleUpdate, Shim, ShimError, Update};
use bf4_core::specs::AnnotationFile;

/// One journaled (accepted) update.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEntry {
    /// The accepted update.
    pub update: Update,
    /// Rule id the shim assigned (inserts only).
    pub rule_id: Option<usize>,
}

/// In-memory append-only journal. The byte representation is the journal;
/// persistence is just writing those bytes out.
#[derive(Clone, Debug, Default)]
pub struct Journal {
    buf: Vec<u8>,
}

/// Result of parsing journal bytes.
#[derive(Clone, Debug)]
pub struct ParsedJournal {
    /// Entries of the valid prefix, in append order.
    pub entries: Vec<JournalEntry>,
    /// Bytes of the valid prefix (safe to continue appending to).
    pub valid_len: usize,
    /// Whether a truncated or corrupt tail was dropped.
    pub truncated: bool,
}

impl Journal {
    /// Empty journal.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Append one accepted update.
    pub fn append(&mut self, update: &Update, rule_id: Option<usize>) {
        let line = encode(update, rule_id);
        self.buf.extend_from_slice(line.as_bytes());
        self.buf.push(b'\n');
    }

    /// The raw journal bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of journaled entries (assumes `buf` holds only valid lines,
    /// which `append` guarantees).
    pub fn len(&self) -> usize {
        self.buf.iter().filter(|&&b| b == b'\n').count()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write the journal to a file (full rewrite; callers appending
    /// incrementally can write `bytes()` deltas themselves). The write is
    /// fsynced — a persisted journal that a crash can lose defeats its
    /// purpose — and the fsync time is traced separately from the write.
    pub fn persist(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::File::create(path)?;
        // Chaos hook: an injected fsync failure that leaves a torn write
        // behind (half the bytes landed before the error) — exactly the
        // on-disk state a crash mid-persist produces, which `parse` must
        // salvage as a valid prefix on reopen.
        if bf4_obs::fault::fire("shim.journal_fsync") {
            let _ = f.write_all(&self.buf[..self.buf.len() / 2]);
            let _ = f.sync_all();
            return Err(std::io::Error::other("injected fault: shim.journal_fsync"));
        }
        f.write_all(&self.buf)?;
        let _sp = bf4_obs::span("shim", "journal_fsync");
        let t0 = std::time::Instant::now();
        f.sync_all()?;
        bf4_obs::hist_record("shim.journal_fsync", t0.elapsed());
        Ok(())
    }

    /// Parse journal bytes, tolerating a truncated or corrupt tail: the
    /// first line that fails its checksum or does not decode ends the
    /// valid prefix, and everything after it is dropped.
    pub fn parse(bytes: &[u8]) -> ParsedJournal {
        let mut entries = Vec::new();
        let mut valid_len = 0usize;
        let mut pos = 0usize;
        let mut truncated = false;
        while pos < bytes.len() {
            let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
                // no terminating newline: the write was cut short
                truncated = true;
                break;
            };
            let line = &bytes[pos..pos + nl];
            match std::str::from_utf8(line).ok().and_then(decode) {
                Some(entry) => {
                    entries.push(entry);
                    pos += nl + 1;
                    valid_len = pos;
                }
                None => {
                    truncated = true;
                    break;
                }
            }
        }
        ParsedJournal {
            entries,
            valid_len,
            truncated,
        }
    }
}

/// What recovery did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// Entries re-applied into the fresh shadow state.
    pub replayed: usize,
    /// Entries skipped as already applied (idempotent replay).
    pub skipped: usize,
    /// Entries whose replay outcome contradicted the journal (rejected
    /// update, or an insert that came back with a different rule id):
    /// the journal does not match the annotations it was replayed under.
    pub mismatched: usize,
    /// A truncated/corrupt journal tail was dropped.
    pub truncated_tail: bool,
}

/// A [`Shim`] that journals every accepted update so it can be rebuilt
/// after a crash.
pub struct JournaledShim {
    shim: Shim,
    journal: Journal,
}

impl JournaledShim {
    /// Fresh shim with an empty journal.
    pub fn new(annotations: &AnnotationFile) -> JournaledShim {
        JournaledShim {
            shim: Shim::new(annotations),
            journal: Journal::new(),
        }
    }

    /// Validate and apply one update; accepted updates are journaled.
    pub fn apply(&mut self, update: &Update) -> Result<Decision, ShimError> {
        let decision = self.shim.apply(update)?;
        {
            let _sp = bf4_obs::span("shim", "journal_append");
            self.journal.append(update, decision.rule_id);
        }
        Ok(decision)
    }

    /// The wrapped shim (read access for digests/exports).
    pub fn shim(&self) -> &Shim {
        &self.shim
    }

    /// The journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Rebuild shadow state from journal bytes after a crash. The
    /// recovered shim keeps the valid journal prefix, so accepting more
    /// updates continues the same journal.
    pub fn recover(
        annotations: &AnnotationFile,
        journal_bytes: &[u8],
    ) -> (JournaledShim, RecoveryReport) {
        let parsed = Journal::parse(journal_bytes);
        let mut shim = Shim::new(annotations);
        let mut report = RecoveryReport {
            truncated_tail: parsed.truncated,
            ..RecoveryReport::default()
        };
        for entry in &parsed.entries {
            // An insert whose recorded id already holds this exact rule
            // (live or tombstoned) was applied before: re-applying it would
            // mint a fresh id — e.g. a doubled journal replaying the insert
            // of a since-deleted rule. Skip it instead.
            if let (Update::Insert { table, rule }, Some(id)) = (&entry.update, entry.rule_id) {
                if shim.stored_rule(table, id) == Some(rule) {
                    report.skipped += 1;
                    continue;
                }
            }
            match shim.apply(&entry.update) {
                Ok(d) => {
                    if d.rule_id == entry.rule_id {
                        report.replayed += 1;
                    } else {
                        report.mismatched += 1;
                    }
                }
                // Already present / already gone: the entry had been
                // applied before the snapshot this journal extends.
                Err(ShimError::Duplicate) | Err(ShimError::NoSuchRule) => report.skipped += 1,
                Err(_) => report.mismatched += 1,
            }
        }
        let journal = Journal {
            buf: journal_bytes[..parsed.valid_len].to_vec(),
        };
        (JournaledShim { shim, journal }, report)
    }
}

// ---------------------------------------------------------------------
// record encoding
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over `bytes` — also used for [`Shim::state_digest`].
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn csv(vals: &[u128]) -> String {
    if vals.is_empty() {
        return "-".into();
    }
    vals.iter()
        .map(|v| format!("{v:x}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_csv(s: &str) -> Option<Vec<u128>> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.split(',').map(|v| u128::from_str_radix(v, 16).ok()).collect()
}

fn encode(update: &Update, rule_id: Option<usize>) -> String {
    let payload = match update {
        Update::Insert { table, rule } => format!(
            "I {table} {} {} {} {} {}",
            rule_id.unwrap_or(usize::MAX),
            rule.action,
            csv(&rule.key_values),
            csv(&rule.key_masks),
            csv(&rule.params),
        ),
        Update::Delete { table, rule_id } => format!("D {table} {rule_id}"),
        Update::SetDefault { table, action } => format!("S {table} {action}"),
    };
    format!("{payload} #{:016x}", fnv1a(payload.as_bytes()))
}

fn decode(line: &str) -> Option<JournalEntry> {
    let (payload, sum) = line.rsplit_once(" #")?;
    let sum = u64::from_str_radix(sum, 16).ok()?;
    if sum != fnv1a(payload.as_bytes()) {
        return None;
    }
    let mut p = payload.split(' ');
    match p.next()? {
        "I" => {
            let table = p.next()?.to_string();
            let id: usize = p.next()?.parse().ok()?;
            let action = p.next()?.to_string();
            let key_values = parse_csv(p.next()?)?;
            let key_masks = parse_csv(p.next()?)?;
            let params = parse_csv(p.next()?)?;
            if p.next().is_some() {
                return None;
            }
            Some(JournalEntry {
                update: Update::Insert {
                    table,
                    rule: RuleUpdate {
                        key_values,
                        key_masks,
                        action,
                        params,
                    },
                },
                rule_id: (id != usize::MAX).then_some(id),
            })
        }
        "D" => {
            let table = p.next()?.to_string();
            let rule_id: usize = p.next()?.parse().ok()?;
            if p.next().is_some() {
                return None;
            }
            Some(JournalEntry {
                update: Update::Delete { table, rule_id },
                rule_id: None,
            })
        }
        "S" => {
            let table = p.next()?.to_string();
            let action = p.next()?.to_string();
            if p.next().is_some() {
                return None;
            }
            Some(JournalEntry {
                update: Update::SetDefault { table, action },
                rule_id: None,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{Controller, WorkloadConfig};
    use bf4_core::driver::{verify, VerifyOptions};

    fn nat_annotations() -> AnnotationFile {
        verify(bf4_core::testutil::NAT_SOURCE, &VerifyOptions::default())
            .unwrap()
            .annotations
    }

    fn workload(annotations: &AnnotationFile, n: usize, seed: u64) -> Vec<Update> {
        Controller::new(
            annotations,
            WorkloadConfig {
                updates: n,
                faulty_fraction: 0.2,
                delete_fraction: 0.2,
                seed,
                ..WorkloadConfig::default()
            },
        )
        .workload()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cases = vec![
            (
                Update::Insert {
                    table: "ingress.nat".into(),
                    rule: RuleUpdate {
                        key_values: vec![1, 0x0a000001],
                        key_masks: vec![u128::MAX, 0xffffffff],
                        action: "nat_hit_int_to_ext".into(),
                        params: vec![0xC0A80001, 7],
                    },
                },
                Some(3),
            ),
            (
                Update::Insert {
                    table: "ingress.t".into(),
                    rule: RuleUpdate {
                        key_values: vec![],
                        key_masks: vec![],
                        action: "a".into(),
                        params: vec![],
                    },
                },
                Some(0),
            ),
            (
                Update::Delete {
                    table: "ingress.nat".into(),
                    rule_id: 12,
                },
                None,
            ),
            (
                Update::SetDefault {
                    table: "ingress.nat".into(),
                    action: "drop_".into(),
                },
                None,
            ),
        ];
        for (u, id) in cases {
            let line = encode(&u, id);
            let back = decode(&line).expect(&line);
            assert_eq!(format!("{:?}", back.update), format!("{u:?}"));
            assert_eq!(back.rule_id, id);
        }
    }

    #[test]
    fn corrupt_line_rejected() {
        let good = encode(
            &Update::Delete {
                table: "a.b".into(),
                rule_id: 1,
            },
            None,
        );
        assert!(decode(&good).is_some());
        let mut bad = good.clone();
        bad.replace_range(0..1, "X");
        assert!(decode(&bad).is_none(), "checksum must catch edits");
        assert!(decode(&good[..good.len() - 3]).is_none());
    }

    #[test]
    fn parse_drops_truncated_tail() {
        let mut j = Journal::new();
        j.append(
            &Update::Delete {
                table: "a.b".into(),
                rule_id: 0,
            },
            None,
        );
        j.append(
            &Update::SetDefault {
                table: "a.b".into(),
                action: "x".into(),
            },
            None,
        );
        let full = j.bytes();
        // cut inside the second line
        let cut = &full[..full.len() - 5];
        let parsed = Journal::parse(cut);
        assert_eq!(parsed.entries.len(), 1);
        assert!(parsed.truncated);
        // the valid prefix is exactly the first line
        let first_line_len = full.iter().position(|&b| b == b'\n').unwrap() + 1;
        assert_eq!(parsed.valid_len, first_line_len);
        let clean = Journal::parse(full);
        assert_eq!(clean.entries.len(), 2);
        assert!(!clean.truncated);
    }

    #[test]
    fn recovery_rebuilds_identical_state_at_every_entry_prefix() {
        let annotations = nat_annotations();
        let mut shim = JournaledShim::new(&annotations);
        // digest after each accepted update, indexed by journal length
        let mut digests = vec![shim.shim().state_digest()];
        for u in workload(&annotations, 200, 11) {
            if shim.apply(&u).is_ok() {
                digests.push(shim.shim().state_digest());
            }
        }
        let bytes = shim.journal().bytes().to_vec();
        assert_eq!(shim.journal().len() + 1, digests.len());
        // newline offsets = crash points right after a flushed entry
        let mut offsets = vec![0usize];
        offsets.extend(
            bytes
                .iter()
                .enumerate()
                .filter(|(_, &b)| b == b'\n')
                .map(|(i, _)| i + 1),
        );
        for (k, &off) in offsets.iter().enumerate() {
            let (rec, report) = JournaledShim::recover(&annotations, &bytes[..off]);
            assert_eq!(
                rec.shim().state_digest(),
                digests[k],
                "prefix of {k} entries must reconstruct the same state"
            );
            assert_eq!(report.replayed, k);
            assert_eq!(report.mismatched, 0);
            assert!(!report.truncated_tail);
        }
    }

    #[test]
    fn recovery_from_mid_line_crash_equals_last_flushed_entry() {
        let annotations = nat_annotations();
        let mut shim = JournaledShim::new(&annotations);
        let mut digests = vec![shim.shim().state_digest()];
        for u in workload(&annotations, 120, 5) {
            if shim.apply(&u).is_ok() {
                digests.push(shim.shim().state_digest());
            }
        }
        let bytes = shim.journal().bytes().to_vec();
        // crash at EVERY byte position: state must equal the digest after
        // the last fully flushed entry
        for cut in 0..=bytes.len() {
            let prefix = &bytes[..cut];
            let flushed = prefix.iter().filter(|&&b| b == b'\n').count();
            let (rec, _) = JournaledShim::recover(&annotations, prefix);
            assert_eq!(
                rec.shim().state_digest(),
                digests[flushed],
                "crash at byte {cut} ({flushed} entries flushed)"
            );
        }
    }

    #[test]
    fn recovered_shim_decides_like_uninterrupted_run() {
        let annotations = nat_annotations();
        let updates = workload(&annotations, 300, 77);
        for crash_at in [0, 1, 37, 150, 299, 300] {
            let mut straight = JournaledShim::new(&annotations);
            let mut crashed = JournaledShim::new(&annotations);
            for u in &updates[..crash_at] {
                let a = straight.apply(u).map(|d| d.rule_id);
                let b = crashed.apply(u).map(|d| d.rule_id);
                assert_eq!(a.is_ok(), b.is_ok());
            }
            let (mut recovered, report) =
                JournaledShim::recover(&annotations, crashed.journal().bytes());
            assert_eq!(report.mismatched, 0);
            assert_eq!(
                recovered.shim().state_digest(),
                straight.shim().state_digest()
            );
            for u in &updates[crash_at..] {
                let a = straight.apply(u).map(|d| d.rule_id);
                let b = recovered.apply(u).map(|d| d.rule_id);
                match (&a, &b) {
                    (Ok(x), Ok(y)) => assert_eq!(x, y),
                    (Err(x), Err(y)) => assert_eq!(x, y),
                    other => panic!("decisions diverge after recovery at {crash_at}: {other:?}"),
                }
            }
            assert_eq!(
                straight.journal().bytes(),
                recovered.journal().bytes(),
                "continued journal must match the uninterrupted one"
            );
        }
    }

    #[test]
    fn replay_is_idempotent() {
        let annotations = nat_annotations();
        let mut shim = JournaledShim::new(&annotations);
        for u in workload(&annotations, 100, 3) {
            let _ = shim.apply(&u);
        }
        // double the journal: second half replays as Duplicate/NoSuchRule
        let mut doubled = shim.journal().bytes().to_vec();
        doubled.extend_from_slice(shim.journal().bytes());
        let (rec, report) = JournaledShim::recover(&annotations, &doubled);
        assert_eq!(rec.shim().state_digest(), shim.shim().state_digest());
        assert_eq!(report.replayed, shim.journal().len());
        assert!(report.skipped > 0);
    }

    #[test]
    fn journal_under_wrong_annotations_reports_mismatch() {
        let annotations = nat_annotations();
        let mut shim = JournaledShim::new(&annotations);
        for u in workload(&annotations, 60, 9) {
            let _ = shim.apply(&u);
        }
        // replaying under empty annotations: every table is unknown
        let (rec, report) = JournaledShim::recover(&AnnotationFile::default(), shim.journal().bytes());
        assert_eq!(report.replayed, 0);
        assert_eq!(report.mismatched, shim.journal().len());
        assert_eq!(rec.shim().table_names().len(), 0);
    }

    #[test]
    fn persist_and_reload() {
        let annotations = nat_annotations();
        let mut shim = JournaledShim::new(&annotations);
        for u in workload(&annotations, 50, 21) {
            let _ = shim.apply(&u);
        }
        let dir = std::env::temp_dir();
        let path = dir.join(format!("bf4-journal-test-{}.log", std::process::id()));
        shim.journal().persist(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let (rec, _) = JournaledShim::recover(&annotations, &bytes);
        assert_eq!(rec.shim().state_digest(), shim.shim().state_digest());
    }
}
