//! Append-only journal of accepted updates with crash recovery.
//!
//! The shim of §4.4 keeps shadow copies of every asserted table; if the
//! shim process dies, the shadow state is gone while the dataplane still
//! holds the accepted rules — every later multi-table check would run
//! against an empty shadow and silently accept violating rules. To make
//! the shim restartable, every *accepted* update is appended to a journal
//! before the decision is returned:
//!
//! * one record per line, self-delimiting, with a per-line FNV-1a
//!   checksum — a crash half-way through a write leaves a truncated or
//!   corrupt tail that parsing detects and drops instead of choking on;
//! * recovery replays the valid prefix into a fresh [`Shim`]. Replay is
//!   idempotent: an insert already present reads back as
//!   [`ShimError::Duplicate`] and a delete of an already-dead rule as
//!   [`ShimError::NoSuchRule`]; both are skipped, so recovering twice (or
//!   from a journal that double-logged an entry) converges to the same
//!   state;
//! * insert records carry the rule id the original run assigned, and
//!   recovery cross-checks that replay reproduces it — a mismatch means
//!   the journal does not match the annotation file it is replayed under
//!   and is reported rather than papered over.
//!
//! The journal is plain bytes ([`Journal::bytes`]); callers persist it
//! wherever they like ([`Journal::persist`] writes it to a file) and hand
//! the bytes back to [`JournaledShim::recover`] after a crash.

use crate::{Decision, RuleUpdate, Shim, ShimError, Update};
use bf4_core::specs::AnnotationFile;

/// One journaled (accepted) update.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEntry {
    /// The accepted update.
    pub update: Update,
    /// Rule id the shim assigned (inserts only).
    pub rule_id: Option<usize>,
}

/// In-memory append-only journal. The byte representation is the journal;
/// persistence is just writing those bytes out.
#[derive(Clone, Debug, Default)]
pub struct Journal {
    buf: Vec<u8>,
}

/// Result of parsing journal bytes.
#[derive(Clone, Debug)]
pub struct ParsedJournal {
    /// Entries of the valid prefix, in append order.
    pub entries: Vec<JournalEntry>,
    /// Bytes of the valid prefix (safe to continue appending to).
    pub valid_len: usize,
    /// Whether a truncated or corrupt tail was dropped.
    pub truncated: bool,
}

impl Journal {
    /// Empty journal.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Append one accepted update.
    pub fn append(&mut self, update: &Update, rule_id: Option<usize>) {
        let line = encode(update, rule_id);
        self.buf.extend_from_slice(line.as_bytes());
        self.buf.push(b'\n');
    }

    /// The raw journal bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of journaled entries (assumes `buf` holds only valid lines,
    /// which `append` guarantees).
    pub fn len(&self) -> usize {
        self.buf.iter().filter(|&&b| b == b'\n').count()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write the journal to a file (full rewrite; callers appending
    /// incrementally can write `bytes()` deltas themselves). The write is
    /// fsynced — a persisted journal that a crash can lose defeats its
    /// purpose — and the fsync time is traced separately from the write.
    pub fn persist(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write;
        // Chaos hook: an injected fsync failure that leaves a torn write
        // behind (half the bytes landed before the error) — exactly the
        // on-disk state a crash mid-persist produces, which `parse` must
        // salvage as a valid prefix on reopen.
        if bf4_obs::fault::fire("shim.journal_fsync") {
            let mut f = std::fs::File::create(path)?;
            let _ = f.write_all(&self.buf[..self.buf.len() / 2]);
            let _ = f.sync_all();
            return Err(std::io::Error::other("injected fault: shim.journal_fsync"));
        }
        persist_bytes(&self.buf, path)
    }

    /// Parse journal bytes, tolerating a truncated or corrupt tail: the
    /// first line that fails its checksum or does not decode ends the
    /// valid prefix, and everything after it is dropped.
    pub fn parse(bytes: &[u8]) -> ParsedJournal {
        let mut entries = Vec::new();
        let mut valid_len = 0usize;
        let mut pos = 0usize;
        let mut truncated = false;
        while pos < bytes.len() {
            let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
                // no terminating newline: the write was cut short
                truncated = true;
                break;
            };
            let line = &bytes[pos..pos + nl];
            match std::str::from_utf8(line).ok().and_then(decode) {
                Some(entry) => {
                    entries.push(entry);
                    pos += nl + 1;
                    valid_len = pos;
                }
                None => {
                    truncated = true;
                    break;
                }
            }
        }
        ParsedJournal {
            entries,
            valid_len,
            truncated,
        }
    }
}

/// What recovery did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// Entries re-applied into the fresh shadow state.
    pub replayed: usize,
    /// Entries skipped as already applied (idempotent replay).
    pub skipped: usize,
    /// Entries whose replay outcome contradicted the journal (rejected
    /// update, or an insert that came back with a different rule id):
    /// the journal does not match the annotations it was replayed under.
    pub mismatched: usize,
    /// A truncated/corrupt journal tail was dropped.
    pub truncated_tail: bool,
}

/// A [`Shim`] that journals every accepted update so it can be rebuilt
/// after a crash.
pub struct JournaledShim {
    shim: Shim,
    journal: Journal,
}

impl JournaledShim {
    /// Fresh shim with an empty journal.
    pub fn new(annotations: &AnnotationFile) -> JournaledShim {
        JournaledShim {
            shim: Shim::new(annotations),
            journal: Journal::new(),
        }
    }

    /// Validate and apply one update; accepted updates are journaled.
    pub fn apply(&mut self, update: &Update) -> Result<Decision, ShimError> {
        let decision = self.shim.apply(update)?;
        {
            let _sp = bf4_obs::span("shim", "journal_append");
            self.journal.append(update, decision.rule_id);
        }
        Ok(decision)
    }

    /// The wrapped shim (read access for digests/exports).
    pub fn shim(&self) -> &Shim {
        &self.shim
    }

    /// The journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Rebuild shadow state from journal bytes after a crash. The
    /// recovered shim keeps the valid journal prefix, so accepting more
    /// updates continues the same journal.
    pub fn recover(
        annotations: &AnnotationFile,
        journal_bytes: &[u8],
    ) -> (JournaledShim, RecoveryReport) {
        let parsed = Journal::parse(journal_bytes);
        let mut shim = Shim::new(annotations);
        let mut report = RecoveryReport {
            truncated_tail: parsed.truncated,
            ..RecoveryReport::default()
        };
        for entry in &parsed.entries {
            // An insert whose recorded id already holds this exact rule
            // (live or tombstoned) was applied before: re-applying it would
            // mint a fresh id — e.g. a doubled journal replaying the insert
            // of a since-deleted rule. Skip it instead.
            if let (Update::Insert { table, rule }, Some(id)) = (&entry.update, entry.rule_id) {
                if shim.stored_rule(table, id) == Some(rule) {
                    report.skipped += 1;
                    continue;
                }
            }
            match shim.apply(&entry.update) {
                Ok(d) => {
                    if d.rule_id == entry.rule_id {
                        report.replayed += 1;
                    } else {
                        report.mismatched += 1;
                    }
                }
                // Already present / already gone: the entry had been
                // applied before the snapshot this journal extends.
                Err(ShimError::Duplicate) | Err(ShimError::NoSuchRule) => report.skipped += 1,
                Err(_) => report.mismatched += 1,
            }
        }
        let journal = Journal {
            buf: journal_bytes[..parsed.valid_len].to_vec(),
        };
        (JournaledShim { shim, journal }, report)
    }
}

// ---------------------------------------------------------------------
// record encoding
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over `bytes` — also used for [`Shim::state_digest`].
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(FNV_OFFSET, bytes)
}

/// Fold more bytes into a running FNV-1a state (streaming frame payloads).
pub(crate) fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Crash-safe full rewrite of `buf` to `path`: write a temp file in the
/// same directory, fsync the file, rename it over the destination, then
/// fsync the containing directory — the rename is not durable on all
/// filesystems until the directory's metadata itself reaches disk.
pub(crate) fn persist_bytes(buf: &[u8], path: &std::path::Path) -> std::io::Result<()> {
    use std::io::Write;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("journal");
    let tmp = dir.join(format!(".{name}.tmp-{}", std::process::id()));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(buf)?;
    {
        let _sp = bf4_obs::span("shim", "journal_fsync");
        let t0 = std::time::Instant::now();
        f.sync_all()?;
        bf4_obs::hist_record("shim.journal_fsync", t0.elapsed());
    }
    std::fs::rename(&tmp, path)?;
    #[cfg(unix)]
    std::fs::File::open(&dir)?.sync_all()?;
    Ok(())
}

fn csv(vals: &[u128]) -> String {
    if vals.is_empty() {
        return "-".into();
    }
    vals.iter()
        .map(|v| format!("{v:x}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_csv(s: &str) -> Option<Vec<u128>> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.split(',').map(|v| u128::from_str_radix(v, 16).ok()).collect()
}

pub(crate) fn encode(update: &Update, rule_id: Option<usize>) -> String {
    let payload = match update {
        Update::Insert { table, rule } => format!(
            "I {table} {} {} {} {} {}",
            rule_id.unwrap_or(usize::MAX),
            rule.action,
            csv(&rule.key_values),
            csv(&rule.key_masks),
            csv(&rule.params),
        ),
        Update::Delete { table, rule_id } => format!("D {table} {rule_id}"),
        Update::SetDefault { table, action } => format!("S {table} {action}"),
    };
    format!("{payload} #{:016x}", fnv1a(payload.as_bytes()))
}

fn decode(line: &str) -> Option<JournalEntry> {
    let (payload, sum) = line.rsplit_once(" #")?;
    let sum = u64::from_str_radix(sum, 16).ok()?;
    if sum != fnv1a(payload.as_bytes()) {
        return None;
    }
    let mut p = payload.split(' ');
    match p.next()? {
        "I" => {
            let table = p.next()?.to_string();
            let id: usize = p.next()?.parse().ok()?;
            let action = p.next()?.to_string();
            let key_values = parse_csv(p.next()?)?;
            let key_masks = parse_csv(p.next()?)?;
            let params = parse_csv(p.next()?)?;
            if p.next().is_some() {
                return None;
            }
            Some(JournalEntry {
                update: Update::Insert {
                    table,
                    rule: RuleUpdate {
                        key_values,
                        key_masks,
                        action,
                        params,
                    },
                },
                rule_id: (id != usize::MAX).then_some(id),
            })
        }
        "D" => {
            let table = p.next()?.to_string();
            let rule_id: usize = p.next()?.parse().ok()?;
            if p.next().is_some() {
                return None;
            }
            Some(JournalEntry {
                update: Update::Delete { table, rule_id },
                rule_id: None,
            })
        }
        "S" => {
            let table = p.next()?.to_string();
            let action = p.next()?.to_string();
            if p.next().is_some() {
                return None;
            }
            Some(JournalEntry {
                update: Update::SetDefault { table, action },
                rule_id: None,
            })
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------
// batch frames (group commit)
// ---------------------------------------------------------------------
//
// A batch frame is the atomic commit unit of the sharded shim:
//
// ```text
// B <seq> <n> #<fnv>          header: sequence number, entry count
// <entry line> × n            the same per-line format as above
// C <seq> <payload_fnv> #<fnv> trailer: seals the payload bytes
// ```
//
// Every line carries the canonical-strict FNV-1a checksum; the trailer
// additionally commits the FNV-1a of the n payload lines (bytes including
// newlines), so a frame is valid only when header, every entry, and the
// trailer all verify *and* the trailer's payload hash matches. Anything
// less — a missing trailer, a short entry list, a corrupt byte — makes
// the whole frame torn: recovery drops it whole, never a split batch.
// Bare entry lines outside a frame are legacy single-update commits
// (what `JournaledShim` and the per-update-fsync baseline write) and
// parse as single-entry frames.

/// One commit unit recovered from journal bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Batch sequence number; `None` for legacy bare-line entries.
    pub seq: Option<u64>,
    /// The committed updates, in apply order.
    pub entries: Vec<JournalEntry>,
}

/// Result of frame-aware parsing.
#[derive(Clone, Debug)]
pub struct ParsedFrames {
    /// Fully committed frames of the valid prefix, in append order.
    pub frames: Vec<Frame>,
    /// Bytes of the valid prefix (ends at the last committed frame).
    pub valid_len: usize,
    /// Whether a torn trailing frame (or corrupt tail) was dropped whole.
    pub torn: bool,
}

/// Encode one batch as a frame (header + entry lines + sealing trailer).
pub(crate) fn encode_frame(seq: u64, entries: &[(Update, Option<usize>)]) -> Vec<u8> {
    let mut payload = Vec::new();
    for (update, rule_id) in entries {
        payload.extend_from_slice(encode(update, *rule_id).as_bytes());
        payload.push(b'\n');
    }
    let header = format!("B {seq} {}", entries.len());
    let trailer = format!("C {seq} {:016x}", fnv1a(&payload));
    let mut out = Vec::new();
    out.extend_from_slice(format!("{header} #{:016x}\n", fnv1a(header.as_bytes())).as_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(format!("{trailer} #{:016x}\n", fnv1a(trailer.as_bytes())).as_bytes());
    out
}

/// Strip and verify the per-line checksum, returning the payload.
fn checked_payload(line: &str) -> Option<&str> {
    let (payload, sum) = line.rsplit_once(" #")?;
    let sum = u64::from_str_radix(sum, 16).ok()?;
    (sum == fnv1a(payload.as_bytes())).then_some(payload)
}

fn decode_frame_header(line: &str) -> Option<(u64, usize)> {
    let payload = checked_payload(line)?;
    let mut p = payload.split(' ');
    if p.next()? != "B" {
        return None;
    }
    let seq = p.next()?.parse().ok()?;
    let n = p.next()?.parse().ok()?;
    if p.next().is_some() {
        return None;
    }
    Some((seq, n))
}

fn decode_frame_trailer(line: &str) -> Option<(u64, u64)> {
    let payload = checked_payload(line)?;
    let mut p = payload.split(' ');
    if p.next()? != "C" {
        return None;
    }
    let seq = p.next()?.parse().ok()?;
    let payload_fnv = u64::from_str_radix(p.next()?, 16).ok()?;
    if p.next().is_some() {
        return None;
    }
    Some((seq, payload_fnv))
}

/// Parse journal bytes into commit units, tolerating a torn tail. Frames
/// commit all-or-nothing: the valid prefix ends at the last frame whose
/// trailer verifies (or last valid bare line), and a torn trailing frame
/// is dropped whole — acknowledged batches are never split by recovery.
pub fn parse_frames(bytes: &[u8]) -> ParsedFrames {
    let mut frames = Vec::new();
    let mut valid_len = 0usize;
    let mut pos = 0usize;
    let mut torn = false;
    'outer: while pos < bytes.len() {
        let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
            torn = true;
            break;
        };
        let Ok(line) = std::str::from_utf8(&bytes[pos..pos + nl]) else {
            torn = true;
            break;
        };
        if let Some((seq, n)) = decode_frame_header(line) {
            let mut fpos = pos + nl + 1;
            let mut entries = Vec::with_capacity(n.min(4096));
            let mut payload_fnv = FNV_OFFSET;
            for _ in 0..n {
                let Some(enl) = bytes[fpos..].iter().position(|&b| b == b'\n') else {
                    torn = true;
                    break 'outer;
                };
                let eline = &bytes[fpos..fpos + enl];
                let Some(entry) = std::str::from_utf8(eline).ok().and_then(decode) else {
                    torn = true;
                    break 'outer;
                };
                payload_fnv = fnv1a_update(payload_fnv, eline);
                payload_fnv = fnv1a_update(payload_fnv, b"\n");
                entries.push(entry);
                fpos += enl + 1;
            }
            let Some(tnl) = bytes[fpos..].iter().position(|&b| b == b'\n') else {
                torn = true;
                break;
            };
            let trailer = std::str::from_utf8(&bytes[fpos..fpos + tnl])
                .ok()
                .and_then(decode_frame_trailer);
            if trailer != Some((seq, payload_fnv)) {
                torn = true;
                break;
            }
            pos = fpos + tnl + 1;
            valid_len = pos;
            frames.push(Frame {
                seq: Some(seq),
                entries,
            });
        } else if let Some(entry) = decode(line) {
            pos += nl + 1;
            valid_len = pos;
            frames.push(Frame {
                seq: None,
                entries: vec![entry],
            });
        } else {
            torn = true;
            break;
        }
    }
    ParsedFrames {
        frames,
        valid_len,
        torn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{Controller, WorkloadConfig};
    use bf4_core::driver::{verify, VerifyOptions};

    fn nat_annotations() -> AnnotationFile {
        verify(bf4_core::testutil::NAT_SOURCE, &VerifyOptions::default())
            .unwrap()
            .annotations
    }

    fn workload(annotations: &AnnotationFile, n: usize, seed: u64) -> Vec<Update> {
        Controller::new(
            annotations,
            WorkloadConfig {
                updates: n,
                faulty_fraction: 0.2,
                delete_fraction: 0.2,
                seed,
                ..WorkloadConfig::default()
            },
        )
        .workload()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cases = vec![
            (
                Update::Insert {
                    table: "ingress.nat".into(),
                    rule: RuleUpdate {
                        key_values: vec![1, 0x0a000001],
                        key_masks: vec![u128::MAX, 0xffffffff],
                        action: "nat_hit_int_to_ext".into(),
                        params: vec![0xC0A80001, 7],
                    },
                },
                Some(3),
            ),
            (
                Update::Insert {
                    table: "ingress.t".into(),
                    rule: RuleUpdate {
                        key_values: vec![],
                        key_masks: vec![],
                        action: "a".into(),
                        params: vec![],
                    },
                },
                Some(0),
            ),
            (
                Update::Delete {
                    table: "ingress.nat".into(),
                    rule_id: 12,
                },
                None,
            ),
            (
                Update::SetDefault {
                    table: "ingress.nat".into(),
                    action: "drop_".into(),
                },
                None,
            ),
        ];
        for (u, id) in cases {
            let line = encode(&u, id);
            let back = decode(&line).expect(&line);
            assert_eq!(format!("{:?}", back.update), format!("{u:?}"));
            assert_eq!(back.rule_id, id);
        }
    }

    #[test]
    fn corrupt_line_rejected() {
        let good = encode(
            &Update::Delete {
                table: "a.b".into(),
                rule_id: 1,
            },
            None,
        );
        assert!(decode(&good).is_some());
        let mut bad = good.clone();
        bad.replace_range(0..1, "X");
        assert!(decode(&bad).is_none(), "checksum must catch edits");
        assert!(decode(&good[..good.len() - 3]).is_none());
    }

    #[test]
    fn parse_drops_truncated_tail() {
        let mut j = Journal::new();
        j.append(
            &Update::Delete {
                table: "a.b".into(),
                rule_id: 0,
            },
            None,
        );
        j.append(
            &Update::SetDefault {
                table: "a.b".into(),
                action: "x".into(),
            },
            None,
        );
        let full = j.bytes();
        // cut inside the second line
        let cut = &full[..full.len() - 5];
        let parsed = Journal::parse(cut);
        assert_eq!(parsed.entries.len(), 1);
        assert!(parsed.truncated);
        // the valid prefix is exactly the first line
        let first_line_len = full.iter().position(|&b| b == b'\n').unwrap() + 1;
        assert_eq!(parsed.valid_len, first_line_len);
        let clean = Journal::parse(full);
        assert_eq!(clean.entries.len(), 2);
        assert!(!clean.truncated);
    }

    #[test]
    fn recovery_rebuilds_identical_state_at_every_entry_prefix() {
        let annotations = nat_annotations();
        let mut shim = JournaledShim::new(&annotations);
        // digest after each accepted update, indexed by journal length
        let mut digests = vec![shim.shim().state_digest()];
        for u in workload(&annotations, 200, 11) {
            if shim.apply(&u).is_ok() {
                digests.push(shim.shim().state_digest());
            }
        }
        let bytes = shim.journal().bytes().to_vec();
        assert_eq!(shim.journal().len() + 1, digests.len());
        // newline offsets = crash points right after a flushed entry
        let mut offsets = vec![0usize];
        offsets.extend(
            bytes
                .iter()
                .enumerate()
                .filter(|(_, &b)| b == b'\n')
                .map(|(i, _)| i + 1),
        );
        for (k, &off) in offsets.iter().enumerate() {
            let (rec, report) = JournaledShim::recover(&annotations, &bytes[..off]);
            assert_eq!(
                rec.shim().state_digest(),
                digests[k],
                "prefix of {k} entries must reconstruct the same state"
            );
            assert_eq!(report.replayed, k);
            assert_eq!(report.mismatched, 0);
            assert!(!report.truncated_tail);
        }
    }

    #[test]
    fn recovery_from_mid_line_crash_equals_last_flushed_entry() {
        let annotations = nat_annotations();
        let mut shim = JournaledShim::new(&annotations);
        let mut digests = vec![shim.shim().state_digest()];
        for u in workload(&annotations, 120, 5) {
            if shim.apply(&u).is_ok() {
                digests.push(shim.shim().state_digest());
            }
        }
        let bytes = shim.journal().bytes().to_vec();
        // crash at EVERY byte position: state must equal the digest after
        // the last fully flushed entry
        for cut in 0..=bytes.len() {
            let prefix = &bytes[..cut];
            let flushed = prefix.iter().filter(|&&b| b == b'\n').count();
            let (rec, _) = JournaledShim::recover(&annotations, prefix);
            assert_eq!(
                rec.shim().state_digest(),
                digests[flushed],
                "crash at byte {cut} ({flushed} entries flushed)"
            );
        }
    }

    #[test]
    fn recovered_shim_decides_like_uninterrupted_run() {
        let annotations = nat_annotations();
        let updates = workload(&annotations, 300, 77);
        for crash_at in [0, 1, 37, 150, 299, 300] {
            let mut straight = JournaledShim::new(&annotations);
            let mut crashed = JournaledShim::new(&annotations);
            for u in &updates[..crash_at] {
                let a = straight.apply(u).map(|d| d.rule_id);
                let b = crashed.apply(u).map(|d| d.rule_id);
                assert_eq!(a.is_ok(), b.is_ok());
            }
            let (mut recovered, report) =
                JournaledShim::recover(&annotations, crashed.journal().bytes());
            assert_eq!(report.mismatched, 0);
            assert_eq!(
                recovered.shim().state_digest(),
                straight.shim().state_digest()
            );
            for u in &updates[crash_at..] {
                let a = straight.apply(u).map(|d| d.rule_id);
                let b = recovered.apply(u).map(|d| d.rule_id);
                match (&a, &b) {
                    (Ok(x), Ok(y)) => assert_eq!(x, y),
                    (Err(x), Err(y)) => assert_eq!(x, y),
                    other => panic!("decisions diverge after recovery at {crash_at}: {other:?}"),
                }
            }
            assert_eq!(
                straight.journal().bytes(),
                recovered.journal().bytes(),
                "continued journal must match the uninterrupted one"
            );
        }
    }

    #[test]
    fn replay_is_idempotent() {
        let annotations = nat_annotations();
        let mut shim = JournaledShim::new(&annotations);
        for u in workload(&annotations, 100, 3) {
            let _ = shim.apply(&u);
        }
        // double the journal: second half replays as Duplicate/NoSuchRule
        let mut doubled = shim.journal().bytes().to_vec();
        doubled.extend_from_slice(shim.journal().bytes());
        let (rec, report) = JournaledShim::recover(&annotations, &doubled);
        assert_eq!(rec.shim().state_digest(), shim.shim().state_digest());
        assert_eq!(report.replayed, shim.journal().len());
        assert!(report.skipped > 0);
    }

    #[test]
    fn journal_under_wrong_annotations_reports_mismatch() {
        let annotations = nat_annotations();
        let mut shim = JournaledShim::new(&annotations);
        for u in workload(&annotations, 60, 9) {
            let _ = shim.apply(&u);
        }
        // replaying under empty annotations: every table is unknown
        let (rec, report) = JournaledShim::recover(&AnnotationFile::default(), shim.journal().bytes());
        assert_eq!(report.replayed, 0);
        assert_eq!(report.mismatched, shim.journal().len());
        assert_eq!(rec.shim().table_names().len(), 0);
    }

    #[test]
    fn persist_and_reload() {
        let annotations = nat_annotations();
        let mut shim = JournaledShim::new(&annotations);
        for u in workload(&annotations, 50, 21) {
            let _ = shim.apply(&u);
        }
        let dir = std::env::temp_dir();
        let path = dir.join(format!("bf4-journal-test-{}.log", std::process::id()));
        shim.journal().persist(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let (rec, _) = JournaledShim::recover(&annotations, &bytes);
        assert_eq!(rec.shim().state_digest(), shim.shim().state_digest());
    }

    #[test]
    fn frames_roundtrip_and_mix_with_bare_lines() {
        let u1 = Update::Delete {
            table: "a.b".into(),
            rule_id: 0,
        };
        let u2 = Update::SetDefault {
            table: "a.b".into(),
            action: "x".into(),
        };
        let mut bytes = encode_frame(7, &[(u1.clone(), None), (u2.clone(), None)]);
        bytes.extend_from_slice(encode(&u1, None).as_bytes());
        bytes.push(b'\n');
        let parsed = parse_frames(&bytes);
        assert!(!parsed.torn);
        assert_eq!(parsed.valid_len, bytes.len());
        assert_eq!(parsed.frames.len(), 2);
        assert_eq!(parsed.frames[0].seq, Some(7));
        assert_eq!(parsed.frames[0].entries.len(), 2);
        assert_eq!(parsed.frames[1].seq, None);
        assert_eq!(parsed.frames[1].entries.len(), 1);
    }

    #[test]
    fn torn_frame_dropped_whole_at_every_cut() {
        let u1 = Update::Delete {
            table: "a.b".into(),
            rule_id: 0,
        };
        let u2 = Update::SetDefault {
            table: "a.b".into(),
            action: "x".into(),
        };
        let mut bytes = encode_frame(1, &[(u1.clone(), None)]);
        let committed = bytes.len();
        bytes.extend_from_slice(&encode_frame(2, &[(u2, None), (u1, None)]));
        // A crash at any byte inside the second frame must drop it whole:
        // never a partial batch, and the first frame stays intact.
        for cut in committed + 1..bytes.len() {
            let p = parse_frames(&bytes[..cut]);
            assert_eq!(p.frames.len(), 1, "cut at {cut}");
            assert_eq!(p.valid_len, committed, "cut at {cut}");
            assert!(p.torn, "cut at {cut}");
        }
        // corrupting any single byte of the second frame also tears it
        let mut evil = bytes.clone();
        evil[committed + 3] ^= 0x40;
        let p = parse_frames(&evil);
        assert_eq!(p.frames.len(), 1);
        assert!(p.torn);
    }
}
