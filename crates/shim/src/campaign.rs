//! Staged-load stress campaign for the sharded shim: warmup → burst →
//! fault-mid-burst → drain, with a crash/reopen check and a group-commit
//! vs per-update-fsync throughput comparison.
//!
//! The campaign is the executable form of the shim's robustness claims:
//!
//! 1. **Zero acknowledged updates lost.** After the fault stage the
//!    campaign "crashes" — it abandons the live shim, reads the journal
//!    file back from disk exactly as a restarting process would (torn
//!    tail and all), and recovers. Every acknowledged batch must be
//!    present and the recovered state digest must equal the live one.
//! 2. **No invalid rule ever admitted.** The recovered shadow state is
//!    audited against every inferred assertion
//!    ([`Shim::audit_violations`](crate::Shim::audit_violations)) — the
//!    ground truth that no schedule of faults, panics, rollbacks, or
//!    recoveries ever let a violating rule through.
//! 3. **Group commit pays.** The same workload is journaled once with one
//!    fsync per batch and once with one fsync per update; batching must
//!    strictly beat the naive baseline.
//!
//! Latency percentiles (p50/p90/p99 upper bounds) come from the shared
//! [`bf4_obs::Histogram`], merged across worker threads per stage; the
//! recorded sample is the end-to-end batch latency including the journal
//! fsync.
//!
//! Fault arming: when a `BF4_FAULTS` plan is already armed (env), the
//! campaign leaves it in place — every stage before drain runs under it,
//! which is strictly harsher. Otherwise [`CampaignConfig::fault_plan`]
//! is installed for the fault stage only. Either way the plan is cleared
//! (and its fire counts collected) before drain, so drain measures clean
//! post-recovery service.

use crate::controller::{Controller, WorkloadConfig};
use crate::shard::{Batch, ShardedShim, ShimConfig};
use crate::stats::{from_histogram, LatencyStats};
use crate::ShimError;
use bf4_core::specs::AnnotationFile;
use bf4_obs::Histogram;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Shards of the shadow-table pool.
    pub shards: usize,
    /// Worker threads in the burst/fault/drain stages.
    pub threads: usize,
    /// Updates per batch.
    pub batch_size: usize,
    /// Updates in the single-threaded warmup stage.
    pub warmup: usize,
    /// Updates in the clean burst stage.
    pub burst: usize,
    /// Updates in the fault-mid-burst stage.
    pub fault: usize,
    /// Updates in the post-recovery drain stage.
    pub drain: usize,
    /// Updates in the throughput comparison (each mode).
    pub throughput_updates: usize,
    /// Workload seed.
    pub seed: u64,
    /// Fraction of generated rules violating an inferred assertion.
    pub faulty_fraction: f64,
    /// Admission bound (in-flight batches).
    pub max_inflight: usize,
    /// Directory for journal files.
    pub dir: PathBuf,
    /// `BF4_FAULTS`-syntax plan for the fault stage, installed only when
    /// no ambient plan is already armed.
    pub fault_plan: Option<String>,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            shards: 4,
            threads: 4,
            batch_size: 8,
            warmup: 160,
            burst: 480,
            fault: 480,
            drain: 240,
            throughput_updates: 320,
            seed: 0xbf4,
            faulty_fraction: 0.06,
            max_inflight: 32,
            dir: std::env::temp_dir(),
            fault_plan: Some(
                "seed=9,shim.batch_torn=%7,shim.shard_poison=%11,shim.overload=%13".into(),
            ),
        }
    }
}

/// Per-stage outcome counters and latency percentiles.
#[derive(Clone, Debug, Default)]
pub struct StageStats {
    /// Stage name (`warmup`/`burst`/`fault`/`drain`).
    pub name: String,
    /// Batches offered.
    pub batches: usize,
    /// Batches acknowledged (durable in the journal).
    pub acked: usize,
    /// Batches rejected by validation.
    pub rejected: usize,
    /// Batches shed by admission control / overload faults.
    pub shed: usize,
    /// Batches rolled back on journal write/fsync failure.
    pub journal_failed: usize,
    /// Batches rolled back after an injected shard panic.
    pub poisoned: usize,
    /// Updates inside acknowledged batches.
    pub updates_acked: usize,
    /// Batch-apply latency (includes the group-commit fsync).
    pub latency: LatencyStats,
}

/// Crash/reopen bookkeeping.
#[derive(Clone, Debug, Default)]
pub struct RecoveryCheck {
    /// Batches acknowledged before the crash.
    pub acked_batches: u64,
    /// Frames recovered from the on-disk journal.
    pub recovered_frames: usize,
    /// Acknowledged batches missing after recovery (must be 0).
    pub acked_lost: u64,
    /// Replay contradictions (must be 0).
    pub mismatched: usize,
    /// Live digest == recovered digest.
    pub digest_match: bool,
    /// A torn trailing frame (never-acknowledged batch) was dropped.
    pub torn_tail: bool,
}

/// Post-recovery assertion audit.
#[derive(Clone, Debug, Default)]
pub struct AuditCheck {
    /// Live rules violating an inferred assertion (must be 0).
    pub invalid_admitted: usize,
    /// Live rules audited.
    pub live_rules: usize,
}

/// Group-commit vs per-update-fsync comparison.
#[derive(Clone, Debug, Default)]
pub struct ThroughputCheck {
    /// Updates applied per mode.
    pub updates: usize,
    /// Acknowledged updates/second with one fsync per batch.
    pub group_commit_ups: f64,
    /// Acknowledged updates/second with one fsync per update.
    pub per_update_fsync_ups: f64,
    /// `group_commit_ups / per_update_fsync_ups` (gate: > 1).
    pub speedup: f64,
    /// fsyncs issued in group-commit mode.
    pub group_fsyncs: u64,
    /// fsyncs issued in per-update mode.
    pub per_update_fsyncs: u64,
    /// Appends that shared a batch fsync in group-commit mode.
    pub fsync_amortized: u64,
}

/// Full campaign outcome.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Shards used.
    pub shards: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Updates per batch.
    pub batch_size: usize,
    /// Per-stage stats, in execution order.
    pub stages: Vec<StageStats>,
    /// Fault-plan trigger evaluations during the campaign.
    pub fault_hits: u64,
    /// Faults actually fired during the campaign.
    pub fault_fires: u64,
    /// Whether any fault plan was armed for the fault stage.
    pub faults_armed: bool,
    /// Crash/reopen results.
    pub recovery: RecoveryCheck,
    /// Assertion audit of the recovered state.
    pub audit: AuditCheck,
    /// Group-commit vs per-update fsync.
    pub throughput: ThroughputCheck,
}

impl CampaignReport {
    /// Gate violations; empty means the campaign passed.
    pub fn gate_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.recovery.acked_lost > 0 {
            v.push(format!(
                "{} acknowledged batches lost across crash/reopen",
                self.recovery.acked_lost
            ));
        }
        if self.recovery.mismatched > 0 {
            v.push(format!(
                "{} journal entries contradicted replay",
                self.recovery.mismatched
            ));
        }
        if !self.recovery.digest_match {
            v.push("recovered state digest differs from live state".into());
        }
        if self.audit.invalid_admitted > 0 {
            v.push(format!(
                "{} invalid rules admitted to the shadow state",
                self.audit.invalid_admitted
            ));
        }
        if self.throughput.speedup <= 1.0 {
            v.push(format!(
                "group commit does not beat per-update fsync (speedup {:.2})",
                self.throughput.speedup
            ));
        }
        if self.faults_armed && self.fault_fires == 0 {
            v.push("fault plan armed but nothing fired; campaign proved nothing".into());
        }
        v
    }

    /// Render the per-stage table and gate summary for terminals.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "shim campaign: {} shards, {} threads, batch={} ",
            self.shards, self.threads, self.batch_size
        );
        let _ = writeln!(
            out,
            "{:<8} {:>7} {:>7} {:>8} {:>5} {:>8} {:>8} {:>10} {:>10} {:>10}",
            "stage", "batches", "acked", "rejected", "shed", "jfail", "poison", "p50", "p90", "p99"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<8} {:>7} {:>7} {:>8} {:>5} {:>8} {:>8} {:>10?} {:>10?} {:>10?}",
                s.name,
                s.batches,
                s.acked,
                s.rejected,
                s.shed,
                s.journal_failed,
                s.poisoned,
                s.latency.p50,
                s.latency.p90,
                s.latency.p99
            );
        }
        let _ = writeln!(
            out,
            "faults: {} fired / {} hits{}",
            self.fault_fires,
            self.fault_hits,
            if self.faults_armed { "" } else { " (not armed)" }
        );
        let _ = writeln!(
            out,
            "recovery: {} acked batches, {} frames recovered, {} lost, {} mismatched, digest {}{}",
            self.recovery.acked_batches,
            self.recovery.recovered_frames,
            self.recovery.acked_lost,
            self.recovery.mismatched,
            if self.recovery.digest_match { "match" } else { "MISMATCH" },
            if self.recovery.torn_tail {
                ", torn tail dropped whole"
            } else {
                ""
            }
        );
        let _ = writeln!(
            out,
            "audit: {} invalid admitted over {} live rules",
            self.audit.invalid_admitted, self.audit.live_rules
        );
        let _ = writeln!(
            out,
            "throughput: group-commit {:.0} ups vs per-update-fsync {:.0} ups ({:.2}x, {} vs {} fsyncs, {} amortized)",
            self.throughput.group_commit_ups,
            self.throughput.per_update_fsync_ups,
            self.throughput.speedup,
            self.throughput.group_fsyncs,
            self.throughput.per_update_fsyncs,
            self.throughput.fsync_amortized
        );
        out
    }

    /// Serialize as `BENCH_shim.json` (the `"bench": "shim"` schema
    /// consumed by `report regress`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"shim\",");
        let _ = writeln!(
            out,
            "  \"config\": {{\"shards\": {}, \"threads\": {}, \"batch_size\": {}}},",
            self.shards, self.threads, self.batch_size
        );
        let _ = writeln!(out, "  \"stages\": {{");
        for (i, s) in self.stages.iter().enumerate() {
            let comma = if i + 1 < self.stages.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    \"{}\": {{\"batches\": {}, \"acked\": {}, \"rejected\": {}, \"shed\": {}, \"journal_failed\": {}, \"poisoned\": {}, \"updates_acked\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}}}{comma}",
                s.name,
                s.batches,
                s.acked,
                s.rejected,
                s.shed,
                s.journal_failed,
                s.poisoned,
                s.updates_acked,
                s.latency.p50.as_micros(),
                s.latency.p90.as_micros(),
                s.latency.p99.as_micros(),
                s.latency.max.as_micros(),
            );
        }
        let _ = writeln!(out, "  }},");
        let _ = writeln!(
            out,
            "  \"faults\": {{\"armed\": {}, \"hits\": {}, \"fires\": {}}},",
            u8::from(self.faults_armed),
            self.fault_hits,
            self.fault_fires
        );
        let _ = writeln!(
            out,
            "  \"recovery\": {{\"acked_batches\": {}, \"recovered_frames\": {}, \"acked_lost\": {}, \"mismatched\": {}, \"digest_match\": {}, \"torn_tail\": {}}},",
            self.recovery.acked_batches,
            self.recovery.recovered_frames,
            self.recovery.acked_lost,
            self.recovery.mismatched,
            u8::from(self.recovery.digest_match),
            u8::from(self.recovery.torn_tail)
        );
        let _ = writeln!(
            out,
            "  \"audit\": {{\"invalid_admitted\": {}, \"live_rules\": {}}},",
            self.audit.invalid_admitted, self.audit.live_rules
        );
        let _ = writeln!(
            out,
            "  \"throughput\": {{\"updates\": {}, \"group_commit_ups\": {:.1}, \"per_update_fsync_ups\": {:.1}, \"speedup\": {:.3}, \"group_fsyncs\": {}, \"per_update_fsyncs\": {}, \"fsync_amortized\": {}}}",
            self.throughput.updates,
            self.throughput.group_commit_ups,
            self.throughput.per_update_fsync_ups,
            self.throughput.speedup,
            self.throughput.group_fsyncs,
            self.throughput.per_update_fsyncs,
            self.throughput.fsync_amortized
        );
        let _ = writeln!(out, "}}");
        out
    }
}

/// Chunk a workload into batches.
pub fn chunk(updates: Vec<crate::Update>, batch_size: usize) -> Vec<Batch> {
    let bs = batch_size.max(1);
    let mut out = Vec::with_capacity(updates.len().div_ceil(bs));
    let mut it = updates.into_iter().peekable();
    while it.peek().is_some() {
        out.push(Batch {
            updates: it.by_ref().take(bs).collect(),
        });
    }
    out
}

/// Run one stage: `threads` workers pull batches from a shared cursor.
/// Public so `bf4 controller` can drive ad-hoc batched loads through the
/// same worker pool the campaign uses.
pub fn run_stage(shim: &ShardedShim, name: &str, batches: &[Batch], threads: usize) -> StageStats {
    let cursor = AtomicUsize::new(0);
    let worker = || {
        let mut local = StageStats::default();
        let mut hist = Histogram::default();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(batch) = batches.get(i) else {
                break;
            };
            let t0 = Instant::now();
            match shim.apply_batch(batch) {
                Ok(d) => {
                    local.acked += 1;
                    local.updates_acked += batch.updates.len();
                    hist.record(d.latency);
                }
                Err(r) => {
                    hist.record(t0.elapsed());
                    match r.error {
                        ShimError::Overloaded { .. } => local.shed += 1,
                        ShimError::JournalFailed(_) => local.journal_failed += 1,
                        ShimError::ShardPoisoned { .. } => local.poisoned += 1,
                        _ => local.rejected += 1,
                    }
                }
            }
        }
        (local, hist)
    };
    let mut merged = StageStats {
        name: name.to_string(),
        batches: batches.len(),
        ..StageStats::default()
    };
    let mut hist = Histogram::default();
    if threads <= 1 {
        let (local, h) = worker();
        merge_stage(&mut merged, &local);
        hist.merge(&h);
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads).map(|_| s.spawn(worker)).collect();
            for h in handles {
                let (local, lh) = h.join().expect("stage worker panicked");
                merge_stage(&mut merged, &local);
                hist.merge(&lh);
            }
        });
    }
    merged.latency = from_histogram(&hist);
    merged
}

fn merge_stage(into: &mut StageStats, from: &StageStats) {
    into.acked += from.acked;
    into.rejected += from.rejected;
    into.shed += from.shed;
    into.journal_failed += from.journal_failed;
    into.poisoned += from.poisoned;
    into.updates_acked += from.updates_acked;
}

/// Run the full campaign. See the module docs for the staging and gates.
pub fn run_campaign(
    annotations: &AnnotationFile,
    config: &CampaignConfig,
) -> std::io::Result<CampaignReport> {
    let journal_path = config
        .dir
        .join(format!("bf4-shim-campaign-{}.journal", std::process::id()));
    let shim_config = ShimConfig {
        shards: config.shards,
        max_inflight: config.max_inflight,
        journal_path: Some(journal_path.clone()),
        fsync_per_update: false,
    };
    let shim = ShardedShim::new(annotations, &shim_config)?;

    let total = config.warmup + config.burst + config.fault + config.drain;
    let workload = Controller::new(
        annotations,
        WorkloadConfig {
            updates: total,
            faulty_fraction: config.faulty_fraction,
            delete_fraction: 0.05,
            seed: config.seed,
            ..WorkloadConfig::default()
        },
    )
    .workload();
    let mut batches = chunk(workload, config.batch_size);
    let nb = |updates: usize| updates.div_ceil(config.batch_size.max(1));
    let take = |batches: &mut Vec<Batch>, n: usize| -> Vec<Batch> {
        let n = n.min(batches.len());
        batches.drain(..n).collect()
    };
    let warmup_b = take(&mut batches, nb(config.warmup));
    let burst_b = take(&mut batches, nb(config.burst));
    let fault_b = take(&mut batches, nb(config.fault));
    let drain_b = std::mem::take(&mut batches);

    let mut report = CampaignReport {
        shards: shim.shard_count(),
        threads: config.threads,
        batch_size: config.batch_size,
        ..CampaignReport::default()
    };

    // warmup (single-threaded) then clean burst.
    report
        .stages
        .push(run_stage(&shim, "warmup", &warmup_b, 1));
    report
        .stages
        .push(run_stage(&shim, "burst", &burst_b, config.threads));

    // fault-mid-burst: arm the configured plan unless one is already
    // ambient (BF4_FAULTS from the environment), which is harsher.
    let ambient = bf4_obs::fault::active();
    if !ambient {
        if let Some(spec) = &config.fault_plan {
            let plan = bf4_obs::FaultPlan::parse(spec)
                .map_err(|e| std::io::Error::other(format!("bad fault plan: {e}")))?;
            bf4_obs::fault::install(plan);
        }
    }
    report.faults_armed = bf4_obs::fault::active();
    report
        .stages
        .push(run_stage(&shim, "fault", &fault_b, config.threads));
    let sites = bf4_obs::fault::clear();
    report.fault_hits = sites.iter().map(|s| s.hits).sum();
    report.fault_fires = sites.iter().map(|s| s.fires).sum();

    // Crash: abandon the live shim, read the journal back from disk as a
    // restarting process would, and recover.
    let stats_at_crash = shim.stats();
    let live_digest = shim.state_digest();
    let disk_bytes = std::fs::read(&journal_path)?;
    let (recovered, rec) = ShardedShim::recover(annotations, &disk_bytes, &shim_config)?;
    report.recovery = RecoveryCheck {
        acked_batches: stats_at_crash.batches_acked,
        recovered_frames: rec.frames,
        acked_lost: stats_at_crash.batches_acked.saturating_sub(rec.frames as u64),
        mismatched: rec.mismatched,
        digest_match: recovered.state_digest() == live_digest,
        torn_tail: rec.torn_tail,
    };
    drop(shim);

    // drain: clean post-recovery service on the recovered shim.
    report
        .stages
        .push(run_stage(&recovered, "drain", &drain_b, config.threads));

    // Audit the final shadow state against every inferred assertion.
    let violations = recovered.audit_violations();
    let snapshot = recovered.snapshot();
    let live_rules: usize = snapshot
        .table_names()
        .iter()
        .map(|t| snapshot.shadow_size(t))
        .sum();
    report.audit = AuditCheck {
        invalid_admitted: violations.len(),
        live_rules,
    };

    // Throughput comparison: identical benign workload, group commit vs
    // per-update fsync, single-threaded for a like-for-like measurement.
    report.throughput = run_throughput(annotations, config)?;

    let _ = std::fs::remove_file(&journal_path);
    Ok(report)
}

fn run_throughput(
    annotations: &AnnotationFile,
    config: &CampaignConfig,
) -> std::io::Result<ThroughputCheck> {
    let workload = Controller::new(
        annotations,
        WorkloadConfig {
            updates: config.throughput_updates,
            faulty_fraction: 0.0,
            delete_fraction: 0.0,
            seed: config.seed.wrapping_add(1),
            ..WorkloadConfig::default()
        },
    )
    .workload();
    let batches = chunk(workload, config.batch_size);
    let run_mode = |tag: &str, fsync_per_update: bool| -> std::io::Result<(f64, u64, u64)> {
        let path = config.dir.join(format!(
            "bf4-shim-throughput-{tag}-{}.journal",
            std::process::id()
        ));
        let shim = ShardedShim::new(
            annotations,
            &ShimConfig {
                shards: config.shards,
                max_inflight: usize::MAX,
                journal_path: Some(path.clone()),
                fsync_per_update,
            },
        )?;
        let t0 = Instant::now();
        for b in &batches {
            let _ = shim.apply_batch(b);
        }
        let wall = t0.elapsed();
        let stats = shim.stats();
        let _ = std::fs::remove_file(&path);
        let ups = stats.updates_acked as f64 / wall.as_secs_f64().max(1e-9);
        Ok((ups, stats.fsyncs, stats.fsync_amortized))
    };
    let (per_update_fsync_ups, per_update_fsyncs, _) = run_mode("perupdate", true)?;
    let (group_commit_ups, group_fsyncs, fsync_amortized) = run_mode("group", false)?;
    Ok(ThroughputCheck {
        updates: config.throughput_updates,
        group_commit_ups,
        per_update_fsync_ups,
        speedup: group_commit_ups / per_update_fsync_ups.max(1e-9),
        group_fsyncs,
        per_update_fsyncs,
        fsync_amortized,
    })
}
