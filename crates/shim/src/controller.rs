//! A simulated ONOS-like controller generating dataplane-update workloads.
//!
//! Stands in for the paper's "production traces containing 2000 updates to
//! the dataplane" (§5.3): a seeded generator produces a stream of
//! P4Runtime-style updates across the asserted tables, with a configurable
//! fraction of *faulty* rules (rules that violate an inferred annotation,
//! e.g. the §2.1 invalid-validity/non-zero-mask combination) so benchmarks
//! exercise both the accept and the reject paths.

use crate::{RuleUpdate, Update};
use bf4_core::specs::{AnnotationFile, TableDescriptor};
use bf4_smt::Sort;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Workload configuration.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of updates to generate.
    pub updates: usize,
    /// Probability of intentionally generating a faulty rule
    /// (`0.0..=1.0`).
    pub faulty_fraction: f64,
    /// Probability of a delete (of a previously issued insert).
    pub delete_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            updates: 2000,
            faulty_fraction: 0.1,
            delete_fraction: 0.1,
            seed: 0xbf4,
        }
    }
}

/// The simulated controller.
pub struct Controller {
    tables: Vec<TableDescriptor>,
    rng: StdRng,
    config: WorkloadConfig,
    issued: Vec<(String, usize)>,
    next_id: usize,
    counter: u64,
}

impl Controller {
    /// Build a controller over the tables of an annotation file.
    pub fn new(annotations: &AnnotationFile, config: WorkloadConfig) -> Controller {
        Controller {
            tables: annotations.tables.clone(),
            rng: StdRng::seed_from_u64(config.seed),
            config,
            issued: Vec::new(),
            next_id: 0,
            counter: 0,
        }
    }

    /// Generate the full workload.
    pub fn workload(&mut self) -> Vec<Update> {
        (0..self.config.updates).map(|_| self.next_update()).collect()
    }

    /// Generate one update.
    pub fn next_update(&mut self) -> Update {
        if !self.issued.is_empty() && self.rng.random::<f64>() < self.config.delete_fraction {
            let i = (self.rng.random::<u64>() as usize) % self.issued.len();
            let (table, rule_id) = self.issued.swap_remove(i);
            return Update::Delete { table, rule_id };
        }
        let ti = (self.rng.random::<u64>() as usize) % self.tables.len().max(1);
        let desc = self.tables[ti].clone();
        let faulty = self.rng.random::<f64>() < self.config.faulty_fraction;
        let rule = self.generate_rule(&desc, faulty);
        let table = desc.qualified();
        // Track for possible deletion (assume acceptance; the driver of the
        // workload records real ids).
        self.issued.push((table.clone(), self.next_id));
        self.next_id += 1;
        Update::Insert { table, rule }
    }

    /// Generate a rule; when `faulty`, zero out every validity key while
    /// keeping masks non-zero — the §2.1 bug pattern the annotations block.
    fn generate_rule(&mut self, desc: &TableDescriptor, faulty: bool) -> RuleUpdate {
        self.counter += 1;
        let mut key_values = Vec::new();
        let mut key_masks = Vec::new();
        for k in &desc.keys {
            let w = match k.sort {
                Sort::Bool => 1,
                Sort::Bv(w) => w,
            };
            let maxval = if w >= 128 { u128::MAX } else { (1u128 << w) - 1 };
            let is_validity = k.source.ends_with(".isValid()");
            let value = if is_validity {
                u128::from(!faulty)
            } else {
                // unique-ish values keep duplicates rare
                (self.counter as u128 * 0x9e3779b97f4a7c15) & maxval
            };
            let mask = match k.match_kind.as_str() {
                "exact" | "selector" => maxval,
                "range" => maxval, // hi = max: match-everything range
                _ => {
                    if faulty {
                        maxval // non-zero mask: reads the (invalid) field
                    } else if self.rng.random::<bool>() {
                        0
                    } else {
                        maxval
                    }
                }
            };
            key_values.push(value);
            key_masks.push(mask);
        }
        let ai = (self.rng.random::<u64>() as usize) % desc.actions.len().max(1);
        let action = desc.actions[ai].clone();
        let params = (0..action.num_params)
            .map(|_| self.rng.random::<u64>() as u128)
            .collect();
        RuleUpdate {
            key_values,
            key_masks,
            action: action.name,
            params,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shim;
    use bf4_core::driver::{verify, VerifyOptions};

    #[test]
    fn workload_is_deterministic_per_seed() {
        let report =
            verify(bf4_core::testutil::NAT_SOURCE, &VerifyOptions::default()).unwrap();
        let mk = || {
            Controller::new(
                &report.annotations,
                WorkloadConfig {
                    updates: 50,
                    ..WorkloadConfig::default()
                },
            )
            .workload()
        };
        let (a, b) = (mk(), mk());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn faulty_rules_get_rejected_benign_mostly_accepted() {
        let report =
            verify(bf4_core::testutil::NAT_SOURCE, &VerifyOptions::default()).unwrap();
        let mut shim = Shim::new(&report.annotations);
        let mut ctrl = Controller::new(
            &report.annotations,
            WorkloadConfig {
                updates: 300,
                faulty_fraction: 0.3,
                delete_fraction: 0.0,
                seed: 7,
            },
        );
        let mut accepted = 0;
        let mut rejected = 0;
        for u in ctrl.workload() {
            match shim.apply(&u) {
                Ok(_) => accepted += 1,
                Err(crate::ShimError::AssertionViolated { .. }) => rejected += 1,
                Err(crate::ShimError::Duplicate) => {}
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(accepted > 0, "no update accepted");
        assert!(rejected > 0, "no faulty update rejected");
    }
}
