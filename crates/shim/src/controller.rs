//! A simulated ONOS-like controller generating dataplane-update workloads.
//!
//! Stands in for the paper's "production traces containing 2000 updates to
//! the dataplane" (§5.3): a seeded generator produces a stream of
//! P4Runtime-style updates across the asserted tables, with a configurable
//! fraction of *faulty* rules (rules that violate an inferred annotation,
//! e.g. the §2.1 invalid-validity/non-zero-mask combination) so benchmarks
//! exercise both the accept and the reject paths.
//!
//! A [`FaultInjection`] config extends the workload with the *other* ways
//! a controller can misbehave — malformed arities, unknown tables and
//! actions, duplicate inserts, deletes of ids that were never granted,
//! unsafe default rules — so robustness tests can drive every
//! [`ShimError`](crate::ShimError) path from one seeded stream.

use crate::{RuleUpdate, Update};
use bf4_core::specs::{AnnotationFile, TableDescriptor};
use bf4_smt::Sort;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Per-fault probabilities of the fault-injection mode. All zero (the
/// default) disables injection; each field is the chance that one update
/// is replaced by the corresponding fault.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultInjection {
    /// Insert with a wrong key or parameter arity (`ShimError::Malformed`).
    pub malformed: f64,
    /// Insert naming a nonexistent action (`ShimError::UnknownAction`).
    pub unknown_action: f64,
    /// Update targeting a nonexistent table (`ShimError::UnknownTable`).
    pub unknown_table: f64,
    /// Verbatim re-insert of an earlier rule (`ShimError::Duplicate`).
    pub duplicate: f64,
    /// Delete of a rule id that was never granted (`ShimError::NoSuchRule`).
    pub unknown_delete: f64,
    /// Default-rule request for a bug-flagged action
    /// (`ShimError::UnsafeDefault`); needs `unsafe_defaults` annotations.
    pub unsafe_default: f64,
}

impl FaultInjection {
    /// Every fault at the same probability `p`.
    pub fn all(p: f64) -> FaultInjection {
        FaultInjection {
            malformed: p,
            unknown_action: p,
            unknown_table: p,
            duplicate: p,
            unknown_delete: p,
            unsafe_default: p,
        }
    }
}

/// Workload configuration.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of updates to generate.
    pub updates: usize,
    /// Probability of intentionally generating a faulty rule
    /// (`0.0..=1.0`).
    pub faulty_fraction: f64,
    /// Probability of a delete (of a previously issued insert).
    pub delete_fraction: f64,
    /// RNG seed.
    pub seed: u64,
    /// Fault-injection probabilities (all zero by default).
    pub faults: FaultInjection,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            updates: 2000,
            faulty_fraction: 0.1,
            delete_fraction: 0.1,
            seed: 0xbf4,
            faults: FaultInjection::default(),
        }
    }
}

/// The simulated controller.
pub struct Controller {
    tables: Vec<TableDescriptor>,
    unsafe_defaults: Vec<(String, String)>,
    rng: StdRng,
    config: WorkloadConfig,
    issued: Vec<(String, usize)>,
    /// Recently issued benign inserts, replayed by the duplicate fault.
    recent: Vec<(String, RuleUpdate)>,
    next_id: usize,
    counter: u64,
}

impl Controller {
    /// Build a controller over the tables of an annotation file.
    pub fn new(annotations: &AnnotationFile, config: WorkloadConfig) -> Controller {
        Controller {
            tables: annotations.tables.clone(),
            unsafe_defaults: annotations.unsafe_defaults.clone(),
            rng: StdRng::seed_from_u64(config.seed),
            config,
            issued: Vec::new(),
            recent: Vec::new(),
            next_id: 0,
            counter: 0,
        }
    }

    /// Generate the full workload.
    pub fn workload(&mut self) -> Vec<Update> {
        (0..self.config.updates).map(|_| self.next_update()).collect()
    }

    /// Generate one update.
    pub fn next_update(&mut self) -> Update {
        if let Some(fault) = self.maybe_fault() {
            return fault;
        }
        if !self.issued.is_empty() && self.rng.random::<f64>() < self.config.delete_fraction {
            let i = (self.rng.random::<u64>() as usize) % self.issued.len();
            let (table, rule_id) = self.issued.swap_remove(i);
            return Update::Delete { table, rule_id };
        }
        let ti = (self.rng.random::<u64>() as usize) % self.tables.len().max(1);
        let desc = self.tables[ti].clone();
        let faulty = self.rng.random::<f64>() < self.config.faulty_fraction;
        let rule = self.generate_rule(&desc, faulty);
        let table = desc.qualified();
        // Track for possible deletion (assume acceptance; the driver of the
        // workload records real ids).
        self.issued.push((table.clone(), self.next_id));
        self.next_id += 1;
        if !faulty {
            if self.recent.len() >= 64 {
                self.recent.remove(0);
            }
            self.recent.push((table.clone(), rule.clone()));
        }
        Update::Insert { table, rule }
    }

    /// Roll the fault dice; `Some` replaces this slot with an injected
    /// fault. Faults that need prior state (duplicates) or annotations
    /// (unsafe defaults) fall through to a normal update when unavailable.
    fn maybe_fault(&mut self) -> Option<Update> {
        let f = self.config.faults.clone();
        let roll = self.rng.random::<f64>();
        let mut acc = 0.0;
        let mut hit = |p: f64| {
            acc += p;
            roll < acc
        };
        if hit(f.malformed) {
            let desc = self.pick_table()?;
            let mut rule = self.generate_rule(&desc, false);
            // drop a key or append a bogus parameter, whichever exists
            if !rule.key_values.is_empty() && self.rng.random::<bool>() {
                rule.key_values.pop();
                rule.key_masks.pop();
            } else {
                rule.params.push(0xdead);
            }
            return Some(Update::Insert {
                table: desc.qualified(),
                rule,
            });
        }
        if hit(f.unknown_action) {
            let desc = self.pick_table()?;
            let mut rule = self.generate_rule(&desc, false);
            rule.action = "ghost_action".into();
            rule.params.clear();
            return Some(Update::Insert {
                table: desc.qualified(),
                rule,
            });
        }
        if hit(f.unknown_table) {
            return Some(Update::Insert {
                table: "nowhere.ghost".into(),
                rule: RuleUpdate {
                    key_values: vec![],
                    key_masks: vec![],
                    action: "noop".into(),
                    params: vec![],
                },
            });
        }
        if hit(f.duplicate) {
            if let Some((table, rule)) = self.recent.last().cloned() {
                return Some(Update::Insert { table, rule });
            }
        }
        if hit(f.unknown_delete) {
            let desc = self.pick_table()?;
            return Some(Update::Delete {
                table: desc.qualified(),
                rule_id: usize::MAX / 2,
            });
        }
        if hit(f.unsafe_default) {
            if let Some((table, action)) = self.unsafe_defaults.first().cloned() {
                return Some(Update::SetDefault { table, action });
            }
        }
        None
    }

    fn pick_table(&mut self) -> Option<TableDescriptor> {
        if self.tables.is_empty() {
            return None;
        }
        let ti = (self.rng.random::<u64>() as usize) % self.tables.len();
        Some(self.tables[ti].clone())
    }

    /// Generate a rule; when `faulty`, zero out every validity key while
    /// keeping masks non-zero — the §2.1 bug pattern the annotations block.
    fn generate_rule(&mut self, desc: &TableDescriptor, faulty: bool) -> RuleUpdate {
        self.counter += 1;
        let mut key_values = Vec::new();
        let mut key_masks = Vec::new();
        for k in &desc.keys {
            let w = match k.sort {
                Sort::Bool => 1,
                Sort::Bv(w) => w,
            };
            let maxval = if w >= 128 { u128::MAX } else { (1u128 << w) - 1 };
            let is_validity = k.source.ends_with(".isValid()");
            let value = if is_validity {
                u128::from(!faulty)
            } else {
                // unique-ish values keep duplicates rare
                (self.counter as u128 * 0x9e3779b97f4a7c15) & maxval
            };
            let mask = match k.match_kind.as_str() {
                "exact" | "selector" => maxval,
                "range" => maxval, // hi = max: match-everything range
                _ => {
                    if faulty {
                        maxval // non-zero mask: reads the (invalid) field
                    } else if self.rng.random::<bool>() {
                        0
                    } else {
                        maxval
                    }
                }
            };
            key_values.push(value);
            key_masks.push(mask);
        }
        let ai = (self.rng.random::<u64>() as usize) % desc.actions.len().max(1);
        let action = desc.actions[ai].clone();
        let params = (0..action.num_params)
            .map(|_| self.rng.random::<u64>() as u128)
            .collect();
        RuleUpdate {
            key_values,
            key_masks,
            action: action.name,
            params,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shim;
    use bf4_core::driver::{verify, VerifyOptions};

    #[test]
    fn workload_is_deterministic_per_seed() {
        let report =
            verify(bf4_core::testutil::NAT_SOURCE, &VerifyOptions::default()).unwrap();
        let mk = || {
            Controller::new(
                &report.annotations,
                WorkloadConfig {
                    updates: 50,
                    ..WorkloadConfig::default()
                },
            )
            .workload()
        };
        let (a, b) = (mk(), mk());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn faulty_rules_get_rejected_benign_mostly_accepted() {
        let report =
            verify(bf4_core::testutil::NAT_SOURCE, &VerifyOptions::default()).unwrap();
        let mut shim = Shim::new(&report.annotations);
        let mut ctrl = Controller::new(
            &report.annotations,
            WorkloadConfig {
                updates: 300,
                faulty_fraction: 0.3,
                delete_fraction: 0.0,
                seed: 7,
                ..WorkloadConfig::default()
            },
        );
        let mut accepted = 0;
        let mut rejected = 0;
        for u in ctrl.workload() {
            match shim.apply(&u) {
                Ok(_) => accepted += 1,
                Err(crate::ShimError::AssertionViolated { .. }) => rejected += 1,
                Err(crate::ShimError::Duplicate) => {}
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(accepted > 0, "no update accepted");
        assert!(rejected > 0, "no faulty update rejected");
    }

    #[test]
    fn no_faults_by_default() {
        let report =
            verify(bf4_core::testutil::NAT_SOURCE, &VerifyOptions::default()).unwrap();
        assert_eq!(
            WorkloadConfig::default().faults,
            FaultInjection::default(),
            "fault injection must be opt-in"
        );
        let mut shim = Shim::new(&report.annotations);
        let mut ctrl = Controller::new(
            &report.annotations,
            WorkloadConfig {
                updates: 200,
                faulty_fraction: 0.0,
                delete_fraction: 0.0,
                seed: 4,
                ..WorkloadConfig::default()
            },
        );
        for u in ctrl.workload() {
            match shim.apply(&u) {
                Ok(_) | Err(crate::ShimError::Duplicate) => {}
                Err(e) => panic!("benign workload produced {e}"),
            }
        }
    }

    #[test]
    fn fault_injection_exercises_every_shim_error_path() {
        let report =
            verify(bf4_core::testutil::NAT_SOURCE, &VerifyOptions::default()).unwrap();
        let mut annotations = report.annotations.clone();
        if annotations.unsafe_defaults.is_empty() {
            // make the UnsafeDefault path reachable regardless of what the
            // pipeline flagged for this corpus revision
            let t = annotations.tables[0].qualified();
            let a = annotations.tables[0].actions[0].name.clone();
            annotations.unsafe_defaults.push((t, a));
        }
        let mut shim = Shim::new(&annotations);
        let mut ctrl = Controller::new(
            &annotations,
            WorkloadConfig {
                updates: 1000,
                faulty_fraction: 0.15,
                delete_fraction: 0.05,
                seed: 42,
                faults: FaultInjection::all(0.06),
            },
        );
        let mut seen = std::collections::BTreeSet::new();
        for u in ctrl.workload() {
            if let Err(e) = shim.apply(&u) {
                seen.insert(match e {
                    crate::ShimError::UnknownTable(_) => "UnknownTable",
                    crate::ShimError::UnknownAction(_) => "UnknownAction",
                    crate::ShimError::Malformed(_) => "Malformed",
                    crate::ShimError::AssertionViolated { .. } => "AssertionViolated",
                    crate::ShimError::UnsafeDefault { .. } => "UnsafeDefault",
                    crate::ShimError::Duplicate => "Duplicate",
                    crate::ShimError::NoSuchRule => "NoSuchRule",
                    // batch-path errors; unreachable through a monolithic
                    // Shim but kept exhaustive so new variants are heard
                    crate::ShimError::Overloaded { .. } => "Overloaded",
                    crate::ShimError::ShardPoisoned { .. } => "ShardPoisoned",
                    crate::ShimError::JournalFailed(_) => "JournalFailed",
                });
            }
        }
        for path in [
            "UnknownTable",
            "UnknownAction",
            "Malformed",
            "AssertionViolated",
            "UnsafeDefault",
            "Duplicate",
            "NoSuchRule",
        ] {
            assert!(seen.contains(path), "fault workload never hit {path}; saw {seen:?}");
        }
    }
}
