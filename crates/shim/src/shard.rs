//! Sharded, crash-consistent batch validation — the shim at line rate.
//!
//! The monolithic [`Shim`](crate::Shim) validates one update at a time
//! under one big lock. A production controller pushes P4Runtime update
//! *batches* from many worker threads, so this module rebuilds the shim
//! around three ideas:
//!
//! * **Sharded shadow tables.** Tables (and their per-variable hash
//!   indexes) are striped across a fixed pool of shards by table-name
//!   hash. Each shard is a full [`Shim`] that is *authoritative* only for
//!   the tables it owns; batches touching disjoint shards validate
//!   concurrently. Rule ids stay per-table positional, so verdicts and
//!   state digests are independent of the shard count by construction.
//! * **Deterministic two-phase locking.** A batch locks every involved
//!   shard — owners of the updated tables plus owners of every
//!   multi-table-assertion partner — in ascending shard index before
//!   reading or writing anything (growing phase), and releases only after
//!   the commit decision (shrinking phase). Ascending acquisition order
//!   makes deadlock impossible; holding all involved locks across the
//!   journal fsync means a batch is acknowledged only after it is durable
//!   and no later batch can observe (or journal after) non-durable state.
//!   Cross-shard assertions are evaluated against *mirrors*: at batch
//!   start each involved shard's copy of the other involved tables is
//!   refreshed from the owner, and staged updates propagate to the
//!   mirrors, so the owner's monolithic validation code sees exactly the
//!   joint state a single-shard shim would.
//! * **Atomic batches with group-commit journaling.** All updates of a
//!   batch validate and stage together; the first rejection rolls the
//!   whole batch back. Accepted batches append one checksummed journal
//!   frame (`B`/entries/`C`, §10 FNV-1a idiom) with a *single* fsync —
//!   group commit — and are acknowledged only after the fsync returns.
//!   Recovery replays committed frames all-or-nothing and drops a torn
//!   trailing frame whole, so an acknowledged batch is never lost and a
//!   never-acknowledged one never resurfaces split.
//!
//! Overload degrades by shedding, not queueing: at most
//! [`ShimConfig::max_inflight`] batches may be past admission at once;
//! beyond that (or when the `shim.overload` fault simulates a lagging
//! journal) a batch is rejected immediately with
//! [`ShimError::Overloaded`].
//!
//! Chaos sites (`BF4_FAULTS`): `shim.shard_poison` panics a worker
//! mid-batch (the batch rolls back and rejects conservatively),
//! `shim.batch_torn` tears the group-commit write half-way (the batch is
//! never acknowledged; the file heals on the next append),
//! `shim.overload` forces shedding.

use crate::journal::{self, encode_frame, parse_frames, persist_bytes, Frame};
use crate::{Shim, ShimError, StoredRule, Update};
use bf4_core::specs::AnnotationFile;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{Seek, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Configuration of the sharded shim.
#[derive(Clone, Debug)]
pub struct ShimConfig {
    /// Number of shards the shadow tables are striped over.
    pub shards: usize,
    /// Maximum batches past admission at once; beyond it batches are shed
    /// with [`ShimError::Overloaded`].
    pub max_inflight: usize,
    /// Journal file. `None` keeps the journal in memory only (tests).
    pub journal_path: Option<PathBuf>,
    /// Naive baseline mode: journal every update as its own record with
    /// its own fsync instead of one frame + one fsync per batch. Used by
    /// the campaign's throughput comparison; not crash-atomic per batch.
    pub fsync_per_update: bool,
}

impl Default for ShimConfig {
    fn default() -> ShimConfig {
        ShimConfig {
            shards: 8,
            max_inflight: 64,
            journal_path: None,
            fsync_per_update: false,
        }
    }
}

/// A P4Runtime-style update batch: the atomic unit of validation,
/// application, journaling, and acknowledgement.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Batch {
    /// Updates, applied in order.
    pub updates: Vec<Update>,
}

impl From<Vec<Update>> for Batch {
    fn from(updates: Vec<Update>) -> Batch {
        Batch { updates }
    }
}

/// Outcome of an acknowledged batch.
#[derive(Clone, Debug)]
pub struct BatchDecision {
    /// Journal sequence number of the batch's frame.
    pub seq: u64,
    /// Assigned rule ids, one slot per update (inserts only).
    pub rule_ids: Vec<Option<usize>>,
    /// End-to-end latency including the journal fsync.
    pub latency: Duration,
    /// Assertions evaluated across the batch.
    pub assertions_checked: usize,
}

/// A rejected batch. The whole batch was rolled back — nothing of it is
/// visible in shadow state or the journal.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchReject {
    /// Index of the offending update for validation failures; `None` for
    /// batch-level rejections (shed, poisoned shard, journal failure).
    pub index: Option<usize>,
    /// Why.
    pub error: ShimError,
}

impl std::fmt::Display for BatchReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.index {
            Some(i) => write!(f, "batch rejected at update {i}: {}", self.error),
            None => write!(f, "batch rejected: {}", self.error),
        }
    }
}

/// What batch recovery did.
#[derive(Clone, Debug, Default)]
pub struct BatchRecovery {
    /// Committed frames replayed.
    pub frames: usize,
    /// Entries replayed into the fresh shadow state.
    pub replayed: usize,
    /// Entries skipped as already applied (idempotent replay).
    pub skipped: usize,
    /// Entries whose replay contradicted the journal.
    pub mismatched: usize,
    /// A torn trailing frame (never-acknowledged batch) was dropped whole.
    pub torn_tail: bool,
    /// Highest batch sequence number seen.
    pub last_seq: Option<u64>,
}

/// Counters of a sharded shim, snapshotted at read time.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// Batches acknowledged (validated, journaled, fsynced).
    pub batches_acked: u64,
    /// Batches rejected by validation or a fault.
    pub batches_rejected: u64,
    /// Batches shed by admission control.
    pub batches_shed: u64,
    /// Batches rolled back because the journal write/fsync failed.
    pub journal_failures: u64,
    /// Updates inside acknowledged batches.
    pub updates_acked: u64,
    /// Journal fsyncs issued.
    pub fsyncs: u64,
    /// Appends that shared a batch fsync instead of paying their own
    /// (`sum(batch_len - 1)` over acknowledged group commits).
    pub fsync_amortized: u64,
}

#[derive(Default)]
struct AtomicStats {
    batches_acked: AtomicU64,
    batches_rejected: AtomicU64,
    batches_shed: AtomicU64,
    journal_failures: AtomicU64,
    updates_acked: AtomicU64,
}

/// The group-commit journal: an append-only frame stream, optionally
/// backed by a file. `buf` mirrors exactly the bytes that are durable
/// (or would be, in memory-only mode); a failed/torn append marks the
/// file dirty and the next append heals it by truncating back to `buf`.
struct GroupJournal {
    file: Option<std::fs::File>,
    buf: Vec<u8>,
    dirty: bool,
    next_seq: u64,
    fsyncs: u64,
    fsync_amortized: u64,
}

impl GroupJournal {
    fn open(path: Option<&Path>) -> std::io::Result<GroupJournal> {
        let file = match path {
            Some(p) => Some(std::fs::File::create(p)?),
            None => None,
        };
        Ok(GroupJournal {
            file,
            buf: Vec::new(),
            dirty: false,
            next_seq: 0,
            fsyncs: 0,
            fsync_amortized: 0,
        })
    }

    /// Append pre-encoded record bytes covering `updates` updates, then
    /// fsync once. On any error nothing is considered durable: the caller
    /// rolls the batch back and the file is healed before the next append.
    fn append(&mut self, record: &[u8], updates: usize) -> std::io::Result<()> {
        if let Some(f) = self.file.as_mut() {
            if self.dirty {
                f.set_len(self.buf.len() as u64)?;
                f.seek(std::io::SeekFrom::Start(self.buf.len() as u64))?;
                self.dirty = false;
            }
            // Chaos hook: tear the group-commit write half-way — the
            // on-disk state a crash mid-commit produces. The frame's
            // trailer never lands, so recovery drops the batch whole.
            if bf4_obs::fault::fire("shim.batch_torn") {
                let _ = f.write_all(&record[..record.len() / 2]);
                let _ = f.sync_all();
                self.dirty = true;
                return Err(std::io::Error::other("injected fault: shim.batch_torn"));
            }
            if let Err(e) = f.write_all(record) {
                self.dirty = true;
                return Err(e);
            }
            let mut sp = bf4_obs::span("shim", "journal_fsync");
            if sp.is_active() {
                sp.add_tag("updates", updates.to_string());
            }
            let t0 = Instant::now();
            if let Err(e) = f.sync_all() {
                self.dirty = true;
                return Err(e);
            }
            bf4_obs::hist_record("shim.journal_fsync", t0.elapsed());
        } else if bf4_obs::fault::fire("shim.batch_torn") {
            return Err(std::io::Error::other("injected fault: shim.batch_torn"));
        }
        self.buf.extend_from_slice(record);
        self.fsyncs += 1;
        if updates > 1 {
            let shared = (updates - 1) as u64;
            self.fsync_amortized += shared;
            bf4_obs::counter_add("shim.journal_fsync_amortized", shared);
        }
        Ok(())
    }
}

enum StagedOp {
    Insert { table: String },
    Delete { table: String, id: usize },
    SetDefault { table: String, old: Option<String> },
}

fn update_table(u: &Update) -> &str {
    match u {
        Update::Insert { table, .. }
        | Update::Delete { table, .. }
        | Update::SetDefault { table, .. } => table,
    }
}

fn lock_shim<'a>(m: &'a Mutex<Shim>) -> MutexGuard<'a, Shim> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The sharded, journaled, admission-controlled shim.
pub struct ShardedShim {
    annotations: AnnotationFile,
    shards: Vec<Mutex<Shim>>,
    /// Table → owning shard (striped by FNV-1a of the qualified name).
    owner: HashMap<String, usize>,
    /// Table → tables it shares a multi-table assertion with (both
    /// directions), i.e. the tables whose state its validation reads.
    partners: HashMap<String, Vec<String>>,
    journal: Mutex<GroupJournal>,
    inflight: AtomicUsize,
    max_inflight: usize,
    fsync_per_update: bool,
    stats: AtomicStats,
}

impl ShardedShim {
    /// Build a sharded shim from an annotation file.
    pub fn new(annotations: &AnnotationFile, config: &ShimConfig) -> std::io::Result<ShardedShim> {
        let nshards = config.shards.max(1);
        let shards = (0..nshards).map(|_| Mutex::new(Shim::new(annotations))).collect();
        let owner: HashMap<String, usize> = annotations
            .tables
            .iter()
            .map(|d| {
                let q = d.qualified();
                let s = (journal::fnv1a(q.as_bytes()) as usize) % nshards;
                (q, s)
            })
            .collect();
        let mut partners: HashMap<String, Vec<String>> = HashMap::new();
        for spec in &annotations.specs {
            if let Some(w) = &spec.with_table {
                let q = spec.qualified();
                partners.entry(q.clone()).or_default().push(w.clone());
                partners.entry(w.clone()).or_default().push(q);
            }
        }
        for v in partners.values_mut() {
            v.sort();
            v.dedup();
        }
        Ok(ShardedShim {
            annotations: annotations.clone(),
            shards,
            owner,
            partners,
            journal: Mutex::new(GroupJournal::open(config.journal_path.as_deref())?),
            inflight: AtomicUsize::new(0),
            max_inflight: config.max_inflight,
            fsync_per_update: config.fsync_per_update,
            stats: AtomicStats::default(),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Owning shard of a table.
    pub fn owner_shard(&self, table: &str) -> Option<usize> {
        self.owner.get(table).copied()
    }

    /// Validate and apply one batch atomically. On success the batch is
    /// durable in the journal (one group-commit fsync) before it is
    /// acknowledged; on any rejection the shadow state is untouched.
    pub fn apply_batch(&self, batch: &Batch) -> Result<BatchDecision, BatchReject> {
        let mut sp = bf4_obs::span("shim", "batch");
        if sp.is_active() {
            sp.add_tag("updates", batch.updates.len().to_string());
        }
        let t0 = Instant::now();

        // Admission control: bounded in-flight batches; shed beyond the
        // bound (or when the fault plan simulates a lagging journal).
        let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
        let _inflight_guard = InflightGuard(&self.inflight);
        bf4_obs::gauge_set("shim.inflight", (prev + 1) as i64);
        if prev >= self.max_inflight || bf4_obs::fault::fire("shim.overload") {
            self.stats.batches_shed.fetch_add(1, Ordering::Relaxed);
            bf4_obs::counter_add("shim.batch_shed", 1);
            sp.add_tag("outcome", "shed");
            return Err(BatchReject {
                index: None,
                error: ShimError::Overloaded {
                    inflight: prev + 1,
                    limit: self.max_inflight,
                },
            });
        }

        // Structural pre-check before locking: a batch naming an unknown
        // table has no owner shard and is rejected deterministically at
        // the first offending update.
        for (i, u) in batch.updates.iter().enumerate() {
            let t = update_table(u);
            if !self.owner.contains_key(t) {
                self.stats.batches_rejected.fetch_add(1, Ordering::Relaxed);
                bf4_obs::counter_add("shim.batch_rejected", 1);
                sp.add_tag("outcome", "rejected");
                return Err(BatchReject {
                    index: Some(i),
                    error: ShimError::UnknownTable(t.to_string()),
                });
            }
        }

        // Involved tables = updated tables plus every multi-table-spec
        // partner whose shadow their validation reads.
        let mut tables: BTreeSet<&str> = BTreeSet::new();
        for u in &batch.updates {
            let t = update_table(u);
            tables.insert(t);
            if let Some(ps) = self.partners.get(t) {
                for p in ps {
                    if self.owner.contains_key(p.as_str()) {
                        tables.insert(p);
                    }
                }
            }
        }
        let shard_ids: BTreeSet<usize> = tables.iter().map(|t| self.owner[*t]).collect();

        // Growing phase of the two-phase lock: every involved shard, in
        // ascending index order (deadlock-free by construction).
        let mut guards: BTreeMap<usize, MutexGuard<'_, Shim>> = shard_ids
            .iter()
            .map(|&i| (i, lock_shim(&self.shards[i])))
            .collect();

        // Refresh cross-shard mirrors so each owner's monolithic
        // validation sees the authoritative joint state.
        if guards.len() > 1 {
            let snaps: Vec<(&str, usize, Vec<StoredRule>, Option<String>)> = tables
                .iter()
                .map(|&t| {
                    let o = self.owner[t];
                    let (rules, default) = guards[&o].clone_table(t).expect("owned table");
                    (t, o, rules, default)
                })
                .collect();
            for (t, o, rules, default) in &snaps {
                for (&sid, g) in guards.iter_mut() {
                    if sid != *o {
                        g.overwrite_table(t, rules.clone(), default.clone());
                    }
                }
            }
        }

        // Stage the batch with panic isolation: a poisoned shard worker
        // must not leave a half-applied batch behind.
        let staged: std::cell::RefCell<Vec<StagedOp>> = std::cell::RefCell::new(Vec::new());
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.stage_batch(batch, &mut guards, &staged)
        }));

        let (rule_ids, checked) = match outcome {
            Err(_panic) => {
                Self::rollback(&mut guards, staged.into_inner());
                self.stats.batches_rejected.fetch_add(1, Ordering::Relaxed);
                bf4_obs::counter_add("shim.batch_rejected", 1);
                sp.add_tag("outcome", "poisoned");
                let shard = shard_ids.iter().next().copied().unwrap_or(0);
                return Err(BatchReject {
                    index: None,
                    error: ShimError::ShardPoisoned { shard },
                });
            }
            Ok(Err((index, error))) => {
                Self::rollback(&mut guards, staged.into_inner());
                self.stats.batches_rejected.fetch_add(1, Ordering::Relaxed);
                bf4_obs::counter_add("shim.batch_rejected", 1);
                sp.add_tag("outcome", "rejected");
                return Err(BatchReject {
                    index: Some(index),
                    error,
                });
            }
            Ok(Ok(v)) => v,
        };

        // Group commit: one frame, one fsync, while still holding the
        // shard locks — durability before acknowledgement, and no later
        // batch can build on (or journal after) non-durable state.
        let entries: Vec<(Update, Option<usize>)> = batch
            .updates
            .iter()
            .cloned()
            .zip(rule_ids.iter().copied())
            .collect();
        let journal_result = {
            let mut j = self.journal.lock().unwrap_or_else(PoisonError::into_inner);
            let seq = j.next_seq;
            let result = if self.fsync_per_update {
                // Naive baseline: one bare-line record + fsync per update.
                let mut r = Ok(());
                for (u, id) in &entries {
                    let mut line = journal::encode(u, *id).into_bytes();
                    line.push(b'\n');
                    r = j.append(&line, 1);
                    if r.is_err() {
                        break;
                    }
                }
                r
            } else {
                j.append(&encode_frame(seq, &entries), entries.len())
            };
            result.map(|()| {
                j.next_seq += 1;
                seq
            })
        };
        match journal_result {
            Err(e) => {
                Self::rollback(&mut guards, staged.into_inner());
                self.stats.journal_failures.fetch_add(1, Ordering::Relaxed);
                bf4_obs::counter_add("shim.batch_journal_failed", 1);
                sp.add_tag("outcome", "journal-failed");
                Err(BatchReject {
                    index: None,
                    error: ShimError::JournalFailed(e.to_string()),
                })
            }
            Ok(seq) => {
                self.stats.batches_acked.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .updates_acked
                    .fetch_add(batch.updates.len() as u64, Ordering::Relaxed);
                bf4_obs::counter_add("shim.batch_acked", 1);
                let latency = t0.elapsed();
                bf4_obs::hist_record("shim.batch_apply", latency);
                sp.add_tag("outcome", "accepted");
                Ok(BatchDecision {
                    seq,
                    rule_ids,
                    latency,
                    assertions_checked: checked,
                })
            }
        }
    }

    /// Validate and stage every update of the batch against the locked
    /// shards, recording undo ops. Returns assigned rule ids and the
    /// number of assertions checked, or the first offending update.
    #[allow(clippy::type_complexity)]
    fn stage_batch(
        &self,
        batch: &Batch,
        guards: &mut BTreeMap<usize, MutexGuard<'_, Shim>>,
        staged: &std::cell::RefCell<Vec<StagedOp>>,
    ) -> Result<(Vec<Option<usize>>, usize), (usize, ShimError)> {
        let mut rule_ids = Vec::with_capacity(batch.updates.len());
        let mut checked = 0usize;
        for (i, u) in batch.updates.iter().enumerate() {
            // Chaos hook: a shard worker panics mid-batch. Everything
            // staged so far (this update's predecessors) rolls back.
            if bf4_obs::fault::fire("shim.shard_poison") {
                panic!("injected fault: shim.shard_poison");
            }
            let table = update_table(u);
            let o = self.owner[table];
            match u {
                Update::Insert { table, rule } => {
                    let n = guards[&o]
                        .validate_insert(table, rule)
                        .map_err(|e| (i, e))?;
                    checked += n;
                    let id = guards
                        .get_mut(&o)
                        .expect("locked")
                        .insert_shadow(table, rule.clone());
                    for (&sid, g) in guards.iter_mut() {
                        if sid != o {
                            let mid = g.insert_shadow(table, rule.clone());
                            debug_assert_eq!(mid, id, "mirror id diverged for {table}");
                        }
                    }
                    staged.borrow_mut().push(StagedOp::Insert {
                        table: table.clone(),
                    });
                    rule_ids.push(Some(id));
                }
                Update::Delete { table, rule_id } => {
                    guards[&o]
                        .validate_delete(table, *rule_id)
                        .map_err(|e| (i, e))?;
                    for g in guards.values_mut() {
                        g.delete_shadow(table, *rule_id);
                    }
                    staged.borrow_mut().push(StagedOp::Delete {
                        table: table.clone(),
                        id: *rule_id,
                    });
                    rule_ids.push(None);
                }
                Update::SetDefault { table, action } => {
                    guards[&o]
                        .validate_set_default(table, action)
                        .map_err(|e| (i, e))?;
                    checked += self.annotations.unsafe_defaults.len();
                    let old = guards[&o].default_action(table);
                    for g in guards.values_mut() {
                        g.set_default_raw(table, Some(action.clone()));
                    }
                    staged.borrow_mut().push(StagedOp::SetDefault {
                        table: table.clone(),
                        old,
                    });
                    rule_ids.push(None);
                }
            }
        }
        Ok((rule_ids, checked))
    }

    /// Undo staged ops in reverse order across every locked shard (owner
    /// and mirrors saw the same ops, so the undo is symmetric).
    fn rollback(guards: &mut BTreeMap<usize, MutexGuard<'_, Shim>>, ops: Vec<StagedOp>) {
        for op in ops.into_iter().rev() {
            match op {
                StagedOp::Insert { table } => {
                    for g in guards.values_mut() {
                        g.undo_insert(&table);
                    }
                }
                StagedOp::Delete { table, id } => {
                    for g in guards.values_mut() {
                        g.undo_delete(&table, id);
                    }
                }
                StagedOp::SetDefault { table, old } => {
                    for g in guards.values_mut() {
                        g.set_default_raw(&table, old.clone());
                    }
                }
            }
        }
    }

    /// Rebuild a sharded shim from journal bytes after a crash. Committed
    /// frames replay all-or-nothing (idempotently, like
    /// [`JournaledShim::recover`](crate::JournaledShim::recover)); a torn
    /// trailing frame — a batch that was never acknowledged — is dropped
    /// whole. The recovered shim continues the same journal (the file, if
    /// configured, is rewritten to the valid prefix).
    pub fn recover(
        annotations: &AnnotationFile,
        journal_bytes: &[u8],
        config: &ShimConfig,
    ) -> std::io::Result<(ShardedShim, BatchRecovery)> {
        let parsed = parse_frames(journal_bytes);
        let mut report = BatchRecovery {
            torn_tail: parsed.torn,
            ..BatchRecovery::default()
        };
        let mut mono = Shim::new(annotations);
        for Frame { seq, entries } in &parsed.frames {
            report.frames += 1;
            if let Some(s) = seq {
                report.last_seq = Some(report.last_seq.map_or(*s, |m: u64| m.max(*s)));
            }
            for entry in entries {
                if let (Update::Insert { table, rule }, Some(id)) = (&entry.update, entry.rule_id) {
                    if mono.stored_rule(table, id) == Some(rule) {
                        report.skipped += 1;
                        continue;
                    }
                }
                match mono.apply(&entry.update) {
                    Ok(d) => {
                        if d.rule_id == entry.rule_id {
                            report.replayed += 1;
                        } else {
                            report.mismatched += 1;
                        }
                    }
                    Err(ShimError::Duplicate) | Err(ShimError::NoSuchRule) => report.skipped += 1,
                    Err(_) => report.mismatched += 1,
                }
            }
        }
        let sharded = ShardedShim::new(annotations, config)?;
        // Distribute the replayed state to each table's owner shard.
        for table in mono.table_names() {
            if let Some((rules, default)) = mono.clone_table(&table) {
                let o = sharded.owner[&table];
                lock_shim(&sharded.shards[o]).overwrite_table(&table, rules, default);
            }
        }
        {
            let mut j = sharded.journal.lock().unwrap_or_else(PoisonError::into_inner);
            j.buf = journal_bytes[..parsed.valid_len].to_vec();
            j.next_seq = report.last_seq.map_or(0, |s| s + 1);
            let buf = std::mem::take(&mut j.buf);
            if let Some(f) = j.file.as_mut() {
                f.write_all(&buf)?;
                f.sync_all()?;
            }
            j.buf = buf;
        }
        Ok((sharded, report))
    }

    /// A monolithic snapshot of the current shadow state (locks every
    /// shard). Used for audits and state export.
    pub fn snapshot(&self) -> Shim {
        let guards: Vec<MutexGuard<'_, Shim>> = self.shards.iter().map(lock_shim).collect();
        let mut mono = Shim::new(&self.annotations);
        for (table, &o) in &self.owner {
            if let Some((rules, default)) = guards[o].clone_table(table) {
                mono.overwrite_table(table, rules, default);
            }
        }
        mono
    }

    /// Deterministic digest of the full shadow state; equals the digest a
    /// monolithic shim computes after the same accepted updates,
    /// regardless of shard count.
    pub fn state_digest(&self) -> u64 {
        let guards: Vec<MutexGuard<'_, Shim>> = self.shards.iter().map(lock_shim).collect();
        let mut names: Vec<&String> = self.owner.keys().collect();
        names.sort();
        let mut render = String::new();
        for name in names {
            guards[self.owner[name.as_str()]].render_table_into(name, &mut render);
        }
        journal::fnv1a(render.as_bytes())
    }

    /// Audit the shadow state against every inferred assertion
    /// (see [`Shim::audit_violations`]).
    pub fn audit_violations(&self) -> Vec<String> {
        self.snapshot().audit_violations()
    }

    /// Number of live rules in a table's shadow.
    pub fn shadow_size(&self, table: &str) -> usize {
        match self.owner.get(table) {
            Some(&o) => lock_shim(&self.shards[o]).shadow_size(table),
            None => 0,
        }
    }

    /// The durable journal bytes (valid frames only).
    pub fn journal_bytes(&self) -> Vec<u8> {
        self.journal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .buf
            .clone()
    }

    /// Crash-safe full rewrite of the journal to `path` (tmp + fsync +
    /// rename + directory fsync).
    pub fn persist(&self, path: &Path) -> std::io::Result<()> {
        let buf = self.journal_bytes();
        persist_bytes(&buf, path)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ShardStats {
        let j = self.journal.lock().unwrap_or_else(PoisonError::into_inner);
        ShardStats {
            batches_acked: self.stats.batches_acked.load(Ordering::Relaxed),
            batches_rejected: self.stats.batches_rejected.load(Ordering::Relaxed),
            batches_shed: self.stats.batches_shed.load(Ordering::Relaxed),
            journal_failures: self.stats.journal_failures.load(Ordering::Relaxed),
            updates_acked: self.stats.updates_acked.load(Ordering::Relaxed),
            fsyncs: j.fsyncs,
            fsync_amortized: j.fsync_amortized,
        }
    }

    /// The annotation file this shim was built from.
    pub fn annotations(&self) -> &AnnotationFile {
        &self.annotations
    }
}

struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}
