#![warn(missing_docs)]

//! # bf4-shim — the runtime dataplane-update sanitization shim (§4.4)
//!
//! The shim sits between the controller and the dataplane. It loads the
//! annotation file bf4 emits at compile time and, for every table-update
//! request:
//!
//! 1. **clusters** the conditions by table id — constant-time detection of
//!    the assertions an update might violate;
//! 2. **rewrites** each condition body with the concrete values of the
//!    update being tested;
//! 3. for conditions that also reference *another* table's contents
//!    (multi-table assertions), queries its **shadow copy** — per-variable
//!    hash indexes over exact-match keys, so the lookup is linear in the
//!    number of unbound variables;
//! 4. accepts the update (and applies it to the shadow state) or rejects
//!    it with a [`ShimError`] naming the violated assertion — the
//!    "exception thrown to the controller" of the paper.
//!
//! A [`controller`] module provides a simulated ONOS-like controller that
//! generates update workloads for the §5.3 latency evaluation, and
//! [`stats`] computes the reported percentiles.

pub mod campaign;
pub mod controller;
pub mod journal;
pub mod shard;
pub mod stats;

pub use journal::{Journal, JournaledShim, RecoveryReport};
pub use shard::{Batch, BatchDecision, BatchRecovery, BatchReject, ShardedShim, ShimConfig};

use bf4_core::specs::{AnnotationFile, TableDescriptor, TableSpec};
use bf4_smt::{eval, Assignment, Sort, Value};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A rule as the controller would send it (P4Runtime-style `TableEntry`).
#[derive(Clone, Debug, PartialEq)]
pub struct RuleUpdate {
    /// Key values in key order.
    pub key_values: Vec<u128>,
    /// Key masks (ternary/lpm; ignored for exact; high bound for range).
    pub key_masks: Vec<u128>,
    /// Action name.
    pub action: String,
    /// Action data.
    pub params: Vec<u128>,
}

/// An update request.
#[derive(Clone, Debug, PartialEq)]
pub enum Update {
    /// Insert a rule into a table.
    Insert {
        /// Qualified table name (`control.table`).
        table: String,
        /// The rule.
        rule: RuleUpdate,
    },
    /// Remove a previously inserted rule by its id.
    Delete {
        /// Qualified table name.
        table: String,
        /// Id returned by the accepting insert.
        rule_id: usize,
    },
    /// Set the default (miss) action.
    SetDefault {
        /// Qualified table name.
        table: String,
        /// Action name.
        action: String,
    },
}

/// Why an update was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum ShimError {
    /// Unknown table.
    UnknownTable(String),
    /// Unknown action for the table.
    UnknownAction(String),
    /// Wrong number of keys or parameters.
    Malformed(String),
    /// The update violates an inferred assertion; carries the assertion's
    /// rendered predicate and, for multi-table violations, the partner
    /// rule id.
    AssertionViolated {
        /// Qualified table.
        table: String,
        /// Rendered predicate.
        assertion: String,
        /// Partner rule in the other table, for multi-table assertions.
        partner: Option<(String, usize)>,
    },
    /// Default rule with an action that has a reachable bug (§4.4).
    UnsafeDefault {
        /// Qualified table.
        table: String,
        /// The refused action.
        action: String,
    },
    /// Duplicate rule (same keys already present).
    Duplicate,
    /// Deleting a rule that does not exist.
    NoSuchRule,
    /// Admission control shed the batch: too many batches in flight (the
    /// journal is lagging behind the offered load).
    Overloaded {
        /// Batches in flight when the batch was shed.
        inflight: usize,
        /// Configured in-flight bound.
        limit: usize,
    },
    /// A shard worker panicked mid-batch; the batch was rolled back and
    /// rejected conservatively.
    ShardPoisoned {
        /// Index of the poisoned shard.
        shard: usize,
    },
    /// The group-commit journal write/fsync failed; the batch was rolled
    /// back (never acknowledged) so shadow state still equals the replay
    /// of the durable journal.
    JournalFailed(String),
}

impl std::fmt::Display for ShimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShimError::UnknownTable(t) => write!(f, "unknown table {t}"),
            ShimError::UnknownAction(a) => write!(f, "unknown action {a}"),
            ShimError::Malformed(m) => write!(f, "malformed update: {m}"),
            ShimError::AssertionViolated {
                table, assertion, partner,
            } => {
                write!(f, "update to {table} violates assertion {assertion}")?;
                if let Some((t, id)) = partner {
                    write!(f, " together with rule {id} of {t}")?;
                }
                Ok(())
            }
            ShimError::UnsafeDefault { table, action } => {
                write!(f, "action {action} of {table} has a reachable bug; refusing default")
            }
            ShimError::Duplicate => write!(f, "duplicate rule"),
            ShimError::NoSuchRule => write!(f, "no such rule"),
            ShimError::Overloaded { inflight, limit } => {
                write!(f, "overloaded: {inflight} batches in flight (limit {limit})")
            }
            ShimError::ShardPoisoned { shard } => {
                write!(f, "shard {shard} poisoned mid-batch; batch rolled back")
            }
            ShimError::JournalFailed(e) => write!(f, "journal write failed: {e}"),
        }
    }
}

impl std::error::Error for ShimError {}

/// A stored shadow rule.
#[derive(Clone, Debug)]
struct StoredRule {
    rule: RuleUpdate,
    live: bool,
}

/// Shadow state of one table: rules plus per-exact-key hash indexes.
struct Shadow {
    desc: TableDescriptor,
    rules: Vec<StoredRule>,
    /// For each key index with `exact` match kind: value → rule ids.
    indexes: HashMap<usize, HashMap<u128, Vec<usize>>>,
    /// Spec indexes (into `Shim::specs`) asserted on this table.
    spec_ids: Vec<usize>,
    /// Spec indexes where this table is the `WITH` partner.
    partner_spec_ids: Vec<usize>,
    default_action: Option<String>,
}

/// Validation outcome with timing, for the §5.3 measurements.
#[derive(Clone, Debug)]
pub struct Decision {
    /// Accepted rule id (for inserts).
    pub rule_id: Option<usize>,
    /// Time spent validating.
    pub latency: Duration,
    /// Number of assertions evaluated.
    pub assertions_checked: usize,
}

/// The sanitization shim.
pub struct Shim {
    tables: HashMap<String, Shadow>,
    specs: Vec<TableSpec>,
    unsafe_defaults: Vec<(String, String)>,
}

impl Shim {
    /// Build a shim from a parsed annotation file.
    pub fn new(annotations: &AnnotationFile) -> Shim {
        let mut tables: HashMap<String, Shadow> = annotations
            .tables
            .iter()
            .map(|d| {
                let indexes = d
                    .keys
                    .iter()
                    .enumerate()
                    .filter(|(_, k)| k.match_kind == "exact")
                    .map(|(i, _)| (i, HashMap::new()))
                    .collect();
                (
                    d.qualified(),
                    Shadow {
                        desc: d.clone(),
                        rules: Vec::new(),
                        indexes,
                        spec_ids: Vec::new(),
                        partner_spec_ids: Vec::new(),
                        default_action: None,
                    },
                )
            })
            .collect();
        // Cluster conditions by table (step (a) of §4.4).
        for (i, s) in annotations.specs.iter().enumerate() {
            if let Some(t) = tables.get_mut(&s.qualified()) {
                t.spec_ids.push(i);
            }
            if let Some(w) = &s.with_table {
                if let Some(t) = tables.get_mut(w) {
                    t.partner_spec_ids.push(i);
                }
            }
        }
        Shim {
            tables,
            specs: annotations.specs.clone(),
            unsafe_defaults: annotations.unsafe_defaults.clone(),
        }
    }

    /// Load from the textual annotation format.
    pub fn from_text(text: &str) -> Result<Shim, String> {
        Ok(Shim::new(&AnnotationFile::parse(text)?))
    }

    /// Process one update: validate and, when accepted, apply to shadow
    /// state.
    pub fn apply(&mut self, update: &Update) -> Result<Decision, ShimError> {
        let mut sp = bf4_obs::span("shim", "apply");
        if sp.is_active() {
            let (kind, table) = match update {
                Update::Insert { table, .. } => ("insert", table),
                Update::Delete { table, .. } => ("delete", table),
                Update::SetDefault { table, .. } => ("set-default", table),
            };
            sp.add_tag("kind", kind);
            sp.add_tag("table", table.clone());
        }
        let result = self.apply_inner(update);
        match &result {
            Ok(d) => {
                bf4_obs::counter_add("shim.accepted", 1);
                bf4_obs::hist_record("shim.apply", d.latency);
                sp.add_tag("outcome", "accepted");
            }
            Err(_) => {
                bf4_obs::counter_add("shim.rejected", 1);
                sp.add_tag("outcome", "rejected");
            }
        }
        result
    }

    fn apply_inner(&mut self, update: &Update) -> Result<Decision, ShimError> {
        let t0 = Instant::now();
        match update {
            Update::Insert { table, rule } => {
                let checked = self.validate_insert(table, rule)?;
                let id = self.insert_shadow(table, rule.clone());
                Ok(Decision {
                    rule_id: Some(id),
                    latency: t0.elapsed(),
                    assertions_checked: checked,
                })
            }
            Update::Delete { table, rule_id } => {
                self.validate_delete(table, *rule_id)?;
                self.delete_shadow(table, *rule_id);
                Ok(Decision {
                    rule_id: None,
                    latency: t0.elapsed(),
                    assertions_checked: 0,
                })
            }
            Update::SetDefault { table, action } => {
                self.validate_set_default(table, action)?;
                self.tables.get_mut(table).unwrap().default_action = Some(action.clone());
                Ok(Decision {
                    rule_id: None,
                    latency: t0.elapsed(),
                    assertions_checked: self.unsafe_defaults.len(),
                })
            }
        }
    }

    /// Validate an insert without applying it. Returns the number of
    /// assertions checked.
    pub fn validate_insert(&self, table: &str, rule: &RuleUpdate) -> Result<usize, ShimError> {
        let shadow = self
            .tables
            .get(table)
            .ok_or_else(|| ShimError::UnknownTable(table.to_string()))?;
        let desc = &shadow.desc;
        if rule.key_values.len() != desc.keys.len() {
            return Err(ShimError::Malformed(format!(
                "expected {} keys, got {}",
                desc.keys.len(),
                rule.key_values.len()
            )));
        }
        let Some(action) = desc.actions.iter().find(|a| a.name == rule.action) else {
            return Err(ShimError::UnknownAction(rule.action.clone()));
        };
        if rule.params.len() != action.num_params {
            return Err(ShimError::Malformed(format!(
                "action {} expects {} params, got {}",
                action.name,
                action.num_params,
                rule.params.len()
            )));
        }
        // Duplicate detection via exact-key indexes (cheap precheck), as
        // real switches reject duplicates.
        if self.find_duplicate(shadow, rule).is_some() {
            return Err(ShimError::Duplicate);
        }

        // Step (b): rewrite condition bodies with the update's values.
        let assignment = self.rule_assignment(desc, rule);
        let mut checked = 0;
        for &si in &shadow.spec_ids {
            let spec = &self.specs[si];
            checked += 1;
            match &spec.with_table {
                None => {
                    if !holds(&spec.formula, &assignment) {
                        return Err(ShimError::AssertionViolated {
                            table: table.to_string(),
                            assertion: bf4_smt::to_sexpr(&spec.formula),
                            partner: None,
                        });
                    }
                }
                Some(partner) => {
                    // Step (c): unbound variables come from the partner's
                    // shadow rules.
                    if let Some(pshadow) = self.tables.get(partner) {
                        for (rid, stored) in pshadow.rules.iter().enumerate() {
                            if !stored.live {
                                continue;
                            }
                            let mut joint = assignment.clone();
                            joint.extend(self.rule_assignment(&pshadow.desc, &stored.rule));
                            if !holds(&spec.formula, &joint) {
                                return Err(ShimError::AssertionViolated {
                                    table: table.to_string(),
                                    assertion: bf4_smt::to_sexpr(&spec.formula),
                                    partner: Some((partner.clone(), rid)),
                                });
                            }
                        }
                    }
                }
            }
        }
        // Also check multi-table specs where *this* table is the partner:
        // the combination constraint must hold against existing rules of
        // the primary table.
        for &si in &shadow.partner_spec_ids {
            let spec = &self.specs[si];
            checked += 1;
            if let Some(pshadow) = self.tables.get(&spec.qualified()) {
                for (rid, stored) in pshadow.rules.iter().enumerate() {
                    if !stored.live {
                        continue;
                    }
                    let mut joint = assignment.clone();
                    joint.extend(self.rule_assignment(&pshadow.desc, &stored.rule));
                    if !holds(&spec.formula, &joint) {
                        return Err(ShimError::AssertionViolated {
                            table: table.to_string(),
                            assertion: bf4_smt::to_sexpr(&spec.formula),
                            partner: Some((spec.qualified(), rid)),
                        });
                    }
                }
            }
        }
        Ok(checked)
    }

    fn find_duplicate(&self, shadow: &Shadow, rule: &RuleUpdate) -> Option<usize> {
        // Use the first exact index when available to narrow candidates.
        let candidates: Vec<usize> = if let Some((&ki, idx)) = shadow.indexes.iter().next() {
            idx.get(rule.key_values.get(ki).unwrap_or(&0))
                .cloned()
                .unwrap_or_default()
        } else {
            (0..shadow.rules.len()).collect()
        };
        candidates.into_iter().find(|&rid| {
            let r = &shadow.rules[rid];
            r.live
                && r.rule.key_values == rule.key_values
                && r.rule.key_masks == rule.key_masks
        })
    }

    /// Validate a delete without applying it.
    pub(crate) fn validate_delete(&self, table: &str, rule_id: usize) -> Result<(), ShimError> {
        let shadow = self
            .tables
            .get(table)
            .ok_or_else(|| ShimError::UnknownTable(table.to_string()))?;
        match shadow.rules.get(rule_id) {
            Some(r) if r.live => Ok(()),
            _ => Err(ShimError::NoSuchRule),
        }
    }

    /// Validate a default-action change without applying it.
    pub(crate) fn validate_set_default(&self, table: &str, action: &str) -> Result<(), ShimError> {
        let shadow = self
            .tables
            .get(table)
            .ok_or_else(|| ShimError::UnknownTable(table.to_string()))?;
        if !shadow.desc.actions.iter().any(|a| a.name == action) {
            return Err(ShimError::UnknownAction(action.to_string()));
        }
        if self
            .unsafe_defaults
            .iter()
            .any(|(t, a)| t == table && a == action)
        {
            return Err(ShimError::UnsafeDefault {
                table: table.to_string(),
                action: action.to_string(),
            });
        }
        Ok(())
    }

    pub(crate) fn insert_shadow(&mut self, table: &str, rule: RuleUpdate) -> usize {
        let shadow = self.tables.get_mut(table).expect("validated");
        let id = shadow.rules.len();
        for (&ki, idx) in shadow.indexes.iter_mut() {
            let v = rule.key_values.get(ki).copied().unwrap_or(0);
            idx.entry(v).or_default().push(id);
        }
        shadow.rules.push(StoredRule { rule, live: true });
        id
    }

    /// Tombstone a validated delete.
    pub(crate) fn delete_shadow(&mut self, table: &str, rule_id: usize) {
        if let Some(r) = self
            .tables
            .get_mut(table)
            .and_then(|s| s.rules.get_mut(rule_id))
        {
            r.live = false;
        }
    }

    /// Undo the most recent [`insert_shadow`](Self::insert_shadow) into
    /// `table`: pops the rule and its index postings. Only sound while the
    /// caller still holds exclusive access (batch rollback under locks).
    pub(crate) fn undo_insert(&mut self, table: &str) {
        let Some(shadow) = self.tables.get_mut(table) else {
            return;
        };
        let Some(stored) = shadow.rules.pop() else {
            return;
        };
        let id = shadow.rules.len();
        for (&ki, idx) in shadow.indexes.iter_mut() {
            let v = stored.rule.key_values.get(ki).copied().unwrap_or(0);
            if let Some(ids) = idx.get_mut(&v) {
                if ids.last() == Some(&id) {
                    ids.pop();
                }
                if ids.is_empty() {
                    idx.remove(&v);
                }
            }
        }
    }

    /// Undo a tombstone set by [`delete_shadow`](Self::delete_shadow).
    pub(crate) fn undo_delete(&mut self, table: &str, rule_id: usize) {
        if let Some(r) = self
            .tables
            .get_mut(table)
            .and_then(|s| s.rules.get_mut(rule_id))
        {
            r.live = true;
        }
    }

    /// Current default action of a table (for batch rollback).
    pub(crate) fn default_action(&self, table: &str) -> Option<String> {
        self.tables.get(table).and_then(|s| s.default_action.clone())
    }

    /// Set a table's default action without validation (batch staging and
    /// rollback paths; validation happened separately).
    pub(crate) fn set_default_raw(&mut self, table: &str, action: Option<String>) {
        if let Some(s) = self.tables.get_mut(table) {
            s.default_action = action;
        }
    }

    /// Snapshot one table's full shadow (rules including tombstones plus
    /// the default action), for mirroring into another shard.
    pub(crate) fn clone_table(&self, table: &str) -> Option<(Vec<StoredRule>, Option<String>)> {
        self.tables
            .get(table)
            .map(|s| (s.rules.clone(), s.default_action.clone()))
    }

    /// Replace one table's shadow with a snapshot, rebuilding the exact-key
    /// indexes. Used to refresh cross-shard mirrors at batch start.
    pub(crate) fn overwrite_table(
        &mut self,
        table: &str,
        rules: Vec<StoredRule>,
        default_action: Option<String>,
    ) {
        let Some(shadow) = self.tables.get_mut(table) else {
            return;
        };
        for idx in shadow.indexes.values_mut() {
            idx.clear();
        }
        for (id, stored) in rules.iter().enumerate() {
            for (&ki, idx) in shadow.indexes.iter_mut() {
                let v = stored.rule.key_values.get(ki).copied().unwrap_or(0);
                idx.entry(v).or_default().push(id);
            }
        }
        shadow.rules = rules;
        shadow.default_action = default_action;
    }

    /// Translate a rule into the control-variable assignment of its table
    /// site (hit = true, action selector, key values/masks, action data).
    fn rule_assignment(&self, desc: &TableDescriptor, rule: &RuleUpdate) -> Assignment {
        let mut out = Assignment::new();
        out.insert(Arc::from(desc.hit_var()), Value::Bool(true));
        let action_idx = desc
            .actions
            .iter()
            .position(|a| a.name == rule.action)
            .unwrap_or(0);
        out.insert(
            Arc::from(desc.action_var()),
            Value::bv(8, action_idx as u128),
        );
        for (i, k) in desc.keys.iter().enumerate() {
            let v = rule.key_values.get(i).copied().unwrap_or(0);
            let val = match k.sort {
                Sort::Bool => Value::Bool(v != 0),
                Sort::Bv(w) => Value::bv(w, v),
            };
            out.insert(Arc::from(desc.key_value_var(i)), val);
            if k.match_kind != "exact" {
                if let Sort::Bv(w) = k.sort {
                    let m = rule.key_masks.get(i).copied().unwrap_or(u128::MAX);
                    out.insert(Arc::from(desc.key_mask_var(i)), Value::bv(w, m));
                }
            }
        }
        out
    }

    /// Number of live rules in a table's shadow.
    pub fn shadow_size(&self, table: &str) -> usize {
        self.tables
            .get(table)
            .map(|s| s.rules.iter().filter(|r| r.live).count())
            .unwrap_or(0)
    }

    /// Live shadow rules of a table (for exporting to the interpreter).
    pub fn shadow_rules(&self, table: &str) -> Vec<RuleUpdate> {
        self.tables
            .get(table)
            .map(|s| {
                s.rules
                    .iter()
                    .filter(|r| r.live)
                    .map(|r| r.rule.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All qualified table names.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort();
        v
    }

    /// Rule stored at `(table, id)` — includes tombstones. Used by journal
    /// recovery to recognize entries that are already applied.
    pub(crate) fn stored_rule(&self, table: &str, id: usize) -> Option<&RuleUpdate> {
        self.tables
            .get(table)
            .and_then(|s| s.rules.get(id))
            .map(|r| &r.rule)
    }

    /// Deterministic digest of the full shadow state (rules including
    /// tombstones — rule ids are positional — plus default actions). Two
    /// shims with equal digests decide every future update identically.
    pub fn state_digest(&self) -> u64 {
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort();
        let mut render = String::new();
        for name in names {
            self.render_table_into(name, &mut render);
        }
        journal::fnv1a(render.as_bytes())
    }

    /// Render one table's shadow into the canonical digest format. The
    /// sharded shim digests by concatenating per-table renders from each
    /// table's owner shard, so a sharded digest equals the monolithic one.
    pub(crate) fn render_table_into(&self, name: &str, render: &mut String) {
        use std::fmt::Write;
        let Some(shadow) = self.tables.get(name) else {
            return;
        };
        let _ = writeln!(
            render,
            "T {name} default={}",
            shadow.default_action.as_deref().unwrap_or("-")
        );
        for (id, r) in shadow.rules.iter().enumerate() {
            let _ = writeln!(
                render,
                "R {id} {} {} {:x?} {:x?} {:x?}",
                r.live, r.rule.action, r.rule.key_values, r.rule.key_masks, r.rule.params
            );
        }
    }

    /// Audit the shadow state against every inferred assertion: each live
    /// rule must satisfy its table's single-table specs, and every live
    /// pair across a multi-table spec must satisfy the joint formula.
    /// Returns rendered violations (empty = the safety invariant holds).
    /// This is the campaign's ground truth that no invalid rule was ever
    /// admitted, independent of the accept/reject decision path.
    pub fn audit_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort();
        for name in names {
            let shadow = &self.tables[name];
            for &si in &shadow.spec_ids {
                let spec = &self.specs[si];
                for (rid, stored) in shadow.rules.iter().enumerate() {
                    if !stored.live {
                        continue;
                    }
                    let assignment = self.rule_assignment(&shadow.desc, &stored.rule);
                    match &spec.with_table {
                        None => {
                            if !holds(&spec.formula, &assignment) {
                                out.push(format!(
                                    "{name} rule {rid} violates {}",
                                    bf4_smt::to_sexpr(&spec.formula)
                                ));
                            }
                        }
                        Some(partner) => {
                            let Some(pshadow) = self.tables.get(partner) else {
                                continue;
                            };
                            for (pid, pstored) in pshadow.rules.iter().enumerate() {
                                if !pstored.live {
                                    continue;
                                }
                                let mut joint = assignment.clone();
                                joint.extend(self.rule_assignment(&pshadow.desc, &pstored.rule));
                                if !holds(&spec.formula, &joint) {
                                    out.push(format!(
                                        "{name} rule {rid} with {partner} rule {pid} violates {}",
                                        bf4_smt::to_sexpr(&spec.formula)
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Evaluate a spec formula under a (possibly partial) rule assignment;
/// unbound variables — e.g. parameters of actions other than the rule's —
/// default to zero/false, matching model-completion semantics.
fn holds(formula: &bf4_smt::Term, assignment: &Assignment) -> bool {
    let mut complete = assignment.clone();
    for (v, sort) in bf4_smt::free_vars(formula) {
        complete.entry(v).or_insert(match sort {
            Sort::Bool => Value::Bool(false),
            Sort::Bv(w) => Value::bv(w, 0),
        });
    }
    matches!(eval(formula, &complete), Ok(Value::Bool(true)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf4_core::driver::{verify, VerifyOptions};

    fn nat_shim() -> (Shim, bf4_core::driver::Report) {
        let report = verify(bf4_core::testutil::NAT_SOURCE, &VerifyOptions::default()).unwrap();
        let text = report.annotations.to_string();
        (Shim::from_text(&text).unwrap(), report)
    }

    fn nat_table(shim: &Shim) -> String {
        shim.table_names()
            .into_iter()
            .find(|t| t.ends_with(".nat"))
            .unwrap()
    }

    #[test]
    fn benign_rule_accepted() {
        let (mut shim, _) = nat_shim();
        let table = nat_table(&shim);
        // valid ipv4, full mask, hit action
        let d = shim
            .apply(&Update::Insert {
                table: table.clone(),
                rule: RuleUpdate {
                    key_values: vec![1, 0x0a000001],
                    key_masks: vec![u128::MAX, 0xffffffff],
                    action: "nat_hit_int_to_ext".into(),
                    params: vec![0xC0A80001, 7],
                },
            })
            .expect("benign rule must pass");
        assert!(d.rule_id.is_some());
        assert_eq!(shim.shadow_size(&table), 1);
    }

    #[test]
    fn faulty_rule_rejected_with_exception() {
        // The paper's §2.1 rule: ipv4 invalid + non-zero srcAddr mask.
        let (mut shim, _) = nat_shim();
        let table = nat_table(&shim);
        let err = shim
            .apply(&Update::Insert {
                table: table.clone(),
                rule: RuleUpdate {
                    key_values: vec![0, 0xC0000000],
                    key_masks: vec![u128::MAX, 0xff000000],
                    action: "nat_hit_int_to_ext".into(),
                    params: vec![0, 1],
                },
            })
            .unwrap_err();
        assert!(
            matches!(err, ShimError::AssertionViolated { .. }),
            "got {err:?}"
        );
        // rejected rules do not reach the shadow
        assert_eq!(shim.shadow_size(&table), 0);
    }

    #[test]
    fn zero_mask_rule_on_invalid_header_accepted() {
        // mask == 0 means the srcAddr is never read: safe even when the
        // validity key is 0 — the annotation must NOT block it
        // (maximal permissiveness).
        let (mut shim, _) = nat_shim();
        let table = nat_table(&shim);
        shim.apply(&Update::Insert {
            table,
            rule: RuleUpdate {
                key_values: vec![0, 0],
                key_masks: vec![u128::MAX, 0],
                action: "drop_".into(),
                params: vec![],
            },
        })
        .expect("mask-0 rule is safe and must be accepted");
    }

    #[test]
    fn duplicate_rejected() {
        let (mut shim, _) = nat_shim();
        let table = nat_table(&shim);
        let rule = RuleUpdate {
            key_values: vec![1, 0x0a000001],
            key_masks: vec![u128::MAX, 0xffffffff],
            action: "drop_".into(),
            params: vec![],
        };
        shim.apply(&Update::Insert {
            table: table.clone(),
            rule: rule.clone(),
        })
        .unwrap();
        let err = shim
            .apply(&Update::Insert { table, rule })
            .unwrap_err();
        assert_eq!(err, ShimError::Duplicate);
    }

    #[test]
    fn delete_then_reinsert() {
        let (mut shim, _) = nat_shim();
        let table = nat_table(&shim);
        let rule = RuleUpdate {
            key_values: vec![1, 0x0a000001],
            key_masks: vec![u128::MAX, 0xffffffff],
            action: "drop_".into(),
            params: vec![],
        };
        let d = shim
            .apply(&Update::Insert {
                table: table.clone(),
                rule: rule.clone(),
            })
            .unwrap();
        shim.apply(&Update::Delete {
            table: table.clone(),
            rule_id: d.rule_id.unwrap(),
        })
        .unwrap();
        assert_eq!(shim.shadow_size(&table), 0);
        shim.apply(&Update::Insert { table, rule }).unwrap();
    }

    #[test]
    fn malformed_updates_rejected() {
        let (mut shim, _) = nat_shim();
        let table = nat_table(&shim);
        let err = shim
            .apply(&Update::Insert {
                table: table.clone(),
                rule: RuleUpdate {
                    key_values: vec![1],
                    key_masks: vec![u128::MAX],
                    action: "drop_".into(),
                    params: vec![],
                },
            })
            .unwrap_err();
        assert!(matches!(err, ShimError::Malformed(_)));
        let err = shim
            .apply(&Update::Insert {
                table,
                rule: RuleUpdate {
                    key_values: vec![1, 2],
                    key_masks: vec![u128::MAX, u128::MAX],
                    action: "ghost".into(),
                    params: vec![],
                },
            })
            .unwrap_err();
        assert!(matches!(err, ShimError::UnknownAction(_)));
    }

    #[test]
    fn unsafe_default_rejected() {
        let (mut shim, report) = nat_shim();
        // nat_miss_ext_to_int participates in the egress-spec bug, so the
        // original program's annotations flag it (the fixed program clears
        // it via the drop fix; check against the pre-fix list if present).
        if report
            .annotations
            .unsafe_defaults
            .iter()
            .any(|(_, a)| a == "nat_miss_ext_to_int")
        {
            let table = nat_table(&shim);
            let err = shim
                .apply(&Update::SetDefault {
                    table,
                    action: "nat_miss_ext_to_int".into(),
                })
                .unwrap_err();
            assert!(matches!(err, ShimError::UnsafeDefault { .. }));
        }
    }

    #[test]
    fn insertions_emit_shim_spans() {
        let (_, report) = nat_shim();
        let mut shim = JournaledShim::new(&report.annotations);
        let table = nat_table(shim.shim());
        let rule = RuleUpdate {
            key_values: vec![1, 0x0a000001],
            key_masks: vec![u128::MAX, 0xffffffff],
            action: "drop_".into(),
            params: vec![],
        };
        bf4_obs::set_enabled(true);
        shim.apply(&Update::Insert {
            table: table.clone(),
            rule: rule.clone(),
        })
        .unwrap();
        // Same rule again: rejected as a duplicate.
        let _ = shim.apply(&Update::Insert { table, rule }).unwrap_err();
        bf4_obs::set_enabled(false);
        // The registry is process-global; keep only this thread's shim
        // spans so parallel tests cannot interfere.
        let me = bf4_obs::current_thread_id();
        let records: Vec<bf4_obs::SpanRecord> = bf4_obs::take_spans()
            .into_iter()
            .filter(|r| r.thread == me && r.layer == "shim")
            .collect();
        let outcome = |r: &bf4_obs::SpanRecord| {
            r.tags
                .iter()
                .find(|(k, _)| *k == "outcome")
                .map(|(_, v)| v.clone())
        };
        assert!(records
            .iter()
            .any(|r| r.name == "apply" && outcome(r).as_deref() == Some("accepted")));
        assert!(records
            .iter()
            .any(|r| r.name == "apply" && outcome(r).as_deref() == Some("rejected")));
        // Accepted updates are journaled under their own span.
        assert!(records.iter().any(|r| r.name == "journal_append"));
    }

    #[test]
    fn latency_measured() {
        let (mut shim, _) = nat_shim();
        let table = nat_table(&shim);
        let d = shim
            .apply(&Update::Insert {
                table,
                rule: RuleUpdate {
                    key_values: vec![1, 1],
                    key_masks: vec![u128::MAX, u128::MAX],
                    action: "drop_".into(),
                    params: vec![],
                },
            })
            .unwrap();
        assert!(d.latency < Duration::from_millis(100));
        assert!(d.assertions_checked >= 1);
    }
}
