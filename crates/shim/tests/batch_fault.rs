//! Injected faults on the batch path: torn group commits, poisoned
//! shard workers, and simulated journal overload.
//!
//! Own integration-test binary — fault plans are process-global — and
//! the tests serialize on a local mutex because the default harness runs
//! `#[test]` fns on concurrent threads.

use bf4_core::driver::{verify, VerifyOptions};
use bf4_core::specs::AnnotationFile;
use bf4_obs::FaultPlan;
use bf4_shim::controller::{Controller, WorkloadConfig};
use bf4_shim::{Batch, ShardedShim, ShimConfig, ShimError};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn nat_annotations() -> AnnotationFile {
    verify(bf4_core::testutil::NAT_SOURCE, &VerifyOptions::default())
        .unwrap()
        .annotations
}

fn benign_batches(annotations: &AnnotationFile, updates: usize, batch: usize) -> Vec<Batch> {
    bf4_shim::campaign::chunk(
        Controller::new(
            annotations,
            WorkloadConfig {
                updates,
                faulty_fraction: 0.0,
                delete_fraction: 0.0,
                seed: 17,
                ..WorkloadConfig::default()
            },
        )
        .workload(),
        batch,
    )
}

#[test]
fn torn_group_commit_never_splits_or_acks_a_batch() {
    let _guard = serialize();
    let annotations = nat_annotations();
    let path = std::env::temp_dir().join(format!(
        "bf4-batch-torn-{}.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let shim = ShardedShim::new(
        &annotations,
        &ShimConfig {
            shards: 3,
            max_inflight: usize::MAX,
            journal_path: Some(path.clone()),
            fsync_per_update: false,
        },
    )
    .unwrap();
    let batches = benign_batches(&annotations, 20, 4);

    // The second group commit tears half-way.
    bf4_obs::fault::install(FaultPlan::parse("shim.batch_torn=@2").unwrap());

    shim.apply_batch(&batches[0]).expect("first batch is clean");
    let pre_digest = shim.state_digest();
    let pre_journal = shim.journal_bytes();

    let rej = shim
        .apply_batch(&batches[1])
        .expect_err("torn commit must fail the batch");
    assert_eq!(rej.index, None);
    assert!(
        matches!(rej.error, ShimError::JournalFailed(_)),
        "expected JournalFailed, got {}",
        rej.error
    );
    assert_eq!(
        shim.state_digest(),
        pre_digest,
        "torn batch must roll back the shadow state whole"
    );
    assert_eq!(shim.journal_bytes(), pre_journal);

    // The on-disk file really is torn right now — a crash here must
    // recover the acknowledged prefix only and drop the half frame.
    let torn = std::fs::read(&path).unwrap();
    assert!(torn.len() > pre_journal.len(), "the tear left partial bytes behind");
    let (crashed, rec) = ShardedShim::recover(
        &annotations,
        &torn,
        &ShimConfig {
            shards: 3,
            max_inflight: usize::MAX,
            journal_path: None,
            fsync_per_update: false,
        },
    )
    .unwrap();
    assert_eq!(rec.frames, 1);
    assert_eq!(rec.mismatched, 0);
    assert!(rec.torn_tail, "the half frame must be detected and dropped whole");
    assert_eq!(crashed.state_digest(), pre_digest);

    // No crash happened, though: the next append heals the file and the
    // rejected batch goes through on retry (fault was a one-shot).
    shim.apply_batch(&batches[1]).expect("retry after heal");
    for b in &batches[2..] {
        shim.apply_batch(b).expect("clean tail");
    }
    let stats = bf4_obs::fault::clear();
    let site = stats.iter().find(|s| s.site == "shim.batch_torn").unwrap();
    assert_eq!(site.fires, 1);

    let disk = std::fs::read(&path).unwrap();
    assert_eq!(disk, shim.journal_bytes(), "healed file must equal the durable buf");
    let (recovered, rec) = ShardedShim::recover(
        &annotations,
        &disk,
        &ShimConfig {
            shards: 6,
            max_inflight: usize::MAX,
            journal_path: None,
            fsync_per_update: false,
        },
    )
    .unwrap();
    assert_eq!(rec.frames as u64, shim.stats().batches_acked);
    assert!(!rec.torn_tail);
    assert_eq!(recovered.state_digest(), shim.state_digest());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn poisoned_shard_rolls_back_mid_batch() {
    let _guard = serialize();
    let annotations = nat_annotations();
    let shim = ShardedShim::new(&annotations, &ShimConfig::default()).unwrap();
    let batches = benign_batches(&annotations, 24, 6);

    shim.apply_batch(&batches[0]).expect("clean warmup");
    let pre_digest = shim.state_digest();

    // The worker panics while staging the third update of the next
    // batch — two updates are already staged and must be unwound.
    bf4_obs::fault::install(FaultPlan::parse("shim.shard_poison=@3").unwrap());
    let rej = shim
        .apply_batch(&batches[1])
        .expect_err("poisoned worker must reject the batch");
    assert_eq!(rej.index, None);
    assert!(
        matches!(rej.error, ShimError::ShardPoisoned { .. }),
        "expected ShardPoisoned, got {}",
        rej.error
    );
    assert_eq!(
        shim.state_digest(),
        pre_digest,
        "partially staged batch must roll back whole"
    );

    // The pool keeps serving: the same batch passes once the one-shot
    // fault is exhausted, and the audit stays clean.
    shim.apply_batch(&batches[1]).expect("retry after poison");
    let stats = bf4_obs::fault::clear();
    let site = stats.iter().find(|s| s.site == "shim.shard_poison").unwrap();
    assert_eq!(site.fires, 1);
    assert!(shim.audit_violations().is_empty());
    assert_eq!(shim.stats().batches_acked, 2);
}

#[test]
fn overload_fault_sheds_then_service_resumes() {
    let _guard = serialize();
    let annotations = nat_annotations();
    let shim = ShardedShim::new(&annotations, &ShimConfig::default()).unwrap();
    let batches = benign_batches(&annotations, 12, 4);

    bf4_obs::fault::install(FaultPlan::parse("shim.overload=@1").unwrap());
    let rej = shim
        .apply_batch(&batches[0])
        .expect_err("overload fault must shed");
    assert!(
        matches!(rej.error, ShimError::Overloaded { .. }),
        "expected Overloaded, got {}",
        rej.error
    );
    bf4_obs::fault::clear();

    for b in &batches {
        shim.apply_batch(b).expect("service resumes after shedding");
    }
    let stats = shim.stats();
    assert_eq!(stats.batches_shed, 1);
    assert_eq!(stats.batches_acked as usize, batches.len());
}
