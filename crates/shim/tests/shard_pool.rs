//! Shard-pool concurrency properties of the sharded shim.
//!
//! * Validation verdicts and the state digest are independent of the
//!   shard count — the monolithic shim is the reference semantics and
//!   every pool size must reproduce it byte for byte.
//! * Multi-table assertions hold across shard boundaries: a violating
//!   pair is rejected even when the two tables live on different shards
//!   (the two-phase lock + mirror path).
//! * Verdict *counts*, journal recovery, and the assertion audit are
//!   independent of thread interleaving.
//! * Admission control sheds deterministically with `Overloaded` and
//!   leaves no trace in shadow state or journal.

use bf4_core::driver::{verify, VerifyOptions};
use bf4_core::specs::AnnotationFile;
use bf4_shim::controller::{Controller, WorkloadConfig};
use bf4_shim::{
    Batch, BatchReject, RuleUpdate, ShardedShim, Shim, ShimConfig, ShimError, Update,
};

fn nat_annotations() -> AnnotationFile {
    verify(bf4_core::testutil::NAT_SOURCE, &VerifyOptions::default())
        .unwrap()
        .annotations
}

fn sharded(annotations: &AnnotationFile, shards: usize) -> ShardedShim {
    ShardedShim::new(
        annotations,
        &ShimConfig {
            shards,
            max_inflight: usize::MAX,
            journal_path: None,
            fsync_per_update: false,
        },
    )
    .unwrap()
}

/// Render a batch outcome into a comparable verdict string.
fn verdict(r: &Result<bf4_shim::BatchDecision, BatchReject>) -> String {
    match r {
        Ok(d) => format!("ok ids={:?}", d.rule_ids),
        Err(rej) => format!("reject at {:?}: {}", rej.index, rej.error),
    }
}

#[test]
fn verdicts_and_digest_independent_of_shard_count() {
    let annotations = nat_annotations();
    let updates = Controller::new(
        &annotations,
        WorkloadConfig {
            updates: 240,
            faulty_fraction: 0.15,
            delete_fraction: 0.1,
            seed: 21,
            ..WorkloadConfig::default()
        },
    )
    .workload();
    let batches = bf4_shim::campaign::chunk(updates.clone(), 5);

    let mut reference: Option<(Vec<String>, u64)> = None;
    for shards in [1usize, 2, 4, 7] {
        let shim = sharded(&annotations, shards);
        let verdicts: Vec<String> = batches
            .iter()
            .map(|b| verdict(&shim.apply_batch(b)))
            .collect();
        let digest = shim.state_digest();
        match &reference {
            None => reference = Some((verdicts, digest)),
            Some((ref_verdicts, ref_digest)) => {
                assert_eq!(
                    &verdicts, ref_verdicts,
                    "verdict sequence diverged at {shards} shards"
                );
                assert_eq!(digest, *ref_digest, "state digest diverged at {shards} shards");
            }
        }
    }

    // At batch size 1 the sharded shim must agree with the monolithic
    // shim update for update: same ok/err, same rule ids, same digest.
    let shim = sharded(&annotations, 4);
    let mut mono = Shim::new(&annotations);
    for u in &updates {
        let sharded_out = shim.apply_batch(&Batch {
            updates: vec![u.clone()],
        });
        let mono_out = mono.apply(u);
        match (&sharded_out, &mono_out) {
            (Ok(d), Ok(m)) => assert_eq!(d.rule_ids, vec![m.rule_id]),
            (Err(rej), Err(e)) => {
                assert_eq!(rej.index, Some(0));
                assert_eq!(rej.error.to_string(), e.to_string());
            }
            _ => panic!(
                "sharded and monolithic verdicts diverged: {:?} vs {:?}",
                sharded_out.as_ref().map(|d| &d.rule_ids),
                mono_out.as_ref().map(|d| d.rule_id)
            ),
        }
    }
    assert_eq!(shim.state_digest(), mono.state_digest());
}

/// Two single-key tables tied by a multi-table assertion: no live pair
/// may have key value 1 in both tables at once.
const JOINT_ANNOTATIONS: &str = "\
TABLE ig.alpha SITE pcn.alpha#0
  KEY 0 exact f.a bv8
  ACTION 0 act 0
;
TABLE ig.beta SITE pcn.beta#0
  KEY 0 exact f.b bv8
  ACTION 0 act 0
;
ASSERT ON ig.alpha WITH ig.beta ORIGIN multi-table
  WHERE (not (and (= (var pcn.alpha#0.key0.value bv8) (bv 8 1)) (= (var pcn.beta#0.key0.value bv8) (bv 8 1))))
;
";

fn insert(table: &str, k: u128) -> Update {
    Update::Insert {
        table: table.to_string(),
        rule: RuleUpdate {
            key_values: vec![k],
            key_masks: vec![0],
            action: "act".to_string(),
            params: vec![],
        },
    }
}

#[test]
fn joint_specs_enforced_across_shard_boundaries() {
    let annotations = AnnotationFile::parse(JOINT_ANNOTATIONS).unwrap();

    // Find a pool size that actually separates the two tables — the
    // cross-shard lock + mirror path is what this test is about.
    let shards = (2..=8)
        .find(|&n| {
            let s = sharded(&annotations, n);
            s.owner_shard("ig.alpha") != s.owner_shard("ig.beta")
        })
        .expect("some pool size must split the two tables");
    let shim = sharded(&annotations, shards);
    assert_ne!(shim.owner_shard("ig.alpha"), shim.owner_shard("ig.beta"));

    // alpha k=1 alone is fine; beta k=2 is fine; beta k=1 joins alpha
    // k=1 into a violating pair and must be rejected whole-batch.
    let d = shim
        .apply_batch(&Batch {
            updates: vec![insert("ig.alpha", 1), insert("ig.beta", 2)],
        })
        .expect("benign batch");
    assert_eq!(d.rule_ids, vec![Some(0), Some(0)]);
    let pre = shim.state_digest();

    let rej = shim
        .apply_batch(&Batch {
            updates: vec![insert("ig.beta", 1)],
        })
        .expect_err("violating pair must be rejected");
    assert_eq!(rej.index, Some(0));
    match &rej.error {
        ShimError::AssertionViolated { table, partner, .. } => {
            assert_eq!(table, "ig.beta");
            assert_eq!(partner.as_deref_pair(), Some(("ig.alpha", 0)));
        }
        e => panic!("expected AssertionViolated, got {e}"),
    }
    assert_eq!(shim.state_digest(), pre, "rejected batch must leave no trace");

    // The same violation caught from the other side: a fresh shim with
    // beta k=1 live rejects alpha k=1 via the primary-spec path.
    let other = sharded(&annotations, shards);
    other
        .apply_batch(&Batch {
            updates: vec![insert("ig.beta", 1)],
        })
        .expect("beta alone is fine");
    let rej = other
        .apply_batch(&Batch {
            updates: vec![insert("ig.alpha", 1)],
        })
        .expect_err("violating pair must be rejected from either side");
    match &rej.error {
        ShimError::AssertionViolated { table, partner, .. } => {
            assert_eq!(table, "ig.alpha");
            assert_eq!(partner.as_deref_pair(), Some(("ig.beta", 0)));
        }
        e => panic!("expected AssertionViolated, got {e}"),
    }

    // Deleting the alpha rule dissolves the pair; beta k=1 now passes.
    // A *single batch* staging both (delete then insert) must also pass:
    // the mirror sees the staged delete.
    shim.apply_batch(&Batch {
        updates: vec![
            Update::Delete {
                table: "ig.alpha".to_string(),
                rule_id: 0,
            },
            insert("ig.beta", 1),
        ],
    })
    .expect("staged delete must free the partner slot within the batch");
    assert_eq!(shim.shadow_size("ig.alpha"), 0);
    assert_eq!(shim.shadow_size("ig.beta"), 2);
    assert!(shim.audit_violations().is_empty());

    // Verdict parity for the full scenario against a single-shard pool.
    let single = sharded(&annotations, 1);
    for b in [
        Batch {
            updates: vec![insert("ig.alpha", 1), insert("ig.beta", 2)],
        },
        Batch {
            updates: vec![insert("ig.beta", 1)],
        },
        Batch {
            updates: vec![
                Update::Delete {
                    table: "ig.alpha".to_string(),
                    rule_id: 0,
                },
                insert("ig.beta", 1),
            ],
        },
    ] {
        let _ = single.apply_batch(&b);
    }
    assert_eq!(single.state_digest(), shim.state_digest());
}

trait PartnerExt {
    fn as_deref_pair(&self) -> Option<(&str, usize)>;
}

impl PartnerExt for Option<(String, usize)> {
    fn as_deref_pair(&self) -> Option<(&str, usize)> {
        self.as_ref().map(|(t, i)| (t.as_str(), *i))
    }
}

#[test]
fn verdict_counts_independent_of_thread_interleaving() {
    let annotations = nat_annotations();
    let updates = Controller::new(
        &annotations,
        WorkloadConfig {
            updates: 300,
            faulty_fraction: 0.3,
            delete_fraction: 0.0,
            seed: 33,
            ..WorkloadConfig::default()
        },
    )
    .workload();

    // Reference: sequential monolithic verdicts. With inserts only and
    // pairwise assertions, acceptance of each benign rule is independent
    // of which subset of the other benign rules is present, so the
    // accept/reject *counts* are interleaving-invariant.
    let mut mono = Shim::new(&annotations);
    let expect_accepted = updates.iter().filter(|u| mono.apply(u).is_ok()).count();
    let expect_rejected = updates.len() - expect_accepted;
    assert!(expect_accepted > 0 && expect_rejected > 0, "workload must mix");

    let path = std::env::temp_dir().join(format!(
        "bf4-shard-interleave-{}.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let shim = ShardedShim::new(
        &annotations,
        &ShimConfig {
            shards: 4,
            max_inflight: usize::MAX,
            journal_path: Some(path.clone()),
            fsync_per_update: false,
        },
    )
    .unwrap();

    // Single-update batches pulled by 4 threads from a shared cursor —
    // the interleaving is whatever the scheduler gives us.
    let batches: Vec<Batch> = updates
        .iter()
        .map(|u| Batch {
            updates: vec![u.clone()],
        })
        .collect();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let accepted = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(b) = batches.get(i) else { break };
                if shim.apply_batch(b).is_ok() {
                    accepted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });
    let accepted = accepted.into_inner();
    assert_eq!(accepted, expect_accepted, "accept count depends on interleaving");
    let stats = shim.stats();
    assert_eq!(stats.batches_acked as usize, expect_accepted);
    assert_eq!(stats.batches_rejected as usize, expect_rejected);
    assert_eq!(stats.batches_shed, 0);

    // Nothing invalid got through under any interleaving, and the
    // journal reproduces exactly the live state.
    assert!(shim.audit_violations().is_empty());
    let disk = std::fs::read(&path).unwrap();
    let (recovered, rec) = ShardedShim::recover(
        &annotations,
        &disk,
        &ShimConfig {
            shards: 3,
            max_inflight: usize::MAX,
            journal_path: None,
            fsync_per_update: false,
        },
    )
    .unwrap();
    assert_eq!(rec.frames, expect_accepted);
    assert_eq!(rec.mismatched, 0);
    assert!(!rec.torn_tail);
    assert_eq!(recovered.state_digest(), shim.state_digest());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn overload_sheds_whole_batches_without_trace() {
    let annotations = nat_annotations();
    let updates = Controller::new(
        &annotations,
        WorkloadConfig {
            updates: 30,
            faulty_fraction: 0.0,
            delete_fraction: 0.0,
            seed: 7,
            ..WorkloadConfig::default()
        },
    )
    .workload();
    let shim = ShardedShim::new(
        &annotations,
        &ShimConfig {
            shards: 2,
            max_inflight: 0,
            journal_path: None,
            fsync_per_update: false,
        },
    )
    .unwrap();
    for b in bf4_shim::campaign::chunk(updates, 4) {
        let rej = shim.apply_batch(&b).expect_err("max_inflight=0 sheds all");
        assert_eq!(rej.index, None);
        assert!(
            matches!(rej.error, ShimError::Overloaded { limit: 0, .. }),
            "expected Overloaded, got {}",
            rej.error
        );
    }
    let stats = shim.stats();
    assert_eq!(stats.batches_acked, 0);
    assert_eq!(stats.batches_shed, 8);
    assert!(shim.journal_bytes().is_empty(), "shed batches must not journal");
    assert_eq!(shim.state_digest(), sharded(&annotations, 2).state_digest());
}
