//! Property: batch apply is all-or-nothing under a crash at *any* byte
//! offset of the journal.
//!
//! The fixture runs a mixed workload through a sharded shim once,
//! snapshotting the journal length and state digest after every
//! acknowledged batch — the only durable points a crash can legally
//! expose. Recovery from the journal cut at an arbitrary byte offset
//! must then reconstruct exactly the state of the last batch boundary at
//! or before the cut: every acknowledged batch up to the boundary
//! survives whole, the partial frame after it vanishes whole, and no
//! replay entry contradicts the journal.

use bf4_core::driver::{verify, VerifyOptions};
use bf4_core::specs::AnnotationFile;
use bf4_shim::controller::{Controller, WorkloadConfig};
use bf4_shim::{ShardedShim, ShimConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

struct Fixture {
    annotations: AnnotationFile,
    /// Full journal bytes after the whole workload.
    bytes: Vec<u8>,
    /// `boundaries[k]` = journal length after `k` acknowledged batches
    /// (`boundaries[0] == 0`).
    boundaries: Vec<usize>,
    /// `digests[k]` = state digest after `k` acknowledged batches.
    digests: Vec<u64>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let annotations = verify(bf4_core::testutil::NAT_SOURCE, &VerifyOptions::default())
            .unwrap()
            .annotations;
        let updates = Controller::new(
            &annotations,
            WorkloadConfig {
                updates: 260,
                faulty_fraction: 0.2,
                delete_fraction: 0.1,
                seed: 11,
                ..WorkloadConfig::default()
            },
        )
        .workload();
        let shim = ShardedShim::new(
            &annotations,
            &ShimConfig {
                shards: 3,
                max_inflight: usize::MAX,
                journal_path: None,
                fsync_per_update: false,
            },
        )
        .unwrap();
        let mut boundaries = vec![0usize];
        let mut digests = vec![shim.state_digest()];
        // Varied batch sizes so frames have different shapes and the
        // cut space covers headers, entries, and trailers of each.
        let mut it = updates.into_iter().peekable();
        let mut i = 0usize;
        while it.peek().is_some() {
            let batch = bf4_shim::Batch {
                updates: it.by_ref().take(1 + i % 5).collect(),
            };
            i += 1;
            if shim.apply_batch(&batch).is_ok() {
                boundaries.push(shim.journal_bytes().len());
                digests.push(shim.state_digest());
            }
        }
        assert!(boundaries.len() > 20, "fixture produced too few acked batches");
        Fixture {
            annotations,
            bytes: shim.journal_bytes(),
            boundaries,
            digests,
        }
    })
}

/// Recover from `bytes[..cut]` and assert the all-or-nothing contract.
fn check_cut(fix: &Fixture, cut: usize) {
    // The last legal durable point at or before the cut.
    let k = fix
        .boundaries
        .iter()
        .rposition(|&b| b <= cut)
        .expect("boundary 0 always qualifies");
    let (shim, rec) = ShardedShim::recover(
        &fix.annotations,
        &fix.bytes[..cut],
        &ShimConfig {
            shards: 5,
            max_inflight: usize::MAX,
            journal_path: None,
            fsync_per_update: false,
        },
    )
    .unwrap();
    assert_eq!(
        rec.frames, k,
        "cut at {cut}: exactly the {k} fully committed batches must replay"
    );
    assert_eq!(rec.mismatched, 0, "cut at {cut}: replay contradicted the journal");
    assert_eq!(
        rec.torn_tail,
        cut != fix.boundaries[k],
        "cut at {cut}: torn tail iff the cut is not on a batch boundary"
    );
    assert_eq!(
        shim.state_digest(),
        fix.digests[k],
        "cut at {cut}: recovered state must be the last batch boundary"
    );
    // The healed journal holds exactly the valid prefix, so recovery
    // is idempotent: recovering again changes nothing.
    assert_eq!(shim.journal_bytes(), &fix.bytes[..fix.boundaries[k]]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn batch_apply_all_or_nothing_at_any_cut(ppm in 0u32..=1_000_000) {
        let fix = fixture();
        let cut = (fix.bytes.len() as u64 * ppm as u64 / 1_000_000) as usize;
        check_cut(fix, cut.min(fix.bytes.len()));
    }
}

/// Deterministic sweep of the interesting cuts: exactly on each batch
/// boundary, one byte before (trailer newline severed), and one byte
/// after (header started) — the edges the sampler might miss.
#[test]
fn batch_boundaries_and_neighbors_are_exact() {
    let fix = fixture();
    for &b in &fix.boundaries {
        for cut in [b.saturating_sub(1), b, (b + 1).min(fix.bytes.len())] {
            check_cut(fix, cut);
        }
    }
}
