//! Satellite: an fsync error injected mid-`persist`, then reopen.
//!
//! Proves the journal's two crash-safety promises under a *failed*
//! persist that left a torn file behind:
//!
//! * **no torn record is replayed** — recovery salvages exactly the valid
//!   prefix, with zero mismatches;
//! * **no acknowledged rule is lost** — the in-memory journal still holds
//!   every acknowledged update, so retrying the persist (the fault is a
//!   one-shot) lands the full state, and a reopen from that file
//!   reconstructs a state digest identical to the original shim's.
//!
//! Own integration-test binary: the fault plan is process-global.

use bf4_core::driver::{verify, VerifyOptions};
use bf4_obs::FaultPlan;
use bf4_shim::controller::{Controller, WorkloadConfig};
use bf4_shim::journal::JournaledShim;

#[test]
fn fsync_fault_mid_persist_then_reopen_loses_nothing() {
    let annotations = verify(bf4_core::testutil::NAT_SOURCE, &VerifyOptions::default())
        .unwrap()
        .annotations;
    let updates = Controller::new(
        &annotations,
        WorkloadConfig {
            updates: 60,
            faulty_fraction: 0.2,
            delete_fraction: 0.2,
            seed: 5,
            ..WorkloadConfig::default()
        },
    )
    .workload();

    let mut shim = JournaledShim::new(&annotations);
    let mut accepted = 0usize;
    for u in &updates {
        if shim.apply(u).is_ok() {
            accepted += 1;
        }
    }
    assert!(accepted > 10, "workload produced too few accepted updates");

    let path = std::env::temp_dir().join(format!(
        "bf4-journal-fault-{}.jnl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    // First persist: the injected fsync fault tears the write midway.
    bf4_obs::fault::install(FaultPlan::parse("shim.journal_fsync=@1").unwrap());
    let err = shim.persist_err(&path);
    assert!(
        err.to_string().contains("injected"),
        "persist must surface the injected error, got: {err}"
    );
    let torn = std::fs::read(&path).unwrap();
    assert!(
        !torn.is_empty() && torn.len() < shim.journal().bytes().len(),
        "the torn file must hold a strict prefix of the journal"
    );

    // Reopen from the torn file: a clean prefix, nothing invented.
    let (recovered, report) = JournaledShim::recover(&annotations, &torn);
    assert_eq!(report.mismatched, 0, "no torn record may be replayed");
    assert!(
        report.truncated_tail,
        "the cut record must be detected and dropped"
    );
    assert!(
        report.replayed + report.skipped < accepted,
        "the torn file cannot already hold every acknowledged update"
    );
    assert!(recovered.journal().bytes().len() <= torn.len());

    // The acknowledged state was never lost: it lives in the original
    // shim's journal, and the retry (fault exhausted after @1) persists
    // it all. A reopen then reconstructs the exact same shadow state.
    shim.persist_ok(&path);
    let stats = bf4_obs::fault::clear();
    let site = stats.iter().find(|s| s.site == "shim.journal_fsync").unwrap();
    assert_eq!((site.fires, site.hits), (1, 2));

    let full = std::fs::read(&path).unwrap();
    let (reopened, report) = JournaledShim::recover(&annotations, &full);
    assert_eq!(report.mismatched, 0);
    assert!(!report.truncated_tail);
    assert_eq!(
        report.replayed + report.skipped,
        accepted,
        "every acknowledged update must survive the failed persist + retry"
    );
    assert_eq!(
        reopened.shim().state_digest(),
        shim.shim().state_digest(),
        "reopened shadow state must match the original"
    );
    let _ = std::fs::remove_file(&path);
}

/// Small helpers keeping the test body readable.
trait PersistExt {
    fn persist_err(&self, path: &std::path::Path) -> std::io::Error;
    fn persist_ok(&self, path: &std::path::Path);
}

impl PersistExt for JournaledShim {
    fn persist_err(&self, path: &std::path::Path) -> std::io::Error {
        self.journal()
            .persist(path)
            .expect_err("armed fsync fault must fail the persist")
    }

    fn persist_ok(&self, path: &std::path::Path) {
        self.journal()
            .persist(path)
            .expect("retry after the one-shot fault must succeed");
    }
}
