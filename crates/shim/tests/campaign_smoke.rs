//! End-to-end smoke of the staged-load stress campaign: all four stages
//! run, faults fire mid-burst, the crash/reopen loses nothing, the audit
//! finds no invalid rule, group commit beats per-update fsync, and the
//! JSON report round-trips through the minimal parser `report regress`
//! uses.
//!
//! Own integration-test binary: the campaign installs a process-global
//! fault plan for its fault stage.

use bf4_core::driver::{verify, VerifyOptions};
use bf4_shim::campaign::{run_campaign, CampaignConfig};

#[test]
fn campaign_passes_its_own_gates() {
    let annotations = verify(bf4_core::testutil::NAT_SOURCE, &VerifyOptions::default())
        .unwrap()
        .annotations;
    let config = CampaignConfig {
        threads: 3,
        warmup: 80,
        burst: 240,
        fault: 240,
        drain: 120,
        throughput_updates: 160,
        dir: std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")),
        ..CampaignConfig::default()
    };
    let report = run_campaign(&annotations, &config).expect("campaign must run");

    let gates = report.gate_violations();
    assert!(gates.is_empty(), "campaign gate violations: {gates:?}");

    assert_eq!(
        report.stages.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
        ["warmup", "burst", "fault", "drain"]
    );
    for s in &report.stages {
        assert!(s.acked > 0, "stage {} acknowledged nothing", s.name);
        assert!(s.latency.p50 <= s.latency.p90 && s.latency.p90 <= s.latency.p99);
    }
    assert!(report.faults_armed);
    assert!(report.fault_fires > 0, "the fault stage must actually fire faults");
    let fault_stage = &report.stages[2];
    assert!(
        fault_stage.journal_failed + fault_stage.poisoned + fault_stage.shed > 0,
        "injected faults must surface as batch outcomes"
    );
    assert_eq!(report.recovery.acked_lost, 0);
    assert!(report.recovery.digest_match);
    assert_eq!(report.audit.invalid_admitted, 0);
    assert!(report.audit.live_rules > 0);
    assert!(
        report.throughput.speedup > 1.0,
        "group commit must beat per-update fsync (got {:.2}x)",
        report.throughput.speedup
    );
    assert!(report.throughput.group_fsyncs < report.throughput.per_update_fsyncs);

    // The human rendering mentions every stage and the gate lines.
    let text = report.render_text();
    for needle in ["warmup", "drain", "recovery:", "audit:", "throughput:"] {
        assert!(text.contains(needle), "render_text missing {needle:?}:\n{text}");
    }

    // The JSON report parses with the in-tree minimal parser and carries
    // the fields `report regress` gates on.
    let json = report.to_json();
    let v = bf4_obs::json::parse(&json).expect("BENCH_shim.json must parse");
    let root = v.as_obj().expect("top-level object");
    assert_eq!(root.get("bench").and_then(|b| b.as_str()), Some("shim"));
    let num = |path: &[&str]| -> f64 {
        let mut cur = &v;
        for p in path {
            cur = cur
                .as_obj()
                .and_then(|o| o.get(*p))
                .unwrap_or_else(|| panic!("missing {path:?}"));
        }
        match cur {
            bf4_obs::json::Value::Num(n) => *n,
            _ => panic!("{path:?} not numeric"),
        }
    };
    assert_eq!(num(&["recovery", "acked_lost"]), 0.0);
    assert_eq!(num(&["audit", "invalid_admitted"]), 0.0);
    assert!(num(&["throughput", "speedup"]) > 1.0);
    assert!(num(&["stages", "burst", "p99_us"]) >= num(&["stages", "burst", "p50_us"]));
}
