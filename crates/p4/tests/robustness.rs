//! Frontend robustness: the lexer/parser/typechecker must return errors —
//! never panic — on arbitrarily mutated inputs. Seeds come from a real
//! program so mutations explore near-valid syntax.

use proptest::prelude::*;

const SEED: &str = r#"
    header h_t { bit<8> f; }
    struct headers { h_t h; }
    struct meta_t { bit<8> m; }
    parser P(packet_in pkt, out headers hdr, inout meta_t meta, inout standard_metadata_t sm) {
        state start { pkt.extract(hdr.h); transition accept; }
    }
    control I(inout headers hdr, inout meta_t meta, inout standard_metadata_t sm) {
        action a(bit<9> p) { sm.egress_spec = p; }
        table t { key = { hdr.h.f: exact; } actions = { a; } default_action = a(0); }
        apply { t.apply(); }
    }
    control E(inout headers hdr, inout meta_t meta, inout standard_metadata_t sm) { apply {} }
    control V(inout headers hdr, inout meta_t meta) { apply {} }
    control C(inout headers hdr, inout meta_t meta) { apply {} }
    control D(packet_out pkt, in headers hdr) { apply {} }
    V1Switch(P(), V(), I(), E(), C(), D()) main;
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn truncation_never_panics(cut in 0usize..SEED.len()) {
        // Cut at a char boundary.
        let mut cut = cut;
        while !SEED.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = bf4_p4::frontend(&SEED[..cut]);
    }

    #[test]
    fn byte_flips_never_panic(pos in 0usize..SEED.len(), repl in proptest::char::range('!', '~')) {
        let mut s: Vec<char> = SEED.chars().collect();
        if pos < s.len() {
            s[pos] = repl;
        }
        let mutated: String = s.into_iter().collect();
        let _ = bf4_p4::frontend(&mutated);
    }

    #[test]
    fn token_deletion_never_panics(skip in 0usize..64) {
        // Delete the skip-th whitespace-separated token.
        let tokens: Vec<&str> = SEED.split_whitespace().collect();
        let mutated: String = tokens
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip % tokens.len())
            .map(|(_, t)| *t)
            .collect::<Vec<_>>()
            .join(" ");
        let _ = bf4_p4::frontend(&mutated);
    }

    #[test]
    fn random_ascii_never_panics(s in "[ -~\\n]{0,400}") {
        let _ = bf4_p4::frontend(&s);
    }
}

#[test]
fn seed_itself_is_valid() {
    bf4_p4::frontend(SEED).unwrap();
}
