//! Abstract syntax tree for the P4-16 subset.
//!
//! The AST is deliberately surface-level: name resolution and typing happen
//! in [`crate::typecheck`], which produces the representation the rest of
//! the pipeline consumes.

use crate::error::Span;

/// A whole compilation unit.
#[derive(Clone, Debug, Default)]
pub struct Ast {
    /// Top-level declarations in source order.
    pub decls: Vec<Decl>,
}

/// Reference to a type as written in source.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TypeRef {
    /// `bit<N>`.
    Bit(u32),
    /// `bool`.
    Bool,
    /// A named type (typedef, header or struct name, or a builtin like
    /// `standard_metadata_t`).
    Named(String),
    /// A header stack `T[n]`.
    Stack(Box<TypeRef>, u32),
}

/// Parameter direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// No direction (e.g. action data parameters).
    None,
    /// `in`.
    In,
    /// `out`.
    Out,
    /// `inout`.
    InOut,
}

/// A parser/control/action parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Direction qualifier.
    pub dir: Direction,
    /// Declared type.
    pub ty: TypeRef,
    /// Name.
    pub name: String,
}

/// A top-level declaration.
#[derive(Clone, Debug)]
pub enum Decl {
    /// `typedef bit<32> ipv4_addr_t;`
    Typedef {
        /// New name.
        name: String,
        /// Aliased type.
        ty: TypeRef,
    },
    /// `const bit<16> TYPE_IPV4 = 0x800;`
    Const {
        /// Name.
        name: String,
        /// Declared type.
        ty: TypeRef,
        /// Initializer (must be compile-time constant).
        value: Expr,
    },
    /// `header h_t { ... }`
    Header {
        /// Type name.
        name: String,
        /// Ordered `(field, type)` pairs.
        fields: Vec<(String, TypeRef)>,
    },
    /// `struct s_t { ... }`
    Struct {
        /// Type name.
        name: String,
        /// Ordered `(field, type)` pairs.
        fields: Vec<(String, TypeRef)>,
    },
    /// A parser definition with states.
    Parser {
        /// Instance type name (e.g. `ParserImpl`).
        name: String,
        /// Parameters (packet_in, out headers, inout metadata, ...).
        params: Vec<Param>,
        /// States; execution starts at `start`.
        states: Vec<ParserState>,
    },
    /// A control definition.
    Control {
        /// Control name (`ingress`, `egress`, `DeparserImpl`, ...).
        name: String,
        /// Parameters.
        params: Vec<Param>,
        /// Local declarations: actions, tables, registers, variables.
        locals: Vec<CtrlLocal>,
        /// The `apply { ... }` block.
        apply: Block,
    },
    /// Package instantiation, e.g. `V1Switch(ParserImpl(), ...) main;`.
    /// Recorded for pipeline ordering; arguments are constructor calls.
    Instantiation {
        /// Package type (`V1Switch`).
        package: String,
        /// Constructor-call argument names, in order.
        args: Vec<String>,
        /// Instance name (`main`).
        name: String,
    },
}

/// A parser state.
#[derive(Clone, Debug)]
pub struct ParserState {
    /// State name.
    pub name: String,
    /// Body statements (extracts, assignments).
    pub stmts: Vec<Stmt>,
    /// Outgoing transition.
    pub transition: Transition,
}

/// A parser transition.
#[derive(Clone, Debug)]
pub enum Transition {
    /// `transition next_state;` (including `accept` / `reject`).
    Direct(String),
    /// `transition select(e1, e2) { ... }`.
    Select {
        /// Selector expressions.
        exprs: Vec<Expr>,
        /// Cases in order; first match wins.
        cases: Vec<SelectCase>,
    },
}

/// One arm of a `select`.
#[derive(Clone, Debug)]
pub struct SelectCase {
    /// Keyset per selector expression (singleton for 1-ary selects).
    pub keyset: Vec<Keyset>,
    /// Target state.
    pub next: String,
}

/// A keyset expression in a `select` arm.
#[derive(Clone, Debug)]
pub enum Keyset {
    /// A constant expression.
    Value(Expr),
    /// `value &&& mask`. (Lexed as `& & &`; the parser reassembles it.)
    Mask(Expr, Expr),
    /// `default` / `_`.
    Default,
}

/// Declarations local to a control.
#[derive(Clone, Debug)]
pub enum CtrlLocal {
    /// An action definition.
    Action(ActionDecl),
    /// A table definition.
    Table(TableDecl),
    /// `register<bit<W>>(SIZE) name;`
    Register {
        /// Instance name.
        name: String,
        /// Element type.
        elem: TypeRef,
        /// Number of cells.
        size: u64,
    },
    /// `counter(...) name;` / `meter(...) name;` and similar externs whose
    /// state the verifier does not model; updates are no-ops.
    OpaqueExtern {
        /// Instance name.
        name: String,
        /// Extern type name.
        kind: String,
    },
    /// A local variable declaration.
    Var {
        /// Declared type.
        ty: TypeRef,
        /// Name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
}

/// An action definition.
#[derive(Clone, Debug)]
pub struct ActionDecl {
    /// Action name.
    pub name: String,
    /// Parameters; directionless parameters are control-plane (action data).
    pub params: Vec<Param>,
    /// Body.
    pub body: Block,
    /// Source location.
    pub span: Span,
}

/// A table definition.
#[derive(Clone, Debug)]
pub struct TableDecl {
    /// Table name.
    pub name: String,
    /// `(key expression, match kind)` pairs.
    pub keys: Vec<(Expr, String)>,
    /// Action names available to the control plane.
    pub actions: Vec<String>,
    /// Default action with constant arguments, if declared.
    pub default_action: Option<(String, Vec<Expr>)>,
    /// Declared size, if any.
    pub size: Option<u64>,
    /// Source location.
    pub span: Span,
}

/// A block of statements.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `lhs = rhs;`
    Assign {
        /// Assignment target (l-value).
        lhs: Expr,
        /// Value.
        rhs: Expr,
        /// Location.
        span: Span,
    },
    /// An expression statement — always a call in P4 (`t.apply();`,
    /// `mark_to_drop(stdmeta);`, `hdr.h.setValid();`, `reg.read(x, i);`).
    Call {
        /// The call expression.
        call: Expr,
        /// Location.
        span: Span,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Else branch (empty block if absent).
        else_blk: Block,
        /// Location.
        span: Span,
    },
    /// `switch (t.apply().action_run) { a: {..} default: {..} }`
    Switch {
        /// Scrutinee (must be `<table>.apply().action_run`).
        expr: Expr,
        /// Cases: label(s) and body. Label `None` is `default`.
        cases: Vec<(Option<String>, Block)>,
        /// Location.
        span: Span,
    },
    /// A nested block.
    Block(Block),
    /// A local variable declaration inside a block.
    Var {
        /// Declared type.
        ty: TypeRef,
        /// Name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
        /// Location.
        span: Span,
    },
    /// `exit;`
    Exit {
        /// Location.
        span: Span,
    },
    /// `return;`
    Return {
        /// Location.
        span: Span,
    },
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// Logical `!`.
    Not,
    /// Bitwise `~`.
    BitNot,
    /// Arithmetic `-`.
    Neg,
}

/// Binary operators, named after their P4 surface syntax.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    /// `++` concatenation.
    Concat,
}

/// An expression.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Integer literal, possibly width-annotated (`8w255`).
    Number {
        /// Value.
        value: u128,
        /// Explicit width, if any.
        width: Option<u32>,
        /// Location.
        span: Span,
    },
    /// `true` / `false`.
    Bool {
        /// Value.
        value: bool,
        /// Location.
        span: Span,
    },
    /// A bare identifier.
    Ident {
        /// Name.
        name: String,
        /// Location.
        span: Span,
    },
    /// `base.member`.
    Member {
        /// Receiver.
        base: Box<Expr>,
        /// Member name.
        member: String,
        /// Location.
        span: Span,
    },
    /// `base[index]` — header-stack indexing.
    Index {
        /// Stack expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// `base[hi:lo]` — bit slice with constant bounds.
    Slice {
        /// Sliced value.
        base: Box<Expr>,
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
        /// Location.
        span: Span,
    },
    /// `func(args...)` — always a method/extern call in our subset.
    Call {
        /// Callee (an `Ident` or `Member`).
        func: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// Location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        arg: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// `cond ? a : b`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Then value.
        then_e: Box<Expr>,
        /// Else value.
        else_e: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// `(bit<9>) e` — width cast.
    Cast {
        /// Target type.
        ty: TypeRef,
        /// Operand.
        arg: Box<Expr>,
        /// Location.
        span: Span,
    },
}

impl Expr {
    /// Source location of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Number { span, .. }
            | Expr::Bool { span, .. }
            | Expr::Ident { span, .. }
            | Expr::Member { span, .. }
            | Expr::Index { span, .. }
            | Expr::Slice { span, .. }
            | Expr::Call { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Ternary { span, .. }
            | Expr::Cast { span, .. } => *span,
        }
    }
}
