//! Source spans and frontend errors.

use std::fmt;

/// A half-open byte range into the source, with a 1-based line for messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Span {
    /// A span covering both inputs.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

/// A frontend error (lexing, parsing or type checking).
#[derive(Clone, Debug)]
pub struct Error {
    /// Where the error occurred.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl Error {
    /// Construct an error at a span.
    pub fn new(span: Span, message: impl Into<String>) -> Error {
        Error {
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for Error {}

/// Frontend result alias.
pub type Result<T> = std::result::Result<T, Error>;
