//! Tokenizer for the P4-16 subset.
//!
//! Comments (`//`, `/* */`) and preprocessor lines (`#...`) are skipped.
//! Width-prefixed literals (`8w255`, `4w0xF`) are recognized as single
//! tokens; bare literals accept decimal, hex (`0x`), octal-free decimal
//! and binary (`0b`) forms.

use crate::error::{Error, Result, Span};

/// A lexical token kind. Punctuation/operator variants are named after
/// their symbol and carry no payload.
#[derive(Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Tok {
    /// Identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// Integer literal, with an optional explicit width prefix.
    Number {
        /// The value (masked by the parser when a width applies).
        value: u128,
        /// Width from a `Nw` prefix, if present.
        width: Option<u32>,
    },
    /// String literal (used only by a few externs; kept for completeness).
    Str(String),
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Colon,
    Comma,
    Dot,
    Question,
    At,
    // operators
    Assign,     // =
    Eq,         // ==
    Ne,         // !=
    Lt,         // <
    Le,         // <=
    Gt,         // >
    Ge,         // >=
    Not,        // !
    AndAnd,     // &&
    OrOr,       // ||
    Amp,        // &
    Pipe,       // |
    Caret,      // ^
    Tilde,      // ~
    Shl,        // <<
    Shr,        // >>
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    /// `++` (header-stack / bit concatenation; rarely used).
    PlusPlus,
    /// End of input.
    Eof,
}

/// A token with its source span.
#[derive(Clone, Debug)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// Location.
    pub span: Span,
}

/// Tokenize a source string.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = bytes.len();

    macro_rules! span {
        ($start:expr) => {
            Span {
                start: $start,
                end: i,
                line,
            }
        };
    }

    while i < n {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'#' => {
                // Preprocessor line: skip to end of line.
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= n {
                        return Err(Error::new(span!(start), "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                while i < n && bytes[i] != b'"' {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                if i >= n {
                    return Err(Error::new(span!(start), "unterminated string literal"));
                }
                i += 1;
                out.push(Token {
                    tok: Tok::Str(s),
                    span: span!(start),
                });
            }
            b'0'..=b'9' => {
                let start = i;
                let (value, width) = lex_number(bytes, &mut i, line)?;
                out.push(Token {
                    tok: Tok::Number { value, width },
                    span: span!(start),
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < n
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                out.push(Token {
                    tok: Tok::Ident(word.to_string()),
                    span: span!(start),
                });
            }
            _ => {
                let start = i;
                let two = if i + 1 < n { &src[i..i + 2] } else { "" };
                let tok = match two {
                    "==" => {
                        i += 2;
                        Some(Tok::Eq)
                    }
                    "!=" => {
                        i += 2;
                        Some(Tok::Ne)
                    }
                    "<=" => {
                        i += 2;
                        Some(Tok::Le)
                    }
                    ">=" => {
                        i += 2;
                        Some(Tok::Ge)
                    }
                    "&&" => {
                        i += 2;
                        Some(Tok::AndAnd)
                    }
                    "||" => {
                        i += 2;
                        Some(Tok::OrOr)
                    }
                    "<<" => {
                        i += 2;
                        Some(Tok::Shl)
                    }
                    ">>" => {
                        i += 2;
                        Some(Tok::Shr)
                    }
                    "++" => {
                        i += 2;
                        Some(Tok::PlusPlus)
                    }
                    _ => None,
                };
                let tok = match tok {
                    Some(t) => t,
                    None => {
                        i += 1;
                        match c {
                            b'(' => Tok::LParen,
                            b')' => Tok::RParen,
                            b'{' => Tok::LBrace,
                            b'}' => Tok::RBrace,
                            b'[' => Tok::LBracket,
                            b']' => Tok::RBracket,
                            b';' => Tok::Semi,
                            b':' => Tok::Colon,
                            b',' => Tok::Comma,
                            b'.' => Tok::Dot,
                            b'?' => Tok::Question,
                            b'@' => Tok::At,
                            b'=' => Tok::Assign,
                            b'<' => Tok::Lt,
                            b'>' => Tok::Gt,
                            b'!' => Tok::Not,
                            b'&' => Tok::Amp,
                            b'|' => Tok::Pipe,
                            b'^' => Tok::Caret,
                            b'~' => Tok::Tilde,
                            b'+' => Tok::Plus,
                            b'-' => Tok::Minus,
                            b'*' => Tok::Star,
                            b'/' => Tok::Slash,
                            b'%' => Tok::Percent,
                            _ => {
                                return Err(Error::new(
                                    span!(start),
                                    format!("unexpected character {:?}", c as char),
                                ))
                            }
                        }
                    }
                };
                out.push(Token {
                    tok,
                    span: span!(start),
                });
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        span: Span {
            start: n,
            end: n,
            line,
        },
    });
    Ok(out)
}

/// Parse a numeric literal starting at `*i`; handles `Nw...` width prefixes
/// and `Ns...` signed prefixes (treated as unsigned of the same width).
fn lex_number(bytes: &[u8], i: &mut usize, line: u32) -> Result<(u128, Option<u32>)> {
    let start = *i;
    let first = lex_radix_number(bytes, i);
    // width prefix? e.g. 8w255 / 4s7
    if *i < bytes.len() && (bytes[*i] == b'w' || bytes[*i] == b's') {
        // Only if the prefix is a plain decimal (radix numbers can't be widths).
        *i += 1;
        let value = lex_radix_number(bytes, i);
        let width = u32::try_from(first).map_err(|_| {
            Error::new(
                Span {
                    start,
                    end: *i,
                    line,
                },
                "width prefix too large",
            )
        })?;
        if width == 0 || width > 128 {
            return Err(Error::new(
                Span {
                    start,
                    end: *i,
                    line,
                },
                format!("unsupported bit width {width} (1..=128)"),
            ));
        }
        let masked = if width == 128 {
            value
        } else {
            value & ((1u128 << width) - 1)
        };
        Ok((masked, Some(width)))
    } else {
        Ok((first, None))
    }
}

fn lex_radix_number(bytes: &[u8], i: &mut usize) -> u128 {
    let n = bytes.len();
    let mut value: u128 = 0;
    if *i + 1 < n && bytes[*i] == b'0' && (bytes[*i + 1] == b'x' || bytes[*i + 1] == b'X') {
        *i += 2;
        while *i < n && (bytes[*i].is_ascii_hexdigit() || bytes[*i] == b'_') {
            if bytes[*i] != b'_' {
                value = value * 16 + (bytes[*i] as char).to_digit(16).unwrap() as u128;
            }
            *i += 1;
        }
    } else if *i + 1 < n && bytes[*i] == b'0' && (bytes[*i + 1] == b'b' || bytes[*i + 1] == b'B') {
        *i += 2;
        while *i < n && (bytes[*i] == b'0' || bytes[*i] == b'1' || bytes[*i] == b'_') {
            if bytes[*i] != b'_' {
                value = value * 2 + (bytes[*i] - b'0') as u128;
            }
            *i += 1;
        }
    } else {
        while *i < n && (bytes[*i].is_ascii_ascii_digit_or_sep()) {
            if bytes[*i] != b'_' {
                value = value * 10 + (bytes[*i] - b'0') as u128;
            }
            *i += 1;
        }
    }
    value
}

trait DigitSep {
    fn is_ascii_ascii_digit_or_sep(&self) -> bool;
}
impl DigitSep for u8 {
    fn is_ascii_ascii_digit_or_sep(&self) -> bool {
        self.is_ascii_digit() || *self == b'_'
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_and_punct() {
        let ts = kinds("control ingress() { }");
        assert_eq!(
            ts,
            vec![
                Tok::Ident("control".into()),
                Tok::Ident("ingress".into()),
                Tok::LParen,
                Tok::RParen,
                Tok::LBrace,
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 0x2a 0b101010 8w255 4w0xF 1_000"),
            vec![
                Tok::Number {
                    value: 42,
                    width: None
                },
                Tok::Number {
                    value: 42,
                    width: None
                },
                Tok::Number {
                    value: 42,
                    width: None
                },
                Tok::Number {
                    value: 255,
                    width: Some(8)
                },
                Tok::Number {
                    value: 15,
                    width: Some(4)
                },
                Tok::Number {
                    value: 1000,
                    width: None
                },
                Tok::Eof
            ]
        );
    }

    #[test]
    fn width_literal_masks() {
        assert_eq!(
            kinds("4w255"),
            vec![
                Tok::Number {
                    value: 15,
                    width: Some(4)
                },
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("== != <= >= && || << >> ++ = < > ! & | ^ ~"),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Shl,
                Tok::Shr,
                Tok::PlusPlus,
                Tok::Assign,
                Tok::Lt,
                Tok::Gt,
                Tok::Not,
                Tok::Amp,
                Tok::Pipe,
                Tok::Caret,
                Tok::Tilde,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_preprocessor_skipped() {
        let ts = kinds("#include <core.p4>\n// line\nx /* block\nspanning */ y");
        assert_eq!(
            ts,
            vec![Tok::Ident("x".into()), Tok::Ident("y".into()), Tok::Eof]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\n  c").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[2].span.line, 3);
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn bad_width_errors() {
        assert!(lex("200w5").is_err());
        assert!(lex("0w5").is_err());
    }
}
