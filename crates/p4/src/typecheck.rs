//! Name resolution and type checking.
//!
//! Produces a [`Program`]: symbol tables for headers/structs/constants, the
//! parser and control definitions in pipeline order, and a type-query API
//! ([`Program::type_of`], [`Program::resolve_type`]) that the IR lowering in
//! `bf4-ir` uses. Every expression in every reachable body is checked here,
//! so lowering can assume well-typedness.
//!
//! The V1Model architecture objects (`standard_metadata_t`, the extern
//! primitives) are built in.

use crate::ast::{
    ActionDecl, Ast, BinOp, Block, CtrlLocal, Decl, Expr, Keyset, Param, ParserState,
    Stmt, TableDecl, Transition, TypeRef, UnOp,
};
use crate::error::{Error, Result, Span};
use std::collections::{BTreeMap, HashMap, HashSet};

/// A resolved type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Type {
    /// Fixed-width unsigned bit-vector.
    Bit(u32),
    /// Boolean.
    Bool,
    /// Unsized integer literal (coerces to any `Bit`).
    Int,
    /// A header instance of the named header type.
    Header(String),
    /// A struct instance of the named struct type.
    Struct(String),
    /// A header stack: element header type and static size.
    Stack(String, u32),
}

impl Type {
    /// True if a value of type `self` can appear where `other` is expected.
    pub fn coerces_to(&self, other: &Type) -> bool {
        self == other
            || matches!((self, other), (Type::Int, Type::Bit(_)) | (Type::Bit(_), Type::Int))
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Bit(w) => write!(f, "bit<{w}>"),
            Type::Bool => write!(f, "bool"),
            Type::Int => write!(f, "int"),
            Type::Header(n) => write!(f, "header {n}"),
            Type::Struct(n) => write!(f, "struct {n}"),
            Type::Stack(n, s) => write!(f, "{n}[{s}]"),
        }
    }
}

/// A register declared in a control.
#[derive(Clone, Debug)]
pub struct RegisterDef {
    /// Instance name.
    pub name: String,
    /// Element width in bits.
    pub width: u32,
    /// Number of cells.
    pub size: u64,
}

/// A checked parser definition.
#[derive(Clone, Debug)]
pub struct ParserDef {
    /// Parser type name.
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// States (`start` guaranteed present).
    pub states: Vec<ParserState>,
}

/// A checked control definition.
#[derive(Clone, Debug)]
pub struct ControlDef {
    /// Control name.
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Actions by definition order.
    pub actions: Vec<ActionDecl>,
    /// Tables by definition order.
    pub tables: Vec<TableDecl>,
    /// Registers.
    pub registers: Vec<RegisterDef>,
    /// Control-level variable declarations `(name, type, init)`.
    pub locals: Vec<(String, Type, Option<Expr>)>,
    /// The apply block.
    pub apply: Block,
}

impl ControlDef {
    /// Look up an action by name.
    pub fn action(&self, name: &str) -> Option<&ActionDecl> {
        self.actions.iter().find(|a| a.name == name)
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Option<&TableDecl> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Look up a register by name.
    pub fn register(&self, name: &str) -> Option<&RegisterDef> {
        self.registers.iter().find(|r| r.name == name)
    }
}

/// The V1Switch pipeline binding (which control plays which role).
#[derive(Clone, Debug)]
pub struct Pipeline {
    /// Parser type name.
    pub parser: String,
    /// verifyChecksum control.
    pub verify: String,
    /// Ingress control.
    pub ingress: String,
    /// Egress control.
    pub egress: String,
    /// computeChecksum control.
    pub compute: String,
    /// Deparser control.
    pub deparser: String,
}

/// A checked program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Header types: name → ordered `(field, width)`.
    pub headers: BTreeMap<String, Vec<(String, u32)>>,
    /// Struct types: name → ordered `(field, type)`.
    pub structs: BTreeMap<String, Vec<(String, Type)>>,
    /// Compile-time constants: name → `(type, value)`.
    pub consts: BTreeMap<String, (Type, u128)>,
    /// Typedef table (fully resolved to base types).
    pub typedefs: BTreeMap<String, Type>,
    /// Parsers by name.
    pub parsers: BTreeMap<String, ParserDef>,
    /// Controls by name.
    pub controls: BTreeMap<String, ControlDef>,
    /// The V1Switch binding, if the program instantiates one.
    pub pipeline: Option<Pipeline>,
}

/// V1Model `standard_metadata_t` fields (name, width).
pub const STANDARD_METADATA: &[(&str, u32)] = &[
    ("ingress_port", 9),
    ("egress_spec", 9),
    ("egress_port", 9),
    ("instance_type", 32),
    ("packet_length", 32),
    ("enq_timestamp", 32),
    ("enq_qdepth", 19),
    ("deq_timedelta", 32),
    ("deq_qdepth", 19),
    ("ingress_global_timestamp", 48),
    ("egress_global_timestamp", 48),
    ("mcast_grp", 16),
    ("egress_rid", 16),
    ("checksum_error", 1),
    ("priority", 3),
];

/// Extern functions accepted as statements (V1Model), with arity bounds.
const EXTERN_FNS: &[(&str, usize, usize)] = &[
    ("mark_to_drop", 0, 1),
    ("drop", 0, 1),
    ("hash", 4, 6),
    ("random", 2, 3),
    ("digest", 1, 2),
    ("clone", 2, 2),
    ("clone3", 3, 3),
    ("clone_preserving_field_list", 3, 3),
    ("resubmit", 0, 1),
    ("resubmit_preserving_field_list", 0, 1),
    ("recirculate", 0, 1),
    ("recirculate_preserving_field_list", 0, 1),
    ("truncate", 1, 1),
    ("verify_checksum", 3, 5),
    ("update_checksum", 3, 5),
    ("verify_checksum_with_payload", 3, 5),
    ("update_checksum_with_payload", 3, 5),
    ("log_msg", 1, 2),
    ("assert", 1, 1),
    ("assume", 1, 1),
];

/// Match kinds accepted on table keys.
pub const MATCH_KINDS: &[&str] = &["exact", "ternary", "lpm", "range", "selector", "optional"];

/// Run name resolution and type checking over an AST.
pub fn check(ast: &Ast) -> Result<Program> {
    let mut ck = Checker::default();
    ck.collect(ast)?;
    ck.check_all()?;
    Ok(ck.program)
}

#[derive(Default)]
struct Checker {
    program: Program,
}



impl Program {
    /// Resolve a surface [`TypeRef`] to a [`Type`].
    pub fn resolve_type(&self, ty: &TypeRef) -> Result<Type> {
        match ty {
            TypeRef::Bit(w) => {
                if *w == 0 || *w > 128 {
                    return Err(Error::new(
                        Span::default(),
                        format!("unsupported bit width {w}"),
                    ));
                }
                Ok(Type::Bit(*w))
            }
            TypeRef::Bool => Ok(Type::Bool),
            TypeRef::Named(n) => {
                if n == "standard_metadata_t" {
                    return Ok(Type::Struct("standard_metadata_t".into()));
                }
                if let Some(t) = self.typedefs.get(n) {
                    return Ok(t.clone());
                }
                if self.headers.contains_key(n) {
                    return Ok(Type::Header(n.clone()));
                }
                if self.structs.contains_key(n) {
                    return Ok(Type::Struct(n.clone()));
                }
                // opaque architecture types we accept in parameter lists
                if n == "packet_in" || n == "packet_out" {
                    return Ok(Type::Struct(n.clone()));
                }
                Err(Error::new(
                    Span::default(),
                    format!("unknown type `{n}`"),
                ))
            }
            TypeRef::Stack(inner, n) => {
                let t = self.resolve_type(inner)?;
                match t {
                    Type::Header(h) => Ok(Type::Stack(h, *n)),
                    other => Err(Error::new(
                        Span::default(),
                        format!("header stack of non-header type {other}"),
                    )),
                }
            }
        }
    }

    /// Fields of a struct type (including the builtin standard metadata).
    pub fn struct_fields(&self, name: &str) -> Option<Vec<(String, Type)>> {
        if name == "standard_metadata_t" {
            return Some(
                STANDARD_METADATA
                    .iter()
                    .map(|(n, w)| (n.to_string(), Type::Bit(*w)))
                    .collect(),
            );
        }
        self.structs.get(name).cloned()
    }

    /// Width of a header field.
    pub fn header_field_width(&self, header: &str, field: &str) -> Option<u32> {
        self.headers
            .get(header)?
            .iter()
            .find(|(n, _)| n == field)
            .map(|(_, w)| *w)
    }

    /// Total width of a header in bits.
    pub fn header_width(&self, header: &str) -> Option<u32> {
        Some(self.headers.get(header)?.iter().map(|(_, w)| w).sum())
    }
}

impl Checker {
    fn collect(&mut self, ast: &Ast) -> Result<()> {
        // Two passes: types first (headers/structs/typedefs/consts may be
        // referenced before their textual position by our corpus layout),
        // then parsers/controls.
        for d in &ast.decls {
            match d {
                Decl::Typedef { name, ty } => {
                    let t = self.program.resolve_type(ty)?;
                    self.program.typedefs.insert(name.clone(), t);
                }
                Decl::Header { name, fields } => {
                    let mut out = Vec::new();
                    let mut seen = HashSet::new();
                    for (fname, fty) in fields {
                        if !seen.insert(fname.clone()) {
                            return Err(Error::new(
                                Span::default(),
                                format!("duplicate field `{fname}` in header {name}"),
                            ));
                        }
                        match self.program.resolve_type(fty)? {
                            Type::Bit(w) => out.push((fname.clone(), w)),
                            Type::Bool => out.push((fname.clone(), 1)),
                            other => {
                                return Err(Error::new(
                                    Span::default(),
                                    format!(
                                        "header {name}: field {fname} has non-bit type {other}"
                                    ),
                                ))
                            }
                        }
                    }
                    self.program.headers.insert(name.clone(), out);
                }
                Decl::Struct { name, fields } => {
                    let mut out = Vec::new();
                    for (fname, fty) in fields {
                        out.push((fname.clone(), self.program.resolve_type(fty)?));
                    }
                    self.program.structs.insert(name.clone(), out);
                }
                Decl::Const { name, ty, value } => {
                    let t = self.program.resolve_type(ty)?;
                    let v = self.const_eval(value)?;
                    self.program.consts.insert(name.clone(), (t, v));
                }
                _ => {}
            }
        }
        for d in &ast.decls {
            match d {
                Decl::Parser {
                    name,
                    params,
                    states,
                } if !states.is_empty() => {
                    self.program.parsers.insert(
                        name.clone(),
                        ParserDef {
                            name: name.clone(),
                            params: params.clone(),
                            states: states.clone(),
                        },
                    );
                }
                Decl::Control {
                    name,
                    params,
                    locals,
                    apply,
                } => {
                    let mut actions = Vec::new();
                    let mut tables = Vec::new();
                    let mut registers = Vec::new();
                    let mut vars = Vec::new();
                    for l in locals {
                        match l {
                            CtrlLocal::Action(a) => actions.push(a.clone()),
                            CtrlLocal::Table(t) => tables.push(t.clone()),
                            CtrlLocal::Register { name, elem, size } => {
                                let width = match self.program.resolve_type(elem)? {
                                    Type::Bit(w) => w,
                                    other => {
                                        return Err(Error::new(
                                            Span::default(),
                                            format!("register of non-bit type {other}"),
                                        ))
                                    }
                                };
                                registers.push(RegisterDef {
                                    name: name.clone(),
                                    width,
                                    size: *size,
                                });
                            }
                            CtrlLocal::OpaqueExtern { .. } => {}
                            CtrlLocal::Var { ty, name, init } => {
                                let t = self.program.resolve_type(ty)?;
                                vars.push((name.clone(), t, init.clone()));
                            }
                        }
                    }
                    self.program.controls.insert(
                        name.clone(),
                        ControlDef {
                            name: name.clone(),
                            params: params.clone(),
                            actions,
                            tables,
                            registers,
                            locals: vars,
                            apply: apply.clone(),
                        },
                    );
                }
                Decl::Instantiation {
                    package,
                    args,
                    name: _,
                } if package == "V1Switch" => {
                    if args.len() != 6 {
                        return Err(Error::new(
                            Span::default(),
                            format!("V1Switch expects 6 arguments, got {}", args.len()),
                        ));
                    }
                    self.program.pipeline = Some(Pipeline {
                        parser: args[0].clone(),
                        verify: args[1].clone(),
                        ingress: args[2].clone(),
                        egress: args[3].clone(),
                        compute: args[4].clone(),
                        deparser: args[5].clone(),
                    });
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Evaluate a compile-time constant expression.
    fn const_eval(&self, e: &Expr) -> Result<u128> {
        match e {
            Expr::Number { value, .. } => Ok(*value),
            Expr::Bool { value, .. } => Ok(u128::from(*value)),
            Expr::Ident { name, span } => self
                .program
                .consts
                .get(name)
                .map(|(_, v)| *v)
                .ok_or_else(|| Error::new(*span, format!("unknown constant `{name}`"))),
            Expr::Binary { op, lhs, rhs, span } => {
                let a = self.const_eval(lhs)?;
                let b = self.const_eval(rhs)?;
                Ok(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Shl => a << b,
                    BinOp::Shr => a >> b,
                    BinOp::BitAnd => a & b,
                    BinOp::BitOr => a | b,
                    BinOp::BitXor => a ^ b,
                    _ => {
                        return Err(Error::new(
                            *span,
                            "unsupported operator in constant expression",
                        ))
                    }
                })
            }
            Expr::Cast { arg, .. } => self.const_eval(arg),
            other => Err(Error::new(
                other.span(),
                "expression is not compile-time constant",
            )),
        }
    }

    fn check_all(&mut self) -> Result<()> {
        let parsers: Vec<ParserDef> = self.program.parsers.values().cloned().collect();
        for p in &parsers {
            self.check_parser(p)?;
        }
        let controls: Vec<ControlDef> = self.program.controls.values().cloned().collect();
        for c in &controls {
            self.check_control(c)?;
        }
        if let Some(pl) = self.program.pipeline.clone() {
            for (role, n) in [
                ("parser", &pl.parser),
                ("verifyChecksum", &pl.verify),
                ("ingress", &pl.ingress),
                ("egress", &pl.egress),
                ("computeChecksum", &pl.compute),
                ("deparser", &pl.deparser),
            ] {
                let known = if role == "parser" {
                    self.program.parsers.contains_key(n)
                } else {
                    self.program.controls.contains_key(n)
                };
                if !known {
                    return Err(Error::new(
                        Span::default(),
                        format!("pipeline {role} `{n}` is not defined"),
                    ));
                }
            }
        }
        Ok(())
    }

    fn base_env(&self, params: &[Param]) -> Result<HashMap<String, Type>> {
        let mut env = HashMap::new();
        for p in params {
            let t = self.program.resolve_type(&p.ty)?;
            env.insert(p.name.clone(), t);
        }
        for (n, (t, _)) in &self.program.consts {
            env.entry(n.clone()).or_insert_with(|| t.clone());
        }
        Ok(env)
    }

    fn check_parser(&mut self, p: &ParserDef) -> Result<()> {
        let env = self.base_env(&p.params)?;
        let state_names: HashSet<&str> = p.states.iter().map(|s| s.name.as_str()).collect();
        if !state_names.contains("start") {
            return Err(Error::new(
                Span::default(),
                format!("parser {}: missing `start` state", p.name),
            ));
        }
        for st in &p.states {
            let mut local = env.clone();
            for s in &st.stmts {
                self.check_stmt(s, &mut local, None)?;
            }
            match &st.transition {
                Transition::Direct(next) => {
                    if next != "accept" && next != "reject" && !state_names.contains(next.as_str())
                    {
                        return Err(Error::new(
                            Span::default(),
                            format!("parser {}: unknown state `{next}`", p.name),
                        ));
                    }
                }
                Transition::Select { exprs, cases } => {
                    for e in exprs {
                        let t = self.type_of(e, &local)?;
                        if !matches!(t, Type::Bit(_) | Type::Bool | Type::Int) {
                            return Err(Error::new(
                                e.span(),
                                format!("select on non-scalar type {t}"),
                            ));
                        }
                    }
                    for c in cases {
                        if c.keyset.len() != exprs.len() && !matches!(c.keyset[..], [Keyset::Default])
                        {
                            return Err(Error::new(
                                Span::default(),
                                "select arm arity mismatch",
                            ));
                        }
                        if c.next != "accept"
                            && c.next != "reject"
                            && !state_names.contains(c.next.as_str())
                        {
                            return Err(Error::new(
                                Span::default(),
                                format!("parser {}: unknown state `{}`", p.name, c.next),
                            ));
                        }
                        for k in &c.keyset {
                            match k {
                                Keyset::Value(e) | Keyset::Mask(e, _) => {
                                    let _ = self.const_eval(e)?;
                                }
                                Keyset::Default => {}
                            }
                            if let Keyset::Mask(_, m) = k {
                                let _ = self.const_eval(m)?;
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn check_control(&mut self, c: &ControlDef) -> Result<()> {
        let mut env = self.base_env(&c.params)?;
        for (n, t, init) in &c.locals {
            if let Some(e) = init {
                let it = self.type_of(e, &env)?;
                if !it.coerces_to(t) {
                    return Err(Error::new(
                        e.span(),
                        format!("initializer type {it} does not match {t}"),
                    ));
                }
            }
            env.insert(n.clone(), t.clone());
        }
        // actions
        for a in &c.actions {
            let mut aenv = env.clone();
            for p in &a.params {
                let t = self.program.resolve_type(&p.ty)?;
                aenv.insert(p.name.clone(), t);
            }
            let mut scoped = aenv;
            self.check_block(&a.body, &mut scoped, Some(c))?;
        }
        // tables
        for t in &c.tables {
            for (e, kind) in &t.keys {
                let kt = self.type_of(e, &env)?;
                if !matches!(kt, Type::Bit(_) | Type::Bool) {
                    return Err(Error::new(
                        e.span(),
                        format!("table {}: key has non-scalar type {kt}", t.name),
                    ));
                }
                if !MATCH_KINDS.contains(&kind.as_str()) {
                    return Err(Error::new(
                        t.span,
                        format!("table {}: unknown match kind `{kind}`", t.name),
                    ));
                }
            }
            for a in &t.actions {
                if a != "NoAction" && c.action(a).is_none() {
                    return Err(Error::new(
                        t.span,
                        format!("table {}: unknown action `{a}`", t.name),
                    ));
                }
            }
            if let Some((a, args)) = &t.default_action {
                if a != "NoAction" && !t.actions.contains(a) {
                    return Err(Error::new(
                        t.span,
                        format!("table {}: default action `{a}` not in actions list", t.name),
                    ));
                }
                for arg in args {
                    let _ = self.const_eval(arg)?;
                }
            }
        }
        let mut scoped = env;
        self.check_block(&c.apply, &mut scoped, Some(c))?;
        Ok(())
    }

    fn check_block(
        &mut self,
        b: &Block,
        env: &mut HashMap<String, Type>,
        ctrl: Option<&ControlDef>,
    ) -> Result<()> {
        for s in &b.stmts {
            self.check_stmt(s, env, ctrl)?;
        }
        Ok(())
    }

    fn check_stmt(
        &mut self,
        s: &Stmt,
        env: &mut HashMap<String, Type>,
        ctrl: Option<&ControlDef>,
    ) -> Result<()> {
        match s {
            Stmt::Assign { lhs, rhs, span } => {
                let lt = self.type_of(lhs, env)?;
                let rt = self.type_of(rhs, env)?;
                let compatible = rt.coerces_to(&lt)
                    // header-to-header copy is allowed
                    || matches!((&lt, &rt), (Type::Header(a), Type::Header(b)) if a == b);
                if !compatible {
                    return Err(Error::new(
                        *span,
                        format!("cannot assign {rt} to {lt}"),
                    ));
                }
                self.check_lvalue(lhs)?;
                Ok(())
            }
            Stmt::Call { call, span } => self.check_call_stmt(call, env, ctrl, *span),
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            } => {
                let t = self.type_of(cond, env)?;
                if t != Type::Bool {
                    return Err(Error::new(*span, format!("if condition has type {t}")));
                }
                self.check_block(then_blk, &mut env.clone(), ctrl)?;
                self.check_block(else_blk, &mut env.clone(), ctrl)?;
                Ok(())
            }
            Stmt::Switch { expr, cases, span } => {
                // Must be `<table>.apply().action_run`.
                let table = switch_table_name(expr).ok_or_else(|| {
                    Error::new(*span, "switch scrutinee must be table.apply().action_run")
                })?;
                let ctrl = ctrl.ok_or_else(|| Error::new(*span, "switch outside control"))?;
                let tdecl = ctrl
                    .table(&table)
                    .ok_or_else(|| Error::new(*span, format!("unknown table `{table}`")))?
                    .clone();
                for (label, body) in cases {
                    if let Some(l) = label {
                        if !tdecl.actions.contains(l) {
                            return Err(Error::new(
                                *span,
                                format!("switch case `{l}` is not an action of `{table}`"),
                            ));
                        }
                    }
                    self.check_block(body, &mut env.clone(), Some(ctrl))?;
                }
                Ok(())
            }
            Stmt::Block(b) => self.check_block(b, &mut env.clone(), ctrl),
            Stmt::Var {
                ty,
                name,
                init,
                span,
            } => {
                let t = self.program.resolve_type(ty)?;
                if let Some(e) = init {
                    let it = self.type_of(e, env)?;
                    if !it.coerces_to(&t) {
                        return Err(Error::new(
                            *span,
                            format!("initializer type {it} does not match {t}"),
                        ));
                    }
                }
                env.insert(name.clone(), t);
                Ok(())
            }
            Stmt::Exit { .. } | Stmt::Return { .. } => Ok(()),
        }
    }

    fn check_lvalue(&self, e: &Expr) -> Result<()> {
        match e {
            Expr::Ident { .. } | Expr::Member { .. } | Expr::Index { .. } | Expr::Slice { .. } => {
                Ok(())
            }
            other => Err(Error::new(other.span(), "not an l-value")),
        }
    }

    fn check_call_stmt(
        &mut self,
        call: &Expr,
        env: &mut HashMap<String, Type>,
        ctrl: Option<&ControlDef>,
        span: Span,
    ) -> Result<()> {
        let Expr::Call { func, args, .. } = call else {
            return Err(Error::new(span, "expected call"));
        };
        match func.as_ref() {
            // free function: extern
            Expr::Ident { name, .. } => {
                if let Some((_, lo, hi)) = EXTERN_FNS.iter().find(|(n, _, _)| n == name) {
                    if args.len() < *lo || args.len() > *hi {
                        return Err(Error::new(
                            span,
                            format!("extern `{name}` arity {} not in {lo}..={hi}", args.len()),
                        ));
                    }
                    for a in args {
                        let _ = self.type_of(a, env)?;
                    }
                    return Ok(());
                }
                // direct action invocation inside apply
                if let Some(c) = ctrl {
                    if let Some(ad) = c.action(name) {
                        if ad.params.len() != args.len() {
                            return Err(Error::new(
                                span,
                                format!(
                                    "action `{name}` expects {} arguments, got {}",
                                    ad.params.len(),
                                    args.len()
                                ),
                            ));
                        }
                        for (p, a) in ad.params.iter().zip(args) {
                            let pt = self.program.resolve_type(&p.ty)?;
                            let at = self.type_of(a, env)?;
                            if !at.coerces_to(&pt) {
                                return Err(Error::new(
                                    a.span(),
                                    format!("argument type {at} does not match {pt}"),
                                ));
                            }
                        }
                        return Ok(());
                    }
                    if name == "NoAction" {
                        return Ok(());
                    }
                }
                Err(Error::new(span, format!("unknown function `{name}`")))
            }
            // method call: receiver.method(args)
            Expr::Member { base, member, .. } => {
                self.check_method(base, member, args, env, ctrl, span)
            }
            _ => Err(Error::new(span, "unsupported call form")),
        }
    }

    fn check_method(
        &mut self,
        base: &Expr,
        method: &str,
        args: &[Expr],
        env: &mut HashMap<String, Type>,
        ctrl: Option<&ControlDef>,
        span: Span,
    ) -> Result<()> {
        // table.apply()
        if let Expr::Ident { name, .. } = base {
            if let Some(c) = ctrl {
                if c.table(name).is_some() {
                    if method != "apply" || !args.is_empty() {
                        return Err(Error::new(
                            span,
                            format!("table `{name}` only supports .apply()"),
                        ));
                    }
                    return Ok(());
                }
                if let Some(r) = c.register(name) {
                    match method {
                        "read" => {
                            if args.len() != 2 {
                                return Err(Error::new(span, "register.read(dst, index)"));
                            }
                            let dt = self.type_of(&args[0], env)?;
                            if !dt.coerces_to(&Type::Bit(r.width)) {
                                return Err(Error::new(
                                    args[0].span(),
                                    format!("register read target {dt} != bit<{}>", r.width),
                                ));
                            }
                            self.check_lvalue(&args[0])?;
                            let _ = self.type_of(&args[1], env)?;
                            return Ok(());
                        }
                        "write" => {
                            if args.len() != 2 {
                                return Err(Error::new(span, "register.write(index, value)"));
                            }
                            let _ = self.type_of(&args[0], env)?;
                            let vt = self.type_of(&args[1], env)?;
                            if !vt.coerces_to(&Type::Bit(r.width)) {
                                return Err(Error::new(
                                    args[1].span(),
                                    format!("register write value {vt} != bit<{}>", r.width),
                                ));
                            }
                            return Ok(());
                        }
                        _ => {
                            return Err(Error::new(
                                span,
                                format!("register `{name}` has no method `{method}`"),
                            ))
                        }
                    }
                }
            }
            // packet_in / packet_out methods
            if let Some(Type::Struct(s)) = env.get(name) {
                if s == "packet_in" {
                    match method {
                        "extract" => {
                            if args.len() != 1 {
                                return Err(Error::new(span, "extract takes one argument"));
                            }
                            let t = self.type_of(&args[0], env)?;
                            if !matches!(t, Type::Header(_)) {
                                return Err(Error::new(
                                    args[0].span(),
                                    format!("extract target must be a header, got {t}"),
                                ));
                            }
                            return Ok(());
                        }
                        "advance" | "lookahead" => {
                            for a in args {
                                let _ = self.type_of(a, env)?;
                            }
                            return Ok(());
                        }
                        _ => {
                            return Err(Error::new(
                                span,
                                format!("packet_in has no method `{method}`"),
                            ))
                        }
                    }
                }
                if s == "packet_out" {
                    if method == "emit" {
                        for a in args {
                            let _ = self.type_of(a, env)?;
                        }
                        return Ok(());
                    }
                    return Err(Error::new(
                        span,
                        format!("packet_out has no method `{method}`"),
                    ));
                }
            }
        }
        // header methods
        let bt = self.type_of(base, env)?;
        match (&bt, method) {
            (Type::Header(_), "setValid") | (Type::Header(_), "setInvalid") => {
                if !args.is_empty() {
                    return Err(Error::new(span, format!("{method} takes no arguments")));
                }
                Ok(())
            }
            (Type::Stack(..), "push_front") | (Type::Stack(..), "pop_front") => {
                if args.len() != 1 {
                    return Err(Error::new(span, format!("{method} takes one argument")));
                }
                let _ = self.const_eval(&args[0])?;
                Ok(())
            }
            _ => Err(Error::new(
                span,
                format!("type {bt} has no method `{method}`"),
            )),
        }
    }

    /// Type of an expression under an environment.
    fn type_of(&self, e: &Expr, env: &HashMap<String, Type>) -> Result<Type> {
        match e {
            Expr::Number { width, .. } => Ok(match width {
                Some(w) => Type::Bit(*w),
                None => Type::Int,
            }),
            Expr::Bool { .. } => Ok(Type::Bool),
            Expr::Ident { name, span } => env
                .get(name)
                .cloned()
                .ok_or_else(|| Error::new(*span, format!("unknown identifier `{name}`"))),
            Expr::Member { base, member, span } => {
                // calls like x.isValid() are handled at Call; here plain field access
                let bt = self.type_of(base, env)?;
                match &bt {
                    Type::Header(h) => self
                        .program
                        .header_field_width(h, member)
                        .map(Type::Bit)
                        .ok_or_else(|| {
                            Error::new(*span, format!("header {h} has no field `{member}`"))
                        }),
                    Type::Struct(s) => {
                        let fields = self.program.struct_fields(s).ok_or_else(|| {
                            Error::new(*span, format!("unknown struct `{s}`"))
                        })?;
                        fields
                            .iter()
                            .find(|(n, _)| n == member)
                            .map(|(_, t)| t.clone())
                            .ok_or_else(|| {
                                Error::new(*span, format!("struct {s} has no field `{member}`"))
                            })
                    }
                    Type::Stack(h, n) => match member.as_str() {
                        "next" | "last" => Ok(Type::Header(h.clone())),
                        "lastIndex" => Ok(Type::Bit(32)),
                        "size" => {
                            let _ = n;
                            Ok(Type::Bit(32))
                        }
                        _ => Err(Error::new(
                            *span,
                            format!("stack has no member `{member}`"),
                        )),
                    },
                    other => Err(Error::new(
                        *span,
                        format!("member access on non-aggregate type {other}"),
                    )),
                }
            }
            Expr::Index { base, index, span } => {
                let bt = self.type_of(base, env)?;
                let it = self.type_of(index, env)?;
                if !matches!(it, Type::Bit(_) | Type::Int) {
                    return Err(Error::new(*span, format!("index has type {it}")));
                }
                match bt {
                    Type::Stack(h, _) => Ok(Type::Header(h)),
                    other => Err(Error::new(
                        *span,
                        format!("indexing non-stack type {other}"),
                    )),
                }
            }
            Expr::Slice { base, hi, lo, span } => {
                let bt = self.type_of(base, env)?;
                match bt {
                    Type::Bit(w) if *hi < w && lo <= hi => Ok(Type::Bit(hi - lo + 1)),
                    Type::Bit(w) => Err(Error::new(
                        *span,
                        format!("slice [{hi}:{lo}] out of bit<{w}>"),
                    )),
                    other => Err(Error::new(*span, format!("slicing type {other}"))),
                }
            }
            Expr::Call { func, args, span } => {
                // isValid() is the only call producing a value in our subset
                // (plus table.apply().hit/action_run handled structurally).
                if let Expr::Member { base, member, .. } = func.as_ref() {
                    if member == "isValid" {
                        if !args.is_empty() {
                            return Err(Error::new(*span, "isValid takes no arguments"));
                        }
                        let bt = self.type_of(base, env)?;
                        if !matches!(bt, Type::Header(_)) {
                            return Err(Error::new(
                                *span,
                                format!("isValid on non-header {bt}"),
                            ));
                        }
                        return Ok(Type::Bool);
                    }
                    if member == "apply" {
                        // table.apply() used in expression position: returns a
                        // pseudo-struct with `.hit`/`.miss`/`.action_run`.
                        return Ok(Type::Struct("!apply_result".into()));
                    }
                    if member == "lookahead" {
                        return Ok(Type::Bit(32));
                    }
                }
                Err(Error::new(*span, "call does not produce a value"))
            }
            Expr::Unary { op, arg, span } => {
                let t = self.type_of(arg, env)?;
                match op {
                    UnOp::Not => {
                        if t == Type::Bool {
                            Ok(Type::Bool)
                        } else {
                            Err(Error::new(*span, format!("! on non-bool {t}")))
                        }
                    }
                    UnOp::BitNot | UnOp::Neg => match t {
                        Type::Bit(w) => Ok(Type::Bit(w)),
                        Type::Int => Ok(Type::Int),
                        other => Err(Error::new(*span, format!("bit op on {other}"))),
                    },
                }
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let lt = self.type_of(lhs, env)?;
                let rt = self.type_of(rhs, env)?;
                let unified = unify(&lt, &rt).ok_or_else(|| {
                    Error::new(*span, format!("operands {lt} and {rt} do not unify"))
                })?;
                match op {
                    BinOp::And | BinOp::Or => {
                        if unified == Type::Bool {
                            Ok(Type::Bool)
                        } else {
                            Err(Error::new(*span, format!("logical op on {unified}")))
                        }
                    }
                    BinOp::Eq | BinOp::Ne => {
                        // headers compare by validity+fields; we allow scalars
                        // and bools here.
                        Ok(Type::Bool)
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => match unified {
                        Type::Bit(_) | Type::Int => Ok(Type::Bool),
                        other => Err(Error::new(*span, format!("comparison on {other}"))),
                    },
                    BinOp::Concat => match (&lt, &rt) {
                        (Type::Bit(a), Type::Bit(b)) => Ok(Type::Bit(a + b)),
                        _ => Err(Error::new(*span, "++ requires sized operands")),
                    },
                    _ => match unified {
                        Type::Bit(w) => Ok(Type::Bit(w)),
                        Type::Int => Ok(Type::Int),
                        other => Err(Error::new(*span, format!("arithmetic on {other}"))),
                    },
                }
            }
            Expr::Ternary {
                cond,
                then_e,
                else_e,
                span,
            } => {
                let ct = self.type_of(cond, env)?;
                if ct != Type::Bool {
                    return Err(Error::new(*span, format!("?: condition has type {ct}")));
                }
                let tt = self.type_of(then_e, env)?;
                let et = self.type_of(else_e, env)?;
                unify(&tt, &et)
                    .ok_or_else(|| Error::new(*span, format!("?: branches {tt} vs {et}")))
            }
            Expr::Cast { ty, arg, span } => {
                let t = self.program.resolve_type(ty)?;
                let at = self.type_of(arg, env)?;
                match (&t, &at) {
                    (Type::Bit(_), Type::Bit(_))
                    | (Type::Bit(_), Type::Int)
                    | (Type::Bit(_), Type::Bool)
                    | (Type::Bool, Type::Bit(1)) => Ok(t),
                    _ => Err(Error::new(*span, format!("cannot cast {at} to {t}"))),
                }
            }
        }
    }
}

/// If `e` is `<table>.apply().action_run`, return the table name.
pub fn switch_table_name(e: &Expr) -> Option<String> {
    let Expr::Member { base, member, .. } = e else {
        return None;
    };
    if member != "action_run" {
        return None;
    }
    let Expr::Call { func, .. } = base.as_ref() else {
        return None;
    };
    let Expr::Member { base, member, .. } = func.as_ref() else {
        return None;
    };
    if member != "apply" {
        return None;
    }
    let Expr::Ident { name, .. } = base.as_ref() else {
        return None;
    };
    Some(name.clone())
}

/// Unify two scalar types (Int coerces to Bit).
fn unify(a: &Type, b: &Type) -> Option<Type> {
    if a == b {
        return Some(a.clone());
    }
    match (a, b) {
        (Type::Int, Type::Bit(w)) | (Type::Bit(w), Type::Int) => Some(Type::Bit(*w)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn ck(src: &str) -> Result<Program> {
        check(&parse_program(src).unwrap())
    }

    const SMALL: &str = r#"
        typedef bit<32> ip4_t;
        const bit<16> TYPE_IPV4 = 0x800;
        header eth_t { bit<48> dst; bit<48> src; bit<16> etherType; }
        header ipv4_t { bit<8> ttl; ip4_t srcAddr; ip4_t dstAddr; }
        struct headers { eth_t eth; ipv4_t ipv4; }
        struct meta_t { bit<8> x; }
        parser P(packet_in pkt, out headers hdr, inout meta_t meta, inout standard_metadata_t sm) {
            state start {
                pkt.extract(hdr.eth);
                transition select(hdr.eth.etherType) {
                    TYPE_IPV4: parse_ipv4;
                    default: accept;
                }
            }
            state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
        }
        control I(inout headers hdr, inout meta_t meta, inout standard_metadata_t sm) {
            action set_ttl(bit<8> t) { hdr.ipv4.ttl = t; }
            action nop() { }
            table t1 {
                key = { hdr.ipv4.dstAddr: lpm; hdr.ipv4.isValid(): exact; }
                actions = { set_ttl; nop; }
                default_action = nop();
            }
            apply {
                if (hdr.ipv4.isValid()) { t1.apply(); }
                sm.egress_spec = 9w1;
            }
        }
        control E(inout headers hdr, inout meta_t meta, inout standard_metadata_t sm) { apply {} }
        control V(inout headers hdr, inout meta_t meta) { apply {} }
        control C(inout headers hdr, inout meta_t meta) { apply {} }
        control D(packet_out pkt, in headers hdr) { apply { pkt.emit(hdr.eth); } }
        V1Switch(P(), V(), I(), E(), C(), D()) main;
    "#;

    #[test]
    fn small_program_checks() {
        let p = ck(SMALL).unwrap();
        assert_eq!(p.headers.len(), 2);
        assert_eq!(p.headers["ipv4_t"].len(), 3);
        assert_eq!(p.headers["ipv4_t"][1], ("srcAddr".to_string(), 32));
        assert!(p.pipeline.is_some());
        let pl = p.pipeline.as_ref().unwrap();
        assert_eq!(pl.ingress, "I");
        assert_eq!(p.consts["TYPE_IPV4"].1, 0x800);
    }

    #[test]
    fn unknown_field_rejected() {
        let src = SMALL.replace("hdr.ipv4.ttl = t;", "hdr.ipv4.bogus = t;");
        let err = ck(&src).unwrap_err();
        assert!(err.message.contains("no field"), "{}", err.message);
    }

    #[test]
    fn unknown_state_rejected() {
        let src = SMALL.replace("transition select", "transition bogus; } state dead { transition select");
        assert!(ck(&src).is_err());
    }

    #[test]
    fn width_mismatch_rejected() {
        let src = SMALL.replace("sm.egress_spec = 9w1;", "sm.egress_spec = 16w1;");
        let err = ck(&src).unwrap_err();
        assert!(err.message.contains("assign"), "{}", err.message);
    }

    #[test]
    fn unknown_action_in_table_rejected() {
        let src = SMALL.replace("actions = { set_ttl; nop; }", "actions = { set_ttl; ghost; }");
        let err = ck(&src).unwrap_err();
        assert!(err.message.contains("unknown action"), "{}", err.message);
    }

    #[test]
    fn bad_match_kind_rejected() {
        let src = SMALL.replace("dstAddr: lpm;", "dstAddr: fuzzy;");
        let err = ck(&src).unwrap_err();
        assert!(err.message.contains("match kind"), "{}", err.message);
    }

    #[test]
    fn if_on_non_bool_rejected() {
        let src = SMALL.replace("if (hdr.ipv4.isValid())", "if (hdr.ipv4.ttl)");
        assert!(ck(&src).is_err());
    }

    #[test]
    fn missing_start_state_rejected() {
        let src = SMALL.replace("state start", "state begin");
        let err = ck(&src).unwrap_err();
        assert!(err.message.contains("start"), "{}", err.message);
    }

    #[test]
    fn int_literal_coerces() {
        // `hdr.ipv4.ttl = 64;` — unsized literal into bit<8>.
        let src = SMALL.replace("hdr.ipv4.ttl = t;", "hdr.ipv4.ttl = 64;");
        assert!(ck(&src).is_ok());
    }

    #[test]
    fn const_expression_folding() {
        let src = "const bit<16> A = 0x10 + 0x2; const bit<16> B = A << 1;";
        let p = ck(src).unwrap();
        assert_eq!(p.consts["A"].1, 0x12);
        assert_eq!(p.consts["B"].1, 0x24);
    }

    #[test]
    fn register_ops_check() {
        let src = r#"
            struct h {} struct m { bit<32> idx; bit<32> val; }
            control I(inout h hdr, inout m meta, inout standard_metadata_t sm) {
                register<bit<32>>(128) r;
                apply {
                    r.read(meta.val, meta.idx);
                    r.write(meta.idx, meta.val + 1);
                }
            }
        "#;
        assert!(ck(src).is_ok());
        let bad = src.replace("r.read(meta.val, meta.idx);", "r.read(meta.idx);");
        assert!(ck(&bad).is_err());
    }

    #[test]
    fn stack_member_access() {
        let src = r#"
            header vlan_t { bit<3> pcp; bit<1> cfi; bit<12> vid; bit<16> etherType; }
            struct h { vlan_t[2] vlan; }
            struct m {}
            control I(inout h hdr, inout m meta, inout standard_metadata_t sm) {
                apply {
                    if (hdr.vlan[0].isValid()) {
                        hdr.vlan[1].pcp = hdr.vlan[0].pcp;
                    }
                }
            }
        "#;
        assert!(ck(src).is_ok());
    }

    #[test]
    fn v1switch_role_must_exist() {
        let src = "control I(inout standard_metadata_t sm) { apply {} } V1Switch(P(), V(), I(), E(), C(), D()) main;";
        assert!(ck(src).is_err());
    }
}
