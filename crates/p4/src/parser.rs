//! Recursive-descent parser for the P4-16 subset.
//!
//! Grammar notes:
//!
//! * annotations (`@name`, `@name(...)`) are skipped wherever they appear;
//! * `extern`, `error { ... }`, `match_kind { ... }` and `enum` top-level
//!   declarations are accepted and ignored (they only name things our
//!   semantic layer already knows);
//! * casts are supported for `(bit<N>) e` and `(bool) e` — the only forms
//!   that appear in the corpus — avoiding the classic cast/grouping
//!   ambiguity for named types;
//! * the `&&&` keyset mask operator is reassembled from `&&` `&` tokens.

use crate::ast::*;
use crate::error::{Error, Result, Span};
use crate::lexer::{lex, Tok, Token};

/// Parse a full program.
pub fn parse_program(src: &str) -> Result<Ast> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Expect `>`; splits a `>>` token in two so `register<bit<32>>(..)`
    /// parses (the classic nested-generic ambiguity).
    fn expect_gt(&mut self) -> Result<()> {
        if self.peek() == &Tok::Shr {
            self.tokens[self.pos].tok = Tok::Gt;
            Ok(())
        } else {
            self.expect(Tok::Gt).map(|_| ())
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<Token> {
        if self.peek() == &tok {
            Ok(self.bump())
        } else {
            Err(Error::new(
                self.span(),
                format!("expected {:?}, found {:?}", tok, self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(Error::new(
                self.span(),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::new(
                self.span(),
                format!("expected `{kw}`, found {:?}", self.peek()),
            ))
        }
    }

    /// Skip a run of annotations: `@name` or `@name(...)`.
    fn skip_annotations(&mut self) {
        while self.eat(&Tok::At) {
            let _ = self.ident();
            if self.peek() == &Tok::LParen {
                let mut depth = 0usize;
                loop {
                    match self.bump().tok {
                        Tok::LParen => depth += 1,
                        Tok::RParen => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Tok::Eof => break,
                        _ => {}
                    }
                }
            }
        }
    }

    // ---- program & declarations ----

    fn program(&mut self) -> Result<Ast> {
        let mut decls = Vec::new();
        loop {
            self.skip_annotations();
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Ident(kw) => match kw.as_str() {
                    "typedef" => decls.push(self.typedef()?),
                    "const" => decls.push(self.const_decl()?),
                    "header" => decls.push(self.header_or_struct(true)?),
                    "struct" => decls.push(self.header_or_struct(false)?),
                    "parser" => decls.push(self.parser_decl()?),
                    "control" => decls.push(self.control_decl()?),
                    "extern" | "action" => {
                        // Top-level externs/prototypes: skip the declaration.
                        self.skip_balanced_decl()?;
                    }
                    "error" | "match_kind" | "enum" => {
                        self.skip_balanced_decl()?;
                    }
                    "package" => {
                        self.skip_balanced_decl()?;
                    }
                    _ => decls.push(self.instantiation()?),
                },
                other => {
                    return Err(Error::new(
                        self.span(),
                        format!("unexpected token at top level: {other:?}"),
                    ))
                }
            }
        }
        Ok(Ast { decls })
    }

    /// Skip a declaration we deliberately ignore: consume until a top-level
    /// `;` or a balanced `{ ... }` group.
    fn skip_balanced_decl(&mut self) -> Result<()> {
        let mut depth = 0usize;
        loop {
            match self.peek().clone() {
                Tok::Eof => return Ok(()),
                Tok::LBrace => {
                    depth += 1;
                    self.bump();
                }
                Tok::RBrace => {
                    self.bump();
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        // optional trailing semicolon
                        self.eat(&Tok::Semi);
                        return Ok(());
                    }
                }
                Tok::Semi if depth == 0 => {
                    self.bump();
                    return Ok(());
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn type_ref(&mut self) -> Result<TypeRef> {
        let base = if self.eat_kw("bit") {
            if self.eat(&Tok::Lt) {
                let w = self.const_u128()? as u32;
                self.expect_gt()?;
                TypeRef::Bit(w)
            } else {
                TypeRef::Bit(1)
            }
        } else if self.eat_kw("int") {
            // Signed ints are treated as bit<N>; the verifier models them
            // with unsigned bit-vectors plus signed comparison ops.
            self.expect(Tok::Lt)?;
            let w = self.const_u128()? as u32;
            self.expect_gt()?;
            TypeRef::Bit(w)
        } else if self.eat_kw("bool") {
            TypeRef::Bool
        } else {
            TypeRef::Named(self.ident()?)
        };
        if self.eat(&Tok::LBracket) {
            let n = self.const_u128()? as u32;
            self.expect(Tok::RBracket)?;
            return Ok(TypeRef::Stack(Box::new(base), n));
        }
        Ok(base)
    }

    fn const_u128(&mut self) -> Result<u128> {
        match self.peek().clone() {
            Tok::Number { value, .. } => {
                self.bump();
                Ok(value)
            }
            other => Err(Error::new(
                self.span(),
                format!("expected number, found {other:?}"),
            )),
        }
    }

    fn typedef(&mut self) -> Result<Decl> {
        self.expect_kw("typedef")?;
        let ty = self.type_ref()?;
        let name = self.ident()?;
        self.expect(Tok::Semi)?;
        Ok(Decl::Typedef { name, ty })
    }

    fn const_decl(&mut self) -> Result<Decl> {
        self.expect_kw("const")?;
        let ty = self.type_ref()?;
        let name = self.ident()?;
        self.expect(Tok::Assign)?;
        let value = self.expr()?;
        self.expect(Tok::Semi)?;
        Ok(Decl::Const { name, ty, value })
    }

    fn header_or_struct(&mut self, is_header: bool) -> Result<Decl> {
        self.bump(); // 'header' | 'struct'
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut fields = Vec::new();
        while self.peek() != &Tok::RBrace {
            self.skip_annotations();
            let ty = self.type_ref()?;
            let fname = self.ident()?;
            self.expect(Tok::Semi)?;
            fields.push((fname, ty));
        }
        self.expect(Tok::RBrace)?;
        Ok(if is_header {
            Decl::Header { name, fields }
        } else {
            Decl::Struct { name, fields }
        })
    }

    fn params(&mut self) -> Result<Vec<Param>> {
        self.expect(Tok::LParen)?;
        let mut out = Vec::new();
        while self.peek() != &Tok::RParen {
            self.skip_annotations();
            let dir = if self.eat_kw("in") {
                Direction::In
            } else if self.eat_kw("out") {
                Direction::Out
            } else if self.eat_kw("inout") {
                Direction::InOut
            } else {
                Direction::None
            };
            let ty = self.type_ref()?;
            let name = self.ident()?;
            out.push(Param { dir, ty, name });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        Ok(out)
    }

    fn parser_decl(&mut self) -> Result<Decl> {
        self.expect_kw("parser")?;
        let name = self.ident()?;
        let params = self.params()?;
        // A prototype (from architecture files) ends with `;`.
        if self.eat(&Tok::Semi) {
            return Ok(Decl::Parser {
                name,
                params,
                states: Vec::new(),
            });
        }
        self.expect(Tok::LBrace)?;
        let mut states = Vec::new();
        while !self.eat(&Tok::RBrace) {
            self.skip_annotations();
            self.expect_kw("state")?;
            let sname = self.ident()?;
            self.expect(Tok::LBrace)?;
            let mut stmts = Vec::new();
            let mut transition = Transition::Direct("reject".to_string());
            loop {
                if self.eat(&Tok::RBrace) {
                    break;
                }
                if self.eat_kw("transition") {
                    transition = self.transition()?;
                    self.expect(Tok::RBrace)?;
                    break;
                }
                stmts.push(self.statement()?);
            }
            states.push(ParserState {
                name: sname,
                stmts,
                transition,
            });
        }
        Ok(Decl::Parser {
            name,
            params,
            states,
        })
    }

    fn transition(&mut self) -> Result<Transition> {
        if self.eat_kw("select") {
            self.expect(Tok::LParen)?;
            let mut exprs = vec![self.expr()?];
            while self.eat(&Tok::Comma) {
                exprs.push(self.expr()?);
            }
            self.expect(Tok::RParen)?;
            self.expect(Tok::LBrace)?;
            let mut cases = Vec::new();
            while !self.eat(&Tok::RBrace) {
                let keyset = self.keyset_list()?;
                self.expect(Tok::Colon)?;
                let next = self.ident()?;
                self.expect(Tok::Semi)?;
                cases.push(SelectCase { keyset, next });
            }
            Ok(Transition::Select { exprs, cases })
        } else {
            let target = self.ident()?;
            self.expect(Tok::Semi)?;
            Ok(Transition::Direct(target))
        }
    }

    fn keyset_list(&mut self) -> Result<Vec<Keyset>> {
        // Either `(k1, k2, ...)` for tuple keysets or a single keyset.
        if self.eat(&Tok::LParen) {
            let mut out = vec![self.keyset()?];
            while self.eat(&Tok::Comma) {
                out.push(self.keyset()?);
            }
            self.expect(Tok::RParen)?;
            Ok(out)
        } else {
            Ok(vec![self.keyset()?])
        }
    }

    fn keyset(&mut self) -> Result<Keyset> {
        if self.eat_kw("default") || self.eat_kw("_") {
            return Ok(Keyset::Default);
        }
        // Parse at a precedence above `&&` so the `&&&` reassembly below
        // sees its tokens unconsumed.
        let value = self.expr_prec(PREC_OR + 2)?;
        // `&&&` arrives as AndAnd Amp.
        if self.peek() == &Tok::AndAnd && self.peek2() == &Tok::Amp {
            self.bump();
            self.bump();
            let mask = self.expr_prec(PREC_OR + 2)?;
            return Ok(Keyset::Mask(value, mask));
        }
        Ok(Keyset::Value(value))
    }

    fn control_decl(&mut self) -> Result<Decl> {
        self.expect_kw("control")?;
        let name = self.ident()?;
        let params = self.params()?;
        if self.eat(&Tok::Semi) {
            return Ok(Decl::Control {
                name,
                params,
                locals: Vec::new(),
                apply: Block::default(),
            });
        }
        self.expect(Tok::LBrace)?;
        let mut locals = Vec::new();
        let mut apply = Block::default();
        while !self.eat(&Tok::RBrace) {
            self.skip_annotations();
            if self.at_kw("action") {
                locals.push(CtrlLocal::Action(self.action_decl()?));
            } else if self.at_kw("table") {
                locals.push(CtrlLocal::Table(self.table_decl()?));
            } else if self.at_kw("register") {
                locals.push(self.register_decl()?);
            } else if self.at_kw("counter")
                || self.at_kw("meter")
                || self.at_kw("direct_counter")
                || self.at_kw("direct_meter")
                || self.at_kw("action_profile")
                || self.at_kw("action_selector")
            {
                let kind = self.ident()?;
                // skip optional generic args and constructor args
                if self.eat(&Tok::Lt) {
                    while !self.eat(&Tok::Gt) {
                        self.bump();
                    }
                }
                if self.eat(&Tok::LParen) {
                    let mut depth = 1;
                    while depth > 0 {
                        match self.bump().tok {
                            Tok::LParen => depth += 1,
                            Tok::RParen => depth -= 1,
                            Tok::Eof => break,
                            _ => {}
                        }
                    }
                }
                let iname = self.ident()?;
                self.expect(Tok::Semi)?;
                locals.push(CtrlLocal::OpaqueExtern { name: iname, kind });
            } else if self.at_kw("apply") {
                self.bump();
                apply = self.block()?;
            } else {
                // local variable declaration
                let span = self.span();
                let ty = self.type_ref()?;
                let vname = self.ident()?;
                let init = if self.eat(&Tok::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(Tok::Semi)?;
                let _ = span;
                locals.push(CtrlLocal::Var {
                    ty,
                    name: vname,
                    init,
                });
            }
        }
        Ok(Decl::Control {
            name,
            params,
            locals,
            apply,
        })
    }

    fn action_decl(&mut self) -> Result<ActionDecl> {
        let span = self.span();
        self.expect_kw("action")?;
        let name = self.ident()?;
        let params = self.params()?;
        let body = self.block()?;
        Ok(ActionDecl {
            name,
            params,
            body,
            span,
        })
    }

    fn table_decl(&mut self) -> Result<TableDecl> {
        let span = self.span();
        self.expect_kw("table")?;
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut keys = Vec::new();
        let mut actions = Vec::new();
        let mut default_action = None;
        let mut size = None;
        while !self.eat(&Tok::RBrace) {
            self.skip_annotations();
            if self.eat_kw("key") {
                self.expect(Tok::Assign)?;
                self.expect(Tok::LBrace)?;
                while !self.eat(&Tok::RBrace) {
                    let e = self.expr()?;
                    self.expect(Tok::Colon)?;
                    let kind = self.ident()?;
                    self.skip_annotations();
                    self.expect(Tok::Semi)?;
                    keys.push((e, kind));
                }
            } else if self.eat_kw("actions") {
                self.expect(Tok::Assign)?;
                self.expect(Tok::LBrace)?;
                while !self.eat(&Tok::RBrace) {
                    self.skip_annotations();
                    let a = self.ident()?;
                    // allow `a();` form
                    if self.eat(&Tok::LParen) {
                        self.expect(Tok::RParen)?;
                    }
                    self.expect(Tok::Semi)?;
                    actions.push(a);
                }
            } else if self.at_kw("default_action")
                || (self.at_kw("const") && matches!(self.peek2(), Tok::Ident(s) if s == "default_action"))
            {
                self.eat_kw("const");
                self.expect_kw("default_action")?;
                self.expect(Tok::Assign)?;
                let a = self.ident()?;
                let mut args = Vec::new();
                if self.eat(&Tok::LParen) {
                    while self.peek() != &Tok::RParen {
                        args.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::RParen)?;
                }
                self.expect(Tok::Semi)?;
                default_action = Some((a, args));
            } else if self.eat_kw("size") {
                self.expect(Tok::Assign)?;
                size = Some(self.const_u128()? as u64);
                self.expect(Tok::Semi)?;
            } else if self.eat_kw("support_timeout") || self.eat_kw("implementation")
                || self.eat_kw("counters") || self.eat_kw("meters")
            {
                // properties we accept and ignore
                self.expect(Tok::Assign)?;
                while self.peek() != &Tok::Semi && self.peek() != &Tok::Eof {
                    self.bump();
                }
                self.expect(Tok::Semi)?;
            } else {
                return Err(Error::new(
                    self.span(),
                    format!("unknown table property {:?}", self.peek()),
                ));
            }
        }
        Ok(TableDecl {
            name,
            keys,
            actions,
            default_action,
            size,
            span,
        })
    }

    fn register_decl(&mut self) -> Result<CtrlLocal> {
        self.expect_kw("register")?;
        self.expect(Tok::Lt)?;
        let elem = self.type_ref()?;
        self.expect_gt()?;
        self.expect(Tok::LParen)?;
        let size = self.const_u128()? as u64;
        self.expect(Tok::RParen)?;
        let name = self.ident()?;
        self.expect(Tok::Semi)?;
        Ok(CtrlLocal::Register { name, elem, size })
    }

    fn instantiation(&mut self) -> Result<Decl> {
        let package = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        while self.peek() != &Tok::RParen {
            let a = self.ident()?;
            if self.eat(&Tok::LParen) {
                // constructor args: skip balanced
                let mut depth = 1;
                while depth > 0 {
                    match self.bump().tok {
                        Tok::LParen => depth += 1,
                        Tok::RParen => depth -= 1,
                        Tok::Eof => break,
                        _ => {}
                    }
                }
            }
            args.push(a);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        let name = self.ident()?;
        self.expect(Tok::Semi)?;
        Ok(Decl::Instantiation {
            package,
            args,
            name,
        })
    }

    // ---- statements ----

    fn block(&mut self) -> Result<Block> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            stmts.push(self.statement()?);
        }
        Ok(Block { stmts })
    }

    fn statement(&mut self) -> Result<Stmt> {
        self.skip_annotations();
        let span = self.span();
        if self.at_kw("if") {
            self.bump();
            self.expect(Tok::LParen)?;
            let cond = self.expr()?;
            self.expect(Tok::RParen)?;
            let then_blk = self.stmt_as_block()?;
            let else_blk = if self.eat_kw("else") {
                self.stmt_as_block()?
            } else {
                Block::default()
            };
            return Ok(Stmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            });
        }
        if self.at_kw("switch") {
            self.bump();
            self.expect(Tok::LParen)?;
            let expr = self.expr()?;
            self.expect(Tok::RParen)?;
            self.expect(Tok::LBrace)?;
            let mut cases: Vec<(Option<String>, Block)> = Vec::new();
            let mut pending: Vec<Option<String>> = Vec::new();
            while !self.eat(&Tok::RBrace) {
                let label = if self.eat_kw("default") {
                    None
                } else {
                    Some(self.ident()?)
                };
                self.expect(Tok::Colon)?;
                if self.peek() == &Tok::LBrace {
                    let body = self.block()?;
                    // fall-through labels share the body
                    for l in pending.drain(..) {
                        cases.push((l, body.clone()));
                    }
                    cases.push((label, body));
                } else {
                    // fall-through label without body
                    pending.push(label);
                }
            }
            if !pending.is_empty() {
                return Err(Error::new(span, "switch labels with no body"));
            }
            return Ok(Stmt::Switch { expr, cases, span });
        }
        if self.at_kw("exit") {
            self.bump();
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Exit { span });
        }
        if self.at_kw("return") {
            self.bump();
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Return { span });
        }
        if self.peek() == &Tok::LBrace {
            return Ok(Stmt::Block(self.block()?));
        }
        // Variable declaration: `bit<N> x = e;` / `bool b;` / `T x = e;`
        if self.is_var_decl_start() {
            let ty = self.type_ref()?;
            let name = self.ident()?;
            let init = if self.eat(&Tok::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Var {
                ty,
                name,
                init,
                span,
            });
        }
        // Assignment or call.
        let e = self.expr()?;
        if self.eat(&Tok::Assign) {
            let rhs = self.expr()?;
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Assign { lhs: e, rhs, span });
        }
        self.expect(Tok::Semi)?;
        match e {
            Expr::Call { .. } => Ok(Stmt::Call { call: e, span }),
            _ => Err(Error::new(span, "expression statement must be a call")),
        }
    }

    fn stmt_as_block(&mut self) -> Result<Block> {
        if self.peek() == &Tok::LBrace {
            self.block()
        } else {
            Ok(Block {
                stmts: vec![self.statement()?],
            })
        }
    }

    /// Lookahead: `bit`/`bool`/`int` always start declarations; `Ident
    /// Ident` does too (`ipv4_t tmp`), but `Ident .`/`(`/`=` etc. do not.
    fn is_var_decl_start(&self) -> bool {
        match self.peek() {
            Tok::Ident(s) if s == "bit" || s == "bool" || s == "int" => true,
            Tok::Ident(_) => matches!(self.peek2(), Tok::Ident(_)),
            _ => false,
        }
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr> {
        let cond = self.expr_prec(0)?;
        if self.eat(&Tok::Question) {
            let span = cond.span();
            let then_e = self.ternary()?;
            self.expect(Tok::Colon)?;
            let else_e = self.ternary()?;
            return Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_e: Box::new(then_e),
                else_e: Box::new(else_e),
                span,
            });
        }
        Ok(cond)
    }

    fn expr_prec(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::OrOr => (BinOp::Or, PREC_OR),
                Tok::AndAnd => (BinOp::And, PREC_AND),
                Tok::Eq => (BinOp::Eq, PREC_EQ),
                Tok::Ne => (BinOp::Ne, PREC_EQ),
                Tok::Lt => (BinOp::Lt, PREC_REL),
                Tok::Le => (BinOp::Le, PREC_REL),
                Tok::Gt => (BinOp::Gt, PREC_REL),
                Tok::Ge => (BinOp::Ge, PREC_REL),
                Tok::Pipe => (BinOp::BitOr, PREC_BITOR),
                Tok::Caret => (BinOp::BitXor, PREC_BITXOR),
                Tok::Amp => (BinOp::BitAnd, PREC_BITAND),
                Tok::Shl => (BinOp::Shl, PREC_SHIFT),
                Tok::Shr => (BinOp::Shr, PREC_SHIFT),
                Tok::Plus => (BinOp::Add, PREC_ADD),
                Tok::Minus => (BinOp::Sub, PREC_ADD),
                Tok::PlusPlus => (BinOp::Concat, PREC_ADD),
                Tok::Star => (BinOp::Mul, PREC_MUL),
                Tok::Slash => (BinOp::Div, PREC_MUL),
                Tok::Percent => (BinOp::Mod, PREC_MUL),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.expr_prec(prec + 1)?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        let span = self.span();
        if self.eat(&Tok::Not) {
            let arg = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                arg: Box::new(arg),
                span,
            });
        }
        if self.eat(&Tok::Tilde) {
            let arg = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::BitNot,
                arg: Box::new(arg),
                span,
            });
        }
        if self.eat(&Tok::Minus) {
            let arg = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                arg: Box::new(arg),
                span,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        loop {
            let span = self.span();
            if self.eat(&Tok::Dot) {
                let member = self.ident()?;
                e = Expr::Member {
                    base: Box::new(e),
                    member,
                    span,
                };
            } else if self.eat(&Tok::LBracket) {
                let first = self.expr()?;
                if self.eat(&Tok::Colon) {
                    let lo = self.const_u128()? as u32;
                    self.expect(Tok::RBracket)?;
                    let hi = match first {
                        Expr::Number { value, .. } => value as u32,
                        _ => {
                            return Err(Error::new(
                                span,
                                "slice bounds must be constant",
                            ))
                        }
                    };
                    e = Expr::Slice {
                        base: Box::new(e),
                        hi,
                        lo,
                        span,
                    };
                } else {
                    self.expect(Tok::RBracket)?;
                    e = Expr::Index {
                        base: Box::new(e),
                        index: Box::new(first),
                        span,
                    };
                }
            } else if self.peek() == &Tok::LParen {
                self.bump();
                let mut args = Vec::new();
                while self.peek() != &Tok::RParen {
                    args.push(self.expr()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RParen)?;
                e = Expr::Call {
                    func: Box::new(e),
                    args,
                    span,
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Number { value, width } => {
                self.bump();
                Ok(Expr::Number { value, width, span })
            }
            Tok::Ident(s) if s == "true" => {
                self.bump();
                Ok(Expr::Bool { value: true, span })
            }
            Tok::Ident(s) if s == "false" => {
                self.bump();
                Ok(Expr::Bool { value: false, span })
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(Expr::Ident { name, span })
            }
            Tok::LParen => {
                self.bump();
                // Cast forms: `(bit<N>) e`, `(bool) e`.
                if self.at_kw("bit") || self.at_kw("bool") || self.at_kw("int") {
                    let ty = self.type_ref()?;
                    self.expect(Tok::RParen)?;
                    let arg = self.unary()?;
                    return Ok(Expr::Cast {
                        ty,
                        arg: Box::new(arg),
                        span,
                    });
                }
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(Error::new(
                span,
                format!("unexpected token in expression: {other:?}"),
            )),
        }
    }
}

const PREC_OR: u8 = 1;
const PREC_AND: u8 = 2;
const PREC_EQ: u8 = 3;
const PREC_REL: u8 = 4;
const PREC_BITOR: u8 = 5;
const PREC_BITXOR: u8 = 6;
const PREC_BITAND: u8 = 7;
const PREC_SHIFT: u8 = 8;
const PREC_ADD: u8 = 9;
const PREC_MUL: u8 = 10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_header_and_typedef() {
        let src = r#"
            typedef bit<32> ip4_addr_t;
            header ipv4_t { bit<8> ttl; ip4_addr_t srcAddr; }
        "#;
        let ast = parse_program(src).unwrap();
        assert_eq!(ast.decls.len(), 2);
        match &ast.decls[1] {
            Decl::Header { name, fields } => {
                assert_eq!(name, "ipv4_t");
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].1, TypeRef::Bit(8));
                assert_eq!(fields[1].1, TypeRef::Named("ip4_addr_t".into()));
            }
            d => panic!("wrong decl {d:?}"),
        }
    }

    #[test]
    fn parse_control_with_table() {
        let src = r#"
            control ingress(inout headers hdr) {
                action set_nhop(bit<32> nhop, bit<9> port) {
                    hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
                }
                table ipv4_lpm {
                    key = { hdr.ipv4.dstAddr: lpm; }
                    actions = { set_nhop; NoAction; }
                    default_action = NoAction();
                    size = 1024;
                }
                apply {
                    if (hdr.ipv4.isValid()) {
                        ipv4_lpm.apply();
                    }
                }
            }
        "#;
        let ast = parse_program(src).unwrap();
        let Decl::Control { locals, apply, .. } = &ast.decls[0] else {
            panic!("expected control");
        };
        assert_eq!(locals.len(), 2);
        let CtrlLocal::Table(t) = &locals[1] else {
            panic!("expected table");
        };
        assert_eq!(t.keys.len(), 1);
        assert_eq!(t.keys[0].1, "lpm");
        assert_eq!(t.actions, vec!["set_nhop", "NoAction"]);
        assert_eq!(t.size, Some(1024));
        assert_eq!(apply.stmts.len(), 1);
    }

    #[test]
    fn parse_parser_with_select() {
        let src = r#"
            parser P(packet_in pkt, out headers hdr) {
                state start { transition parse_eth; }
                state parse_eth {
                    pkt.extract(hdr.eth);
                    transition select(hdr.eth.etherType) {
                        0x800: parse_ipv4;
                        0x86dd &&& 0xffff: parse_ipv6;
                        default: accept;
                    }
                }
                state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
                state parse_ipv6 { transition accept; }
            }
        "#;
        let ast = parse_program(src).unwrap();
        let Decl::Parser { states, .. } = &ast.decls[0] else {
            panic!();
        };
        assert_eq!(states.len(), 4);
        let Transition::Select { cases, .. } = &states[1].transition else {
            panic!();
        };
        assert_eq!(cases.len(), 3);
        assert!(matches!(cases[1].keyset[0], Keyset::Mask(..)));
        assert!(matches!(cases[2].keyset[0], Keyset::Default));
    }

    #[test]
    fn parse_expressions_precedence() {
        let src = "control c() { apply { x = a + b * c | d; } }";
        let ast = parse_program(src).unwrap();
        let Decl::Control { apply, .. } = &ast.decls[0] else {
            panic!();
        };
        let Stmt::Assign { rhs, .. } = &apply.stmts[0] else {
            panic!();
        };
        // Top must be BitOr.
        let Expr::Binary { op, lhs, .. } = rhs else {
            panic!();
        };
        assert_eq!(*op, BinOp::BitOr);
        let Expr::Binary { op, .. } = lhs.as_ref() else {
            panic!();
        };
        assert_eq!(*op, BinOp::Add);
    }

    #[test]
    fn parse_cast_and_ternary() {
        let src = "control c() { apply { x = (bit<9>) (y > 0 ? y : z); } }";
        let ast = parse_program(src).unwrap();
        let Decl::Control { apply, .. } = &ast.decls[0] else {
            panic!();
        };
        let Stmt::Assign { rhs, .. } = &apply.stmts[0] else {
            panic!();
        };
        assert!(matches!(rhs, Expr::Cast { ty: TypeRef::Bit(9), .. }));
    }

    #[test]
    fn parse_switch_action_run() {
        let src = r#"
            control c() {
                apply {
                    switch (t.apply().action_run) {
                        a1: { x = 1; }
                        a2:
                        a3: { x = 2; }
                        default: { }
                    }
                }
            }
        "#;
        let ast = parse_program(src).unwrap();
        let Decl::Control { apply, .. } = &ast.decls[0] else {
            panic!();
        };
        let Stmt::Switch { cases, .. } = &apply.stmts[0] else {
            panic!();
        };
        assert_eq!(cases.len(), 4); // a1, a2 (shared body), a3, default
        assert_eq!(cases[0].0.as_deref(), Some("a1"));
        assert_eq!(cases[1].0.as_deref(), Some("a2"));
        assert_eq!(cases[3].0, None);
    }

    #[test]
    fn parse_register_and_instantiation() {
        let src = r#"
            control c() {
                register<bit<32>>(1024) counts;
                apply { counts.read(x, (bit<32>)ix); counts.write((bit<32>)ix, x + 1); }
            }
            V1Switch(P(), vc(), ingress(), egress(), cc(), D()) main;
        "#;
        let ast = parse_program(src).unwrap();
        assert_eq!(ast.decls.len(), 2);
        let Decl::Control { locals, .. } = &ast.decls[0] else {
            panic!();
        };
        assert!(matches!(
            locals[0],
            CtrlLocal::Register { size: 1024, .. }
        ));
        let Decl::Instantiation { package, args, name } = &ast.decls[1] else {
            panic!();
        };
        assert_eq!(package, "V1Switch");
        assert_eq!(args.len(), 6);
        assert_eq!(name, "main");
    }

    #[test]
    fn parse_slice() {
        let src = "control c() { apply { x = y[15:8]; } }";
        let ast = parse_program(src).unwrap();
        let Decl::Control { apply, .. } = &ast.decls[0] else {
            panic!();
        };
        let Stmt::Assign { rhs, .. } = &apply.stmts[0] else {
            panic!();
        };
        assert!(matches!(rhs, Expr::Slice { hi: 15, lo: 8, .. }));
    }

    #[test]
    fn skipped_decls() {
        let src = r#"
            error { NoError, PacketTooShort }
            match_kind { exact, ternary, lpm }
            extern void mark_to_drop(inout standard_metadata_t std);
            control c() { apply { } }
        "#;
        let ast = parse_program(src).unwrap();
        assert_eq!(ast.decls.len(), 1);
    }

    #[test]
    fn error_reports_line() {
        let src = "control c() {\n  apply {\n    x = ;\n  }\n}";
        let err = parse_program(src).unwrap_err();
        assert_eq!(err.span.line, 3);
    }
}
