#![warn(missing_docs)]

//! # bf4-p4 — a P4-16 frontend for the bf4 verifier
//!
//! The paper implements bf4 as a backend to the `p4c` compiler suite. This
//! crate replaces that dependency with a from-scratch frontend for the
//! P4-16 fragment the verifier needs (the V1Model programs of the paper's
//! evaluation):
//!
//! * [`lexer`] — tokenizer with source spans;
//! * [`ast`] — the abstract syntax tree;
//! * [`parser`] — recursive-descent parser producing the AST;
//! * [`typecheck`] — symbol resolution and type checking, producing a
//!   [`typecheck::Program`] with every expression annotated by its type.
//!
//! Supported P4-16 surface: `typedef`, `const`, `header`/`struct`
//! declarations, header stacks, parsers with `select` transitions and
//! loops, controls with actions / tables / `apply` blocks, `switch` on
//! `table.apply().action_run`, registers and the V1Model extern primitives
//! used by open-source programs (`mark_to_drop`, `hash`, `random`, clone
//! and resubmit variants, checksum externs), arbitrary-width `bit<N>`
//! arithmetic, casts, slices and `isValid()`.
//!
//! Not supported (not needed for the reproduced evaluation): `varbit`
//! fields, PSA/TNA architectures (the paper also restricts itself to
//! V1Model), type-parametric generics beyond the built-in externs, and the
//! preprocessor (corpus programs are self-contained; `#include` lines are
//! ignored).

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod typecheck;

pub use error::{Error, Result, Span};
pub use parser::parse_program;
pub use typecheck::{check, Program};

/// Parse and type-check a P4 source string in one call.
pub fn frontend(source: &str) -> Result<Program> {
    let ast = {
        let _sp = bf4_obs::span("frontend", "parse");
        parse_program(source)?
    };
    let _sp = bf4_obs::span("frontend", "typecheck");
    typecheck::check(&ast)
}
