//! `report` — regenerates every table and in-text measurement of the
//! paper's evaluation (§5) on the bf4-corpus suite.
//!
//! ```text
//! report table1        Table 1: per-program bug/fix counts and runtimes
//! report slicing       §4.1 ablation: instructions & time with/without slicing
//! report infer         §4.2: Fast-Infer vs Infer runtime on the largest program
//! report multitable    §4.2: bugs controlled only by multi-table assertions
//! report dontcare      §4.2: extra bugs trimmed by the dontCare heuristic
//! report keyoverhead   §5: key-addition overhead on the largest program
//! report p4v           §5.2: p4v-approximation monolithic query
//! report vera          §5.2: Vera-approximation concrete vs symbolic entries
//! report shim          §5.3: shim validation latency over a 2000-update trace
//! report shimbench [--out FILE] [--dir DIR]
//!                      staged-load stress campaign on the sharded shim
//!                      (warmup → burst → fault-mid-burst → drain) with a
//!                      crash/reopen check, assertion audit and the
//!                      group-commit vs per-update-fsync comparison
//!                      (optionally written as BENCH_shim.json); exit 1 on
//!                      any gate violation
//! report casestudies   §5.1: the three interesting-bug case studies
//! report corpus [--jobs N] [--cache-cap N] [--solver-mode M] [--trace-out FILE]
//!                      normalized corpus reports on stdout (stable across
//!                      worker counts, cache configs and solver modes;
//!                      engine stats go to stderr) — the basis of ci.sh's
//!                      sequential-vs-parallel and cross-mode diffs
//! report engine        speedup-vs-jobs table (jobs ∈ {1,2,4}, cache
//!                      on/off) with per-stage latencies and cache stats
//! report profile <trace.jsonl> [--request ID]
//!                      aggregate a bf4 --trace-out file into a per-stage /
//!                      per-program time table; with --request, reconstruct
//!                      one daemon request's flame from a bf4d trace
//! report trace-lint <trace.jsonl> [--require-layers a,b,...]
//!                      validate every line against the bf4-obs span
//!                      schema; exit 1 on the first violation. Requiring
//!                      the `daemon` layer additionally validates the
//!                      `daemon.request` span tree: every request span
//!                      carries its request-ID tag and every pipeline span
//!                      under it carries the matching tag
//! report faults <trace.jsonl>
//!                      audit a chaos run's `--trace-out` file: per-site
//!                      injection counts plus the solver degradations the
//!                      schedule caused
//! report chaos [--seeds a,b,c] [--jobs N]
//!                      run the corpus fault-free, re-run it under each
//!                      seeded chaos schedule and check every report
//!                      degrades only conservatively; exit 1 on any
//!                      verdict flip
//! report cachebench [--dir DIR] [--out FILE] [--jobs N]
//!                      cold-vs-warm persistent-cache run over the corpus
//!                      (optionally written as BENCH_cache.json); exit 1
//!                      unless the warm hit rate strictly beats the cold
//!                      one and the reports stay identical
//! report solverbench [--out FILE] [--jobs N]
//!                      corpus wall-clock in all three solver modes
//!                      (oneshot, incremental, portfolio; optionally
//!                      written as BENCH_solver.json); exit 1 unless the
//!                      incremental run strictly beats oneshot, reuses
//!                      solver contexts, and every normalized report is
//!                      byte-identical across the modes
//! report daemonbench [--out FILE]
//!                      cold full-verify vs warm incremental re-verify over
//!                      a scripted edit of every corpus program, through an
//!                      in-process bf4d daemon (optionally written as
//!                      BENCH_daemon.json); exit 1 unless the warm pass is
//!                      strictly faster, skips bugs, and every verdict is
//!                      byte-identical to a one-shot run
//! report normalize <file.p4> [--name N]
//!                      one-shot normalized report of a single program on
//!                      stdout (what ci.sh diffs a daemon verdict against)
//! report slo <tsdb.bf4t> --slo SPEC [--window N]
//!                      evaluate service-level objectives over the tail of
//!                      a daemon's persistent time-series; exit 1 when any
//!                      objective is violated
//! report expose-lint <file>
//!                      validate a Prometheus text exposition (e.g. one
//!                      scraped from bf4d --metrics-addr); exit 1 on any
//!                      grammar violation
//! report regress --fresh FILE --baseline FILE [--tolerance T]
//!                      compare a freshly written BENCH_*.json against a
//!                      committed baseline on its scale-free metrics (hit
//!                      rates, speedups, skip counts, verdict identity)
//!                      with a relative tolerance band; exit 1 on any
//!                      regression beyond the band
//! report all           everything above except `corpus`, `chaos`,
//!                      `cachebench` and `daemonbench`
//! ```

use bf4_core::driver::{verify_isolated, VerifyOptions};
use bf4_engine::{check_conservative, normalized_report, verify_corpus, EngineConfig};
use std::time::Instant;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match mode.as_str() {
        "table1" => table1(),
        "slicing" => slicing(),
        "infer" => infer_cmp(),
        "multitable" => multitable(),
        "dontcare" => dontcare(),
        "keyoverhead" => keyoverhead(),
        "p4v" => p4v(),
        "vera" => vera(),
        "shim" => shim(),
        "shimbench" => shimbench(),
        "casestudies" => casestudies(),
        "corpus" => corpus(),
        "engine" => engine(),
        "profile" => profile(),
        "trace-lint" => trace_lint(),
        "faults" => faults(),
        "chaos" => chaos(),
        "cachebench" => cachebench(),
        "solverbench" => solverbench(),
        "daemonbench" => daemonbench(),
        "normalize" => normalize_cmd(),
        "slo" => slo_cmd(),
        "expose-lint" => expose_lint(),
        "regress" => regress_cmd(),
        "all" => {
            table1();
            slicing();
            infer_cmp();
            multitable();
            dontcare();
            keyoverhead();
            p4v();
            vera();
            shim();
            casestudies();
            engine();
        }
        other => {
            eprintln!("unknown mode `{other}`");
            std::process::exit(2);
        }
    }
}

/// Table 1 of the paper: LoC, #bugs, bugs after Infer, runtime, bugs after
/// fixes, keys added — one row per corpus program.
fn table1() {
    println!("== Table 1: experimental results on the corpus ==");
    println!(
        "{:<20} {:>5} {:>6} {:>12} {:>11} {:>11} {:>10}",
        "program", "LoC", "#bugs", "after-Infer", "runtime(s)", "after-fixes", "keys-added"
    );
    for p in bf4_corpus::all() {
        let t0 = Instant::now();
        // Isolated per program: a panic or frontend error in one program
        // degrades its row but the rest of the table still prints.
        let r = verify_isolated(p.source, &VerifyOptions::default());
        let flag = if !r.degraded.is_empty() {
            " DEGRADED"
        } else if r.egress_spec_fix {
            " +drop-fix"
        } else {
            ""
        };
        println!(
            "{:<20} {:>5} {:>6} {:>12} {:>11.3} {:>11} {:>10}{}",
            p.name,
            r.metrics.loc,
            r.bugs_total,
            r.bugs_after_infer,
            t0.elapsed().as_secs_f64(),
            r.bugs_after_fixes,
            r.keys_added,
            flag,
        );
        for d in &r.degraded {
            println!("{:<20}   degraded[{}]: {}", "", d.stage, d.error);
        }
    }
    println!();
}

/// §4.1: slicing ablation on the largest program (paper: 17155→7087
/// instructions, 36s→11s on switch.p4).
fn slicing() {
    println!("== §4.1 slicing ablation ({}) ==", bf4_corpus::largest().name);
    let src = bf4_corpus::largest().source;
    // Three configurations, mirroring the paper's "instructions relevant
    // for bug reachability" comparison: the raw instrumented program, the
    // classically optimized one, and the sliced one.
    for (label, optimize, slicing) in [
        ("instrumented only", false, false),
        ("slicing alone", false, true),
        ("optimizations alone", true, false),
        ("optimizations+slice", true, true),
    ] {
        let opts = VerifyOptions {
            optimize,
            slicing,
            fast_infer: false,
            infer: false,
            multi_table: false,
            fixes: false,
            ..VerifyOptions::default()
        };
        let t0 = Instant::now();
        let r = verify_isolated(src, &opts);
        let instrs = if slicing {
            r.metrics.instrs_after_slice
        } else {
            r.metrics.instrs_before_slice
        };
        println!(
            "{label:<20} instrs={:>6} (lowered {:>6}) bugs={} model-check time={:?}",
            instrs,
            r.metrics.instrs_lowered,
            r.bugs_total,
            t0.elapsed(),
        );
    }
    println!();
}

/// §4.2: Fast-Infer vs Infer runtime (paper: 1.5 s vs ~10 min).
fn infer_cmp() {
    println!("== §4.2 Fast-Infer vs Infer ({}) ==", bf4_corpus::largest().name);
    let src = bf4_corpus::largest().source;
    for (label, fast, full) in [("Fast-Infer only", true, false), ("Infer only", false, true)] {
        let opts = VerifyOptions {
            fast_infer: fast,
            infer: full,
            multi_table: false,
            fixes: false,
            ..VerifyOptions::default()
        };
        let t0 = Instant::now();
        let r = verify_isolated(src, &opts);
        println!(
            "{label:<18} specs={:>3} bugs-after={:>3} time={:?} (phase fast={:?} infer={:?})",
            r.annotations.specs.len(),
            r.bugs_after_infer,
            t0.elapsed(),
            r.timings.fast_infer,
            r.timings.infer,
        );
    }
    println!();
}

/// §4.2: multi-table heuristic contribution.
fn multitable() {
    println!("== §4.2 multi-table heuristic ==");
    for name in ["fabric_switch", "multi_tenant"] {
        let p = bf4_corpus::by_name(name).unwrap();
        let without = VerifyOptions {
            multi_table: false,
            fixes: false,
            ..VerifyOptions::default()
        };
        let with = VerifyOptions {
            multi_table: true,
            fixes: false,
            ..VerifyOptions::default()
        };
        let r0 = verify_isolated(p.source, &without);
        let r1 = verify_isolated(p.source, &with);
        println!(
            "{name}: bugs after single-table inference={} after multi-table={} (controlled by multi-table: {})",
            r0.bugs_after_infer,
            r1.bugs_after_infer,
            r0.bugs_after_infer.saturating_sub(r1.bugs_after_infer),
        );
    }
    println!();
}

/// §4.2: dontCare heuristic — encapsulation bugs trimmed.
fn dontcare() {
    println!("== §4.2 dontCare heuristic (destructive header copies) ==");
    let p = bf4_corpus::largest();
    for (label, dc) in [("without dontCare", false), ("with dontCare", true)] {
        let mut opts = VerifyOptions {
            fixes: false,
            ..VerifyOptions::default()
        };
        opts.lower.dontcare = dc;
        let r = verify_isolated(p.source, &opts);
        println!(
            "{label:<18} bugs={} after inference={}",
            r.bugs_total, r.bugs_after_infer
        );
    }
    println!();
}

/// §5: key-addition overhead (paper: +23 keys on 372 = 6%, 13/129 tables).
fn keyoverhead() {
    println!("== §5 key-addition overhead ({}) ==", bf4_corpus::largest().name);
    let p = bf4_corpus::largest();
    let r = verify_isolated(p.source, &VerifyOptions::default());
    let program = bf4_p4::frontend(p.source).unwrap();
    let total_keys: usize = program
        .controls
        .values()
        .flat_map(|c| &c.tables)
        .map(|t| t.keys.len())
        .sum();
    let total_tables: usize = program.controls.values().map(|c| c.tables.len()).sum();
    // validity keys are 1 bit each
    println!(
        "keys added: {} (+{:.1}% of {} existing keys); tables modified: {}/{} ({:.1}%)",
        r.keys_added,
        100.0 * r.keys_added as f64 / total_keys.max(1) as f64,
        total_keys,
        r.tables_modified,
        total_tables,
        100.0 * r.tables_modified as f64 / total_tables.max(1) as f64,
    );
    for f in &r.fixes {
        println!("  {}.{} += {:?}", f.control, f.table, f.keys);
    }
    println!();
}

/// §5.2: the p4v approximation — one monolithic reachability query.
fn p4v() {
    println!("== §5.2 p4v approximation ==");
    let p = bf4_corpus::largest();
    let program = bf4_p4::frontend(p.source).unwrap();
    let (cfg, _) =
        bf4_core::driver::build_cfg(&program, &VerifyOptions::default()).unwrap();
    let t0 = Instant::now();
    let res = bf4_core::baselines::p4v_check(&cfg, &[]);
    println!(
        "{}: any-bug={} ({} bug disjuncts) query={:?} total={:?}",
        p.name,
        res.any_bug,
        res.bug_count,
        res.query_time,
        t0.elapsed()
    );
    println!();
}

/// §5.2: the Vera approximation — concrete snapshot vs symbolic entries.
fn vera() {
    println!("== §5.2 Vera approximation ==");
    // Concrete snapshots are tractable on a moderate program (the paper:
    // 15 s per switch.p4 snapshot) while symbolic entries blow the path
    // budget on the large one (the paper: 30% coverage after 7 hours).
    let nat = bf4_corpus::by_name("simple_nat").unwrap();
    let program = bf4_p4::frontend(nat.source).unwrap();
    let (cfg, _) =
        bf4_core::driver::build_cfg(&program, &VerifyOptions::default()).unwrap();
    let snap = bf4_core::baselines::benign_snapshot(&cfg);
    let concrete = bf4_core::baselines::vera_explore(&cfg, Some(&snap), 100_000);
    println!(
        "simple_nat, concrete snapshot: paths={} bugs-hit={} exhausted={} time={:?}",
        concrete.paths,
        concrete.bugs_hit.len(),
        concrete.exhausted_budget,
        concrete.time
    );
    let big = bf4_corpus::largest();
    let program = bf4_p4::frontend(big.source).unwrap();
    let (cfg, _) =
        bf4_core::driver::build_cfg(&program, &VerifyOptions::default()).unwrap();
    let symbolic = bf4_core::baselines::vera_explore(&cfg, None, 2000);
    println!(
        "{}, symbolic entries: paths={} bugs-hit={} exhausted={} time={:?}   <- coverage collapse",
        big.name,
        symbolic.paths,
        symbolic.bugs_hit.len(),
        symbolic.exhausted_budget,
        symbolic.time
    );
    println!();
}

/// §5.3: shim latency over a 2000-update trace on the largest program.
fn shim() {
    println!("== §5.3 shim validation latency ==");
    let p = bf4_corpus::largest();
    let r = verify_isolated(p.source, &VerifyOptions::default());
    println!(
        "{}: {} assertions over {} asserted tables",
        p.name,
        r.annotations.specs.len(),
        r.annotations.tables.len()
    );
    let mut shim = bf4_shim::Shim::new(&r.annotations);
    let mut ctrl = bf4_shim::controller::Controller::new(
        &r.annotations,
        bf4_shim::controller::WorkloadConfig::default(),
    );
    let mut hist = bf4_obs::Histogram::default();
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for u in ctrl.workload() {
        let t0 = Instant::now();
        match shim.apply(&u) {
            Ok(_) => accepted += 1,
            Err(_) => rejected += 1,
        }
        hist.record(t0.elapsed());
    }
    let stats = bf4_shim::stats::from_histogram(&hist);
    println!("updates: {} accepted, {} rejected", accepted, rejected);
    println!("per-update validation latency: {stats}");
    println!();
}

/// The sharded shim's staged-load stress campaign, with its own gates:
/// zero acknowledged batches lost across the mid-campaign crash/reopen,
/// zero invalid rules admitted under any injected fault, and group-commit
/// journaling strictly beating one fsync per update.
fn shimbench() {
    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut out: Option<String> = None;
    let mut config = bf4_shim::campaign::CampaignConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args.get(i).cloned();
                if out.is_none() {
                    eprintln!("report shimbench: --out expects a file path");
                    std::process::exit(2);
                }
            }
            "--dir" => {
                i += 1;
                config.dir = args.get(i).map(Into::into).unwrap_or_else(|| {
                    eprintln!("report shimbench: --dir expects a directory");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("report shimbench: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let p = bf4_corpus::largest();
    println!("== shimbench: sharded-shim stress campaign ({}) ==", p.name);
    let r = verify_isolated(p.source, &VerifyOptions::default());
    let report = bf4_shim::campaign::run_campaign(&r.annotations, &config).unwrap_or_else(|e| {
        eprintln!("report shimbench: campaign failed: {e}");
        std::process::exit(2);
    });
    print!("{}", report.render_text());
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("report shimbench: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {path}");
    }
    let gates = report.gate_violations();
    if !gates.is_empty() {
        for g in &gates {
            eprintln!("shimbench gate: {g}");
        }
        std::process::exit(1);
    }
    println!("shimbench OK: nothing acknowledged was lost, nothing invalid admitted, group commit pays");
}

fn corpus_programs() -> Vec<(String, String)> {
    bf4_corpus::all()
        .into_iter()
        .map(|p| (p.name.to_string(), p.source.to_string()))
        .collect()
}

/// Normalized corpus reports: stdout is identical for any `--jobs` /
/// `--cache-cap` combination (ci.sh diffs it); engine stats go to stderr.
fn corpus() {
    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut config = EngineConfig::default();
    let mut options = VerifyOptions::default();
    let mut trace_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--solver-mode" => {
                i += 1;
                options.solver.mode = args
                    .get(i)
                    .and_then(|v| bf4_smt::SolverMode::parse(v))
                    .unwrap_or_else(|| {
                        eprintln!(
                            "report corpus: --solver-mode expects oneshot, incremental or portfolio"
                        );
                        std::process::exit(2);
                    });
            }
            "--trace-out" => {
                i += 1;
                trace_out = args.get(i).cloned();
                if trace_out.is_none() {
                    eprintln!("report corpus: --trace-out expects an output path");
                    std::process::exit(2);
                }
            }
            "--jobs" => {
                i += 1;
                config.jobs = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("report corpus: --jobs expects a count >= 1");
                        std::process::exit(2);
                    });
            }
            "--cache-cap" => {
                i += 1;
                config.cache_cap = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("report corpus: --cache-cap expects a number of entries");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("report corpus: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if trace_out.is_some() {
        bf4_obs::set_enabled(true);
    }
    let programs = corpus_programs();
    let (reports, stats) = verify_corpus(&programs, &options, &config);
    for ((name, _), report) in programs.iter().zip(&reports) {
        print!("{}", normalized_report(name, report));
    }
    eprint!("{stats}");
    if let Some(path) = trace_out {
        let jsonl = bf4_obs::render_jsonl(&bf4_obs::take_spans());
        if let Err(e) = std::fs::write(&path, jsonl) {
            eprintln!("report corpus: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
}

/// Read a `--trace-out` JSONL file into validated spans, exiting with the
/// offending line number on the first schema violation.
fn read_trace(path: &str) -> Vec<bf4_obs::TraceSpan> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let mut spans = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        match bf4_obs::parse_line(line) {
            Ok(Some(s)) => spans.push(s),
            Ok(None) => {}
            Err(e) => {
                eprintln!("{path}:{}: {e}", lineno + 1);
                std::process::exit(1);
            }
        }
    }
    spans
}

/// Aggregate a trace file into the per-program / per-stage time table,
/// plus the cache's effectiveness as seen by the solver spans. With
/// `--request ID`, reconstruct one daemon request's flame instead: the
/// request-ID context tag every span under a `daemon.request` span
/// carries makes the subtree selectable without walking parent chains.
fn profile() {
    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut path: Option<String> = None;
    let mut request: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--request" => {
                i += 1;
                request = args.get(i).cloned();
                if request.is_none() {
                    eprintln!("report profile: --request expects a request ID like req-3");
                    std::process::exit(2);
                }
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("report profile: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!("usage: report profile <trace.jsonl> [--request ID]");
        std::process::exit(2);
    };
    let spans = read_trace(&path);
    if let Some(id) = request {
        let selected: Vec<bf4_obs::TraceSpan> = spans
            .into_iter()
            .filter(|s| s.tags.get("request").map(String::as_str) == Some(id.as_str()))
            .collect();
        if selected.is_empty() {
            eprintln!("report profile: no span tagged request={id} in {path}");
            std::process::exit(1);
        }
        println!("== request {id}: {} span(s) ==", selected.len());
        print!("{}", bf4_obs::render_flame(&selected));
        return;
    }
    print!("{}", bf4_obs::stage_table(&spans));
    // Cache accounting from `smt/query` spans, on the one definition all
    // surfaces share (DESIGN.md §11): a lookup answered from the cache is
    // a hit whether the entry was computed this session or warm-started
    // from a persistent store; `warm` breaks out the latter. This matches
    // the CLI summary line and the daemon's `stats` response.
    let (mut hits, mut warm, mut misses) = (0u64, 0u64, 0u64);
    for s in &spans {
        if s.layer != "smt" || s.name != "query" {
            continue;
        }
        match s.tags.get("cache").map(String::as_str) {
            Some("hit") => {
                hits += 1;
                if s.tags.get("warm").map(String::as_str) == Some("true") {
                    warm += 1;
                }
            }
            Some("miss") => misses += 1,
            _ => {}
        }
    }
    if hits + misses > 0 {
        println!(
            "cache: {hits} hit(s) [{warm} warm] / {misses} miss(es), hit-rate {:.1}%",
            100.0 * hits as f64 / (hits + misses) as f64
        );
    }
    // Group-commit accounting from `shim/journal_fsync` spans: each span
    // is one fsync covering `updates` journal appends, so everything past
    // the first rode along for free — the `shim.journal_fsync_amortized`
    // counter, reconstructed offline.
    let (mut fsyncs, mut amortized) = (0u64, 0u64);
    for s in &spans {
        if s.layer == "shim" && s.name == "journal_fsync" {
            fsyncs += 1;
            if let Some(n) = s.tags.get("updates").and_then(|v| v.parse::<u64>().ok()) {
                amortized += n.saturating_sub(1);
            }
        }
    }
    if fsyncs > 0 {
        println!(
            "shim: {fsyncs} journal fsync(s), {amortized} append(s) amortized onto a group commit"
        );
    }
}

/// Validate a trace file against the span schema; optionally require a
/// set of layers to actually appear (so a silently un-instrumented stage
/// fails CI instead of shrinking the trace).
fn trace_lint() {
    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut path: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--require-layers" => {
                i += 1;
                match args.get(i) {
                    Some(list) => {
                        required.extend(list.split(',').map(|s| s.trim().to_string()))
                    }
                    None => {
                        eprintln!("report trace-lint: --require-layers expects a,b,...");
                        std::process::exit(2);
                    }
                }
            }
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(other.to_string())
            }
            other => {
                eprintln!("report trace-lint: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!("usage: report trace-lint <trace.jsonl> [--require-layers a,b,...]");
        std::process::exit(2);
    };
    let spans = read_trace(&path);
    let layers: std::collections::BTreeSet<&str> =
        spans.iter().map(|s| s.layer.as_str()).collect();
    for want in &required {
        if !layers.contains(want.as_str()) {
            eprintln!("{path}: no span with layer `{want}` (have: {layers:?})");
            std::process::exit(1);
        }
    }
    if required.iter().any(|l| l == "daemon") {
        lint_daemon_requests(&path, &spans);
    }
    println!(
        "trace-lint: {} span(s) OK, layers: {}",
        spans.len(),
        layers.into_iter().collect::<Vec<_>>().join(",")
    );
}

/// The daemon-mode lint: every `daemon.request` span must carry its
/// request-ID tag, and every pipeline span nested under one must carry
/// the *matching* tag — i.e. the context propagation that makes
/// `report profile --request` work never silently broke.
fn lint_daemon_requests(path: &str, spans: &[bf4_obs::TraceSpan]) {
    const PIPELINE_LAYERS: [&str; 5] = ["frontend", "ir", "core", "engine", "smt"];
    let by_id: std::collections::HashMap<u64, &bf4_obs::TraceSpan> =
        spans.iter().map(|s| (s.id, s)).collect();
    let mut requests = 0u64;
    for s in spans {
        if s.layer == "daemon" && s.name == "request" {
            if s.tags.get("request").map(String::is_empty).unwrap_or(true) {
                eprintln!("{path}: daemon.request span id={} has no request tag", s.id);
                std::process::exit(1);
            }
            requests += 1;
        }
    }
    if requests == 0 {
        eprintln!("{path}: layer `daemon` present but no daemon.request span");
        std::process::exit(1);
    }
    for s in spans {
        if !PIPELINE_LAYERS.contains(&s.layer.as_str()) {
            continue;
        }
        // Walk up to the enclosing request span, if any; spans outside a
        // request (e.g. startup warm-start work) are exempt.
        let mut cur = s.parent;
        let mut owner: Option<&bf4_obs::TraceSpan> = None;
        while let Some(pid) = cur {
            let Some(p) = by_id.get(&pid) else { break };
            if p.layer == "daemon" && p.name == "request" {
                owner = Some(p);
                break;
            }
            cur = p.parent;
        }
        let Some(req_span) = owner else { continue };
        let want = req_span.tags.get("request");
        match s.tags.get("request") {
            Some(got) if Some(got) == want => {}
            Some(got) => {
                eprintln!(
                    "{path}: span id={} ({}/{}) carries request={got} under request span {:?}",
                    s.id, s.layer, s.name, want
                );
                std::process::exit(1);
            }
            None => {
                eprintln!(
                    "{path}: span id={} ({}/{}) under request {:?} has no request tag",
                    s.id, s.layer, s.name, want
                );
                std::process::exit(1);
            }
        }
    }
    println!("trace-lint: {requests} daemon request(s), request-ID propagation OK");
}

/// Audit a chaos run from its `--trace-out` file: every injected fault
/// leaves a `fault`-layer span, and every solver query it degraded an
/// `injected=fault` tag, so the schedule's footprint is fully
/// reconstructible offline.
fn faults() {
    let Some(path) = std::env::args().nth(2) else {
        eprintln!("usage: report faults <trace.jsonl>");
        std::process::exit(2);
    };
    let spans = read_trace(&path);
    let mut sites: std::collections::BTreeMap<&str, (u64, u64)> =
        std::collections::BTreeMap::new();
    for s in &spans {
        if s.layer != "fault" {
            continue;
        }
        let e = sites.entry(s.name.as_str()).or_default();
        e.0 += 1;
        // The `hit` tag is the 1-based hit index at fire time; the max
        // over all fires bounds how often the site was reached.
        if let Some(hit) = s.tags.get("hit").and_then(|h| h.parse::<u64>().ok()) {
            e.1 = e.1.max(hit);
        }
    }
    let degraded = spans
        .iter()
        .filter(|s| s.layer == "smt" && s.tags.get("injected").map(String::as_str) == Some("fault"))
        .count();
    println!("== injected faults in {path} ==");
    if sites.is_empty() {
        println!("no injected faults recorded (clean run, or tracing was off)");
        return;
    }
    println!("{:<24} {:>8} {:>10}", "site", "injected", "hits-seen");
    let mut total = 0u64;
    for (site, (fires, max_hit)) in &sites {
        println!("{site:<24} {fires:>8} {:>10}", if *max_hit > 0 { max_hit.to_string() } else { "?".into() });
        total += fires;
    }
    println!(
        "total: {total} injection(s) across {} site(s); {degraded} solver quer(ies) degraded to Unknown",
        sites.len()
    );
}

/// The standard chaos schedule shared with the engine's chaos suite and
/// the ci.sh gate: solver failures, worker panics and scheduler wedges.
fn chaos_plan(seed: u64) -> bf4_obs::FaultPlan {
    bf4_obs::FaultPlan::parse(&format!(
        "seed={seed},smt.backend_error=p0.05,smt.timeout=p0.05,\
         engine.job_panic=p0.02,engine.queue_wedge=p0.1"
    ))
    .expect("chaos plan parses")
}

/// Chaos gate: the corpus under seeded fault schedules must produce
/// reports identical to the fault-free run or conservatively degraded —
/// never a flipped verdict. Exit 1 on any violation.
fn chaos() {
    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut seeds: Vec<u64> = vec![11, 23, 37];
    let mut config = EngineConfig {
        jobs: 4,
        cache_cap: 65536,
        ..EngineConfig::default()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                seeds = args
                    .get(i)
                    .map(|list| {
                        list.split(',')
                            .map(|s| s.trim().parse())
                            .collect::<Result<Vec<u64>, _>>()
                    })
                    .and_then(Result::ok)
                    .unwrap_or_else(|| {
                        eprintln!("report chaos: --seeds expects a,b,c");
                        std::process::exit(2);
                    });
            }
            "--jobs" => {
                i += 1;
                config.jobs = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("report chaos: --jobs expects a count >= 1");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!("report chaos: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    println!("== chaos gate: corpus under seeded fault schedules ==");
    let programs = corpus_programs();
    let options = VerifyOptions::default();
    let (base, _) = verify_corpus(&programs, &options, &config);
    let mut violations = 0usize;
    for seed in seeds {
        bf4_obs::fault::install(chaos_plan(seed));
        let (faulty, _) = verify_corpus(&programs, &options, &config);
        let stats = bf4_obs::fault::clear();
        let fires: u64 = stats.iter().map(|s| s.fires).sum();
        let mut identical = 0usize;
        let mut degraded = 0usize;
        for (i, (name, _)) in programs.iter().enumerate() {
            if let Err(e) = check_conservative(&base[i], &faulty[i]) {
                eprintln!("seed {seed}, {name}: VERDICT FLIP: {e}");
                violations += 1;
            } else if normalized_report(name, &base[i]) == normalized_report(name, &faulty[i]) {
                identical += 1;
            } else {
                degraded += 1;
            }
        }
        println!(
            "seed {seed}: {fires} fault(s) injected; {identical}/{} reports identical, {degraded} degraded conservatively",
            programs.len()
        );
        if fires == 0 {
            eprintln!("seed {seed}: the schedule never fired — the gate proved nothing");
            violations += 1;
        }
    }
    if violations > 0 {
        eprintln!("chaos gate FAILED: {violations} violation(s)");
        std::process::exit(1);
    }
    println!("chaos gate OK: faults only ever cost confidence, never invented it");
}

/// One cachebench run's cache-facing numbers, JSON-ready.
fn cache_run_json(label: &str, wall: f64, stats: &bf4_engine::EngineStats) -> String {
    format!(
        "  \"{label}\": {{\"wall_seconds\": {wall:.6}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \"preloaded\": {}, \"insertions\": {}, \"corrupt_records\": {}}}",
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.hit_rate(),
        stats.cache.preloaded,
        stats.cache.insertions,
        stats.cache.corrupt_records,
    )
}

/// Cold-vs-warm persistent-cache comparison: run the corpus twice against
/// the same `--cache-dir`; the second run must warm-start from the store
/// and strictly beat the first run's hit rate with identical reports.
fn cachebench() {
    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut dir: Option<std::path::PathBuf> = None;
    let mut out: Option<String> = None;
    let mut jobs = 4usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dir" => {
                i += 1;
                dir = args.get(i).map(Into::into);
                if dir.is_none() {
                    eprintln!("report cachebench: --dir expects a directory");
                    std::process::exit(2);
                }
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned();
                if out.is_none() {
                    eprintln!("report cachebench: --out expects a file path");
                    std::process::exit(2);
                }
            }
            "--jobs" => {
                i += 1;
                jobs = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("report cachebench: --jobs expects a count >= 1");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!("report cachebench: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let (dir, scratch) = match dir {
        Some(d) => (d, false),
        None => (
            std::env::temp_dir().join(format!("bf4-cachebench-{}", std::process::id())),
            true,
        ),
    };
    // Always start cold: a stale store would fake the warm-start delta.
    let _ = std::fs::remove_dir_all(&dir);
    let config = EngineConfig {
        jobs,
        cache_cap: 65536,
        cache_dir: Some(dir.clone()),
        cache_persist: true,
        ..EngineConfig::default()
    };
    println!("== cachebench: cold vs warm persistent query cache ==");
    let programs = corpus_programs();
    let options = VerifyOptions::default();
    let t0 = Instant::now();
    let (cold_reports, cold) = verify_corpus(&programs, &options, &config);
    let cold_wall = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let (warm_reports, warm) = verify_corpus(&programs, &options, &config);
    let warm_wall = t1.elapsed().as_secs_f64();
    for (label, wall, stats) in [("cold", cold_wall, &cold), ("warm", warm_wall, &warm)] {
        println!(
            "{label}: wall={wall:.3}s hit-rate={:.1}% ({} hit(s) / {} miss(es), {} preloaded)",
            100.0 * stats.cache.hit_rate(),
            stats.cache.hits,
            stats.cache.misses,
            stats.cache.preloaded,
        );
    }
    let store = warm.persist.unwrap_or_default();
    println!(
        "store: generation {}, {} loaded, {} corrupt, {} stale file(s), {} io error(s)",
        store.generation, store.loaded, store.corrupt_records, store.stale_files, store.io_errors
    );
    if let Some(path) = out {
        let json = format!(
            "{{\n  \"bench\": \"cache\",\n  \"programs\": {},\n  \"jobs\": {jobs},\n{},\n{},\n  \"store\": {{\"generation\": {}, \"loaded\": {}, \"corrupt_records\": {}, \"stale_files\": {}, \"io_errors\": {}}}\n}}\n",
            programs.len(),
            cache_run_json("cold", cold_wall, &cold),
            cache_run_json("warm", warm_wall, &warm),
            store.generation,
            store.loaded,
            store.corrupt_records,
            store.stale_files,
            store.io_errors,
        );
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("report cachebench: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {path}");
    }
    if scratch {
        let _ = std::fs::remove_dir_all(&dir);
    }
    // The gates: a warm start must visibly pay off and must not change a
    // single report.
    let mut failed = false;
    for (i, (name, _)) in programs.iter().enumerate() {
        if normalized_report(name, &cold_reports[i]) != normalized_report(name, &warm_reports[i]) {
            eprintln!("cachebench: {name}: warm-start changed the report");
            failed = true;
        }
    }
    if warm.cache.preloaded == 0 {
        eprintln!("cachebench: the warm run preloaded nothing — the store did not round-trip");
        failed = true;
    }
    if warm.cache.hit_rate() <= cold.cache.hit_rate() {
        eprintln!(
            "cachebench: warm hit rate {:.4} must strictly exceed cold {:.4}",
            warm.cache.hit_rate(),
            cold.cache.hit_rate()
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("cachebench OK: warm-start hit rate strictly exceeds cold");
}

/// Pull one run-delta counter out of the engine's metrics snapshot.
fn solver_counter(stats: &bf4_engine::EngineStats, name: &str) -> u64 {
    stats
        .obs_metrics
        .as_ref()
        .and_then(|m| m.counters.get(name).copied())
        .unwrap_or(0)
}

/// Corpus wall-clock in all three solver modes. The gates are the PR's
/// solver hot-path criteria: incremental must strictly beat oneshot while
/// visibly reusing solver contexts, and no mode may change a single
/// normalized report (verdicts are mode-independent by contract).
fn solverbench() {
    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut out: Option<String> = None;
    let mut jobs = 4usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args.get(i).cloned();
                if out.is_none() {
                    eprintln!("report solverbench: --out expects a file path");
                    std::process::exit(2);
                }
            }
            "--jobs" => {
                i += 1;
                jobs = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("report solverbench: --jobs expects a count >= 1");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!("report solverbench: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // Metrics give us the context-reuse and race counters per run (the
    // engine snapshots a before/after delta around each corpus pass).
    bf4_obs::set_metrics(true);
    let config = EngineConfig {
        jobs,
        ..EngineConfig::default()
    };
    println!("== solverbench: corpus wall-clock per solver mode (jobs={jobs}) ==");
    let programs = corpus_programs();
    let modes = [
        bf4_smt::SolverMode::Oneshot,
        bf4_smt::SolverMode::Incremental,
        bf4_smt::SolverMode::Portfolio,
    ];
    let mut runs = Vec::new();
    for mode in modes {
        let mut options = VerifyOptions::default();
        options.solver.mode = mode;
        let t = Instant::now();
        let (reports, stats) = verify_corpus(&programs, &options, &config);
        runs.push((mode, t.elapsed().as_secs_f64(), reports, stats));
    }
    let oneshot_wall = runs[0].1;
    for (mode, wall, _, stats) in &runs {
        let speedup = oneshot_wall / wall.max(1e-9);
        println!(
            "{:<11} wall={wall:>7.3}s speedup={speedup:>5.2}x ctx-reuse={} ctx-reset={} races={} (primary {}, challenger {})",
            format!("{mode:?}").to_lowercase(),
            solver_counter(stats, "smt.ctx.reuse"),
            solver_counter(stats, "smt.ctx.reset"),
            solver_counter(stats, "smt.race.spawned"),
            solver_counter(stats, "smt.race.primary_win"),
            solver_counter(stats, "smt.race.challenger_win"),
        );
    }
    // The identity gate: the paper's verdicts may not depend on how the
    // solver context is managed.
    let mut identical = true;
    for (mode, _, reports, _) in &runs[1..] {
        for (i, (name, _)) in programs.iter().enumerate() {
            if normalized_report(name, &runs[0].2[i]) != normalized_report(name, &reports[i]) {
                eprintln!("solverbench: {name}: {mode:?} changed the report vs oneshot");
                identical = false;
            }
        }
    }
    let inc_wall = runs[1].1;
    let inc_speedup = oneshot_wall / inc_wall.max(1e-9);
    let pf_wall = runs[2].1;
    let pf_speedup = oneshot_wall / pf_wall.max(1e-9);
    let inc_reuse = solver_counter(&runs[1].3, "smt.ctx.reuse");
    if let Some(path) = out {
        let json = format!(
            "{{\n  \"bench\": \"solver\",\n  \"programs\": {},\n  \"jobs\": {jobs},\n  \"oneshot\": {{\"wall_seconds\": {oneshot_wall:.6}}},\n  \"incremental\": {{\"wall_seconds\": {inc_wall:.6}, \"speedup\": {inc_speedup:.4}, \"ctx_reuse\": {inc_reuse}, \"ctx_reset\": {}}},\n  \"portfolio\": {{\"wall_seconds\": {pf_wall:.6}, \"speedup\": {pf_speedup:.4}, \"races_spawned\": {}, \"primary_wins\": {}, \"challenger_wins\": {}}},\n  \"reports_identical\": {identical}\n}}\n",
            programs.len(),
            solver_counter(&runs[1].3, "smt.ctx.reset"),
            solver_counter(&runs[2].3, "smt.race.spawned"),
            solver_counter(&runs[2].3, "smt.race.primary_win"),
            solver_counter(&runs[2].3, "smt.race.challenger_win"),
        );
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("report solverbench: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {path}");
    }
    let mut failed = !identical;
    if inc_wall >= oneshot_wall {
        eprintln!(
            "solverbench: incremental wall {inc_wall:.3}s must strictly beat oneshot {oneshot_wall:.3}s"
        );
        failed = true;
    }
    if inc_reuse == 0 {
        eprintln!("solverbench: the incremental run reused no solver contexts");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("solverbench OK: incremental strictly beats oneshot with identical reports");
}

/// Cold full-verify vs warm incremental re-verify through an in-process
/// daemon: submit every corpus program cold, apply a scripted edit to
/// each, resubmit (incremental), and compare against a cold one-shot
/// verification of the same edited sources. The gates are the PR's
/// incremental soundness criteria: every daemon verdict byte-identical to
/// the one-shot normalized report, the skip counter proving not every bug
/// re-verified, and the warm pass strictly faster than the cold one.
fn daemonbench() {
    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args.get(i).cloned();
                if out.is_none() {
                    eprintln!("report daemonbench: --out expects a file path");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("report daemonbench: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!("== daemonbench: cold full-verify vs warm incremental re-verify ==");
    let programs = corpus_programs();
    let options = VerifyOptions::default();
    // The scripted edit: a trailing comment — the IR is unchanged, which
    // is the watch-mode hot path (save, re-verify, nothing moved).
    let edited: Vec<(String, String)> = programs
        .iter()
        .map(|(name, source)| (name.clone(), format!("{source}\n// daemonbench edit\n")))
        .collect();

    let mut daemon = bf4_daemon::Daemon::new(bf4_daemon::DaemonConfig::default());
    let t0 = Instant::now();
    for (name, source) in &programs {
        daemon.submit(name, source);
    }
    let cold_wall = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let warm: Vec<bf4_daemon::SubmitOutcome> = edited
        .iter()
        .map(|(name, source)| daemon.submit(name, source))
        .collect();
    let warm_wall = t1.elapsed().as_secs_f64();
    let skips: u64 = warm.iter().map(|o| o.skips).sum();
    let reverified: u64 = warm.iter().map(|o| o.reverified).sum();

    // The baseline the warm pass must beat: verifying the edited sources
    // from scratch, exactly what a non-incremental `bf4` run would do.
    let t2 = Instant::now();
    let baseline: Vec<String> = edited
        .iter()
        .map(|(name, source)| normalized_report(name, &verify_isolated(source, &options)))
        .collect();
    let baseline_wall = t2.elapsed().as_secs_f64();

    println!("cold submit (all programs):        {cold_wall:.3}s");
    println!(
        "warm incremental resubmit (edits): {warm_wall:.3}s ({skips} skip(s), {reverified} re-verified)"
    );
    println!("cold one-shot of the same edits:   {baseline_wall:.3}s");

    // Telemetry overhead: the same cold+warm pass through the full
    // request path (`handle`, which mints request IDs and records the
    // per-request telemetry), once with the stack disabled and once with
    // metrics + persistent time-series + SLO evaluation all on. The
    // design target is 5% (DESIGN.md §14); the CI gate is lenient so
    // scheduler noise on short warm passes cannot flake the build.
    let warm_pass = |telemetry: bool| -> f64 {
        let dir = std::env::temp_dir().join(format!(
            "bf4-daemonbench-telemetry-{}-{}",
            std::process::id(),
            telemetry
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = if telemetry {
            let _ = std::fs::create_dir_all(&dir);
            bf4_daemon::DaemonConfig {
                cache_dir: Some(dir.clone()),
                // Thresholds no healthy run crosses: the evaluation cost
                // is measured, the alert path stays quiet.
                slo: Some(
                    bf4_obs::slo::SloSpec::parse(
                        "p99_ms=600000,unknown_rate=1,degraded_rate=1",
                    )
                    .expect("static spec parses"),
                ),
                ..bf4_daemon::DaemonConfig::default()
            }
        } else {
            bf4_daemon::DaemonConfig::default()
        };
        bf4_obs::set_metrics(telemetry);
        let mut d = bf4_daemon::Daemon::new(config);
        let submit = |d: &mut bf4_daemon::Daemon, name: &str, source: &str| {
            d.handle(bf4_daemon::proto::Request::Submit {
                program: name.to_string(),
                source: source.to_string(),
            });
        };
        for (name, source) in &programs {
            submit(&mut d, name, source);
        }
        let t = Instant::now();
        for (name, source) in &edited {
            submit(&mut d, name, source);
        }
        let wall = t.elapsed().as_secs_f64();
        bf4_obs::set_metrics(false);
        let _ = std::fs::remove_dir_all(&dir);
        wall
    };
    // Best of two per mode: the warm pass is short, so one scheduler
    // hiccup would otherwise dominate the ratio.
    let telemetry_off = warm_pass(false).min(warm_pass(false));
    let telemetry_on = warm_pass(true).min(warm_pass(true));
    let overhead = telemetry_on / telemetry_off.max(1e-9);
    println!(
        "telemetry overhead: warm pass {telemetry_off:.3}s off vs {telemetry_on:.3}s on \
         ({overhead:.3}x; design target 1.05x)"
    );

    let mut failed = false;
    if overhead > 1.25 {
        eprintln!(
            "daemonbench: telemetry overhead {overhead:.3}x exceeds the 1.25x gate \
             (design target is 1.05x)"
        );
        failed = true;
    }
    for (o, expect) in warm.iter().zip(&baseline) {
        if &o.normalized != expect {
            eprintln!("daemonbench: {}: incremental verdict differs from one-shot", o.program);
            failed = true;
        }
    }
    if skips == 0 {
        eprintln!("daemonbench: the warm pass skipped nothing — it was not incremental");
        failed = true;
    }
    if warm_wall >= baseline_wall {
        eprintln!(
            "daemonbench: warm incremental {warm_wall:.3}s must be strictly faster than the \
             cold one-shot {baseline_wall:.3}s"
        );
        failed = true;
    }

    if let Some(path) = out {
        let json = format!(
            "{{\n  \"bench\": \"daemon\",\n  \"programs\": {},\n  \"cold\": {{\"wall_seconds\": {cold_wall:.6}}},\n  \"warm_incremental\": {{\"wall_seconds\": {warm_wall:.6}, \"skips\": {skips}, \"reverified\": {reverified}}},\n  \"cold_one_shot_of_edits\": {{\"wall_seconds\": {baseline_wall:.6}}},\n  \"telemetry\": {{\"off_wall_seconds\": {telemetry_off:.6}, \"on_wall_seconds\": {telemetry_on:.6}, \"overhead\": {overhead:.4}}},\n  \"verdicts_identical\": {},\n  \"speedup\": {:.2}\n}}\n",
            programs.len(),
            !failed,
            baseline_wall / warm_wall.max(1e-9),
        );
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("report daemonbench: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {path}");
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "daemonbench OK: warm incremental strictly faster ({:.1}x), verdicts identical",
        baseline_wall / warm_wall.max(1e-9)
    );
}

/// One-shot normalized report of a single program file — the reference a
/// daemon verdict must be byte-identical to (ci.sh diffs the two).
fn normalize_cmd() {
    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut path: Option<String> = None;
    let mut name: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--name" => {
                i += 1;
                name = args.get(i).cloned();
                if name.is_none() {
                    eprintln!("report normalize: --name expects a program name");
                    std::process::exit(2);
                }
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("report normalize: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!("usage: report normalize <file.p4> [--name N]");
        std::process::exit(2);
    };
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("report normalize: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let name = name.unwrap_or_else(|| {
        std::path::Path::new(&path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(&path)
            .to_string()
    });
    print!(
        "{}",
        normalized_report(&name, &verify_isolated(&source, &VerifyOptions::default()))
    );
}

/// Evaluate SLOs over the tail of a daemon's persistent time-series: the
/// offline twin of the daemon's own in-flight evaluation, for postmortems
/// and CI gates. Exit 1 when any objective is violated.
fn slo_cmd() {
    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut path: Option<String> = None;
    let mut spec: Option<bf4_obs::slo::SloSpec> = None;
    let mut window = 64usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--slo" => {
                i += 1;
                match args.get(i).map(|v| bf4_obs::slo::SloSpec::parse(v)) {
                    Some(Ok(s)) => spec = Some(s),
                    Some(Err(e)) => {
                        eprintln!("report slo: bad --slo spec: {e}");
                        std::process::exit(2);
                    }
                    None => {
                        eprintln!("report slo: --slo expects a spec like p99_ms=500");
                        std::process::exit(2);
                    }
                }
            }
            "--window" => {
                i += 1;
                window = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("report slo: --window expects a count >= 1");
                        std::process::exit(2);
                    });
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("report slo: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let (Some(path), Some(spec)) = (path, spec) else {
        eprintln!("usage: report slo <tsdb.bf4t> --slo SPEC [--window N]");
        std::process::exit(2);
    };
    let loaded = bf4_obs::tsdb::load(std::path::Path::new(&path)).unwrap_or_else(|e| {
        eprintln!("report slo: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let skip = loaded.samples.len().saturating_sub(window);
    let tail = &loaded.samples[skip..];
    println!(
        "== SLO over {path}: {} of {} sample(s) ({} corrupt line(s) dropped) ==",
        tail.len(),
        loaded.samples.len(),
        loaded.corrupt_records
    );
    let mut hist = bf4_obs::Histogram::default();
    for s in tail {
        hist.record(std::time::Duration::from_micros(s.wall_micros));
    }
    if hist.count() > 0 {
        println!(
            "latency: p50<{}us p90<{}us p99<{}us over {} request(s)",
            hist.quantile_bound_micros(0.5),
            hist.quantile_bound_micros(0.9),
            hist.quantile_bound_micros(0.99),
            hist.count()
        );
        let degraded = tail.iter().filter(|s| s.degraded).count();
        let (bugs, undecided): (u64, u64) =
            tail.iter().fold((0, 0), |(b, u), s| (b + s.bugs, u + s.undecided));
        println!(
            "rates: degraded {degraded}/{}, undecided {undecided}/{bugs} bug check(s)",
            tail.len()
        );
    }
    let violations = spec.evaluate(tail);
    if violations.is_empty() {
        println!("slo OK: every objective holds over the window");
        return;
    }
    for v in &violations {
        println!("VIOLATION: {v}");
    }
    std::process::exit(1);
}

/// Validate a Prometheus text exposition — the gate behind the ci.sh
/// metrics-endpoint smoke (whatever the HTTP responder served must parse
/// under the same grammar `bf4_obs::expose::render` writes).
fn expose_lint() {
    let Some(path) = std::env::args().nth(2) else {
        eprintln!("usage: report expose-lint <file>");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("report expose-lint: cannot read {path}: {e}");
        std::process::exit(2);
    });
    match bf4_obs::expose::parse(&text) {
        Ok(exp) => println!(
            "expose-lint: {} sample(s) across {} metric(s) OK",
            exp.samples.len(),
            exp.types.len()
        ),
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Look up a dotted path (`warm.hit_rate`) in a parsed bench JSON.
fn bench_field(v: &bf4_obs::json::Value, path: &str) -> Option<f64> {
    let mut cur = v;
    for key in path.split('.') {
        cur = cur.as_obj()?.get(key)?;
    }
    match cur {
        bf4_obs::json::Value::Num(n) => Some(*n),
        bf4_obs::json::Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
        _ => None,
    }
}

/// Regression gate over BENCH_*.json files: fresh numbers may not be
/// *worse* than the committed baseline beyond the tolerance band. Only
/// scale-free metrics are compared — hit rates, speedups, skip counts and
/// verdict identity travel across machines; raw wall-clock does not.
fn regress_cmd() {
    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut fresh_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut tolerance = 0.25f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fresh" => {
                i += 1;
                fresh_path = args.get(i).cloned();
            }
            "--baseline" => {
                i += 1;
                baseline_path = args.get(i).cloned();
            }
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("report regress: --tolerance expects a non-negative number");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!("report regress: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let (Some(fresh_path), Some(baseline_path)) = (fresh_path, baseline_path) else {
        eprintln!("usage: report regress --fresh FILE --baseline FILE [--tolerance T]");
        std::process::exit(2);
    };
    let read = |p: &str| -> bf4_obs::json::Value {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("report regress: cannot read {p}: {e}");
            std::process::exit(2);
        });
        bf4_obs::json::parse(&text).unwrap_or_else(|e| {
            eprintln!("report regress: {p} is not valid JSON: {e}");
            std::process::exit(2);
        })
    };
    let fresh = read(&fresh_path);
    let baseline = read(&baseline_path);
    let kind = fresh
        .as_obj()
        .and_then(|o| o.get("bench"))
        .and_then(bf4_obs::json::Value::as_str)
        .unwrap_or_else(|| {
            eprintln!("report regress: {fresh_path} has no \"bench\" kind");
            std::process::exit(2);
        })
        .to_string();
    let base_kind = baseline
        .as_obj()
        .and_then(|o| o.get("bench"))
        .and_then(bf4_obs::json::Value::as_str);
    if base_kind != Some(kind.as_str()) {
        eprintln!("report regress: baseline {baseline_path} is not a \"{kind}\" bench");
        std::process::exit(2);
    }
    // (metric path, direction): `Lower` fails when fresh drops below
    // baseline*(1-tol) - eps, `Upper` when it rises above
    // baseline*(1+tol) + eps. Booleans encode as 0/1 and use `Lower`.
    enum Dir {
        Lower,
        Upper,
    }
    let checks: Vec<(&str, Dir)> = match kind.as_str() {
        "cache" => vec![
            ("cold.hit_rate", Dir::Lower),
            ("warm.hit_rate", Dir::Lower),
            ("warm.preloaded", Dir::Lower),
            ("store.corrupt_records", Dir::Upper),
            ("store.io_errors", Dir::Upper),
        ],
        "daemon" => vec![
            ("verdicts_identical", Dir::Lower),
            ("speedup", Dir::Lower),
            ("warm_incremental.skips", Dir::Lower),
            ("telemetry.overhead", Dir::Upper),
        ],
        "solver" => vec![
            ("reports_identical", Dir::Lower),
            ("incremental.speedup", Dir::Lower),
            ("incremental.ctx_reuse", Dir::Lower),
            ("portfolio.speedup", Dir::Lower),
        ],
        "shim" => vec![
            ("throughput.speedup", Dir::Lower),
            ("recovery.acked_lost", Dir::Upper),
            ("recovery.mismatched", Dir::Upper),
            ("recovery.digest_match", Dir::Lower),
            ("audit.invalid_admitted", Dir::Upper),
            ("faults.fires", Dir::Lower),
        ],
        other => {
            eprintln!("report regress: unknown bench kind `{other}`");
            std::process::exit(2);
        }
    };
    println!("== regress: {fresh_path} vs baseline {baseline_path} (tolerance {tolerance}) ==");
    let mut failed = false;
    for (path, dir) in checks {
        let Some(base) = bench_field(&baseline, path) else {
            // An older baseline simply predates the metric; nothing to
            // compare against.
            println!("  {path:<28} (not in baseline, skipped)");
            continue;
        };
        let Some(now) = bench_field(&fresh, path) else {
            eprintln!("  {path:<28} MISSING from the fresh bench");
            failed = true;
            continue;
        };
        // The additive epsilon keeps zero baselines meaningful (a purely
        // relative band around 0 would reject any nonzero fresh value).
        let eps = 1e-9;
        let ok = match dir {
            Dir::Lower => now >= base * (1.0 - tolerance) - eps,
            Dir::Upper => now <= base * (1.0 + tolerance) + tolerance.max(eps),
        };
        let verdict = if ok { "ok" } else { "REGRESSED" };
        println!("  {path:<28} fresh={now:.4} baseline={base:.4} {verdict}");
        if !ok {
            failed = true;
        }
    }
    if failed {
        eprintln!("regress gate FAILED");
        std::process::exit(1);
    }
    println!("regress OK: no scale-free metric regressed beyond the band");
}

/// Speedup-vs-jobs table over the corpus, with per-stage latencies and
/// cache statistics from the engine.
fn engine() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("== engine scaling: corpus wall-clock vs worker count ==");
    println!("(host has {cores} core(s); speedup beyond that is not expected)");
    let programs = corpus_programs();
    let options = VerifyOptions::default();
    let mut base = None;
    let mut last_stats = None;
    for jobs in [1usize, 2, 4] {
        for cache_cap in [0usize, 1 << 16] {
            let config = EngineConfig {
                jobs,
                cache_cap,
                ..EngineConfig::default()
            };
            let (_, stats) = verify_corpus(&programs, &options, &config);
            let wall = stats.wall.as_secs_f64();
            if jobs == 1 && cache_cap == 0 {
                base = Some(wall);
            }
            let speedup = base.map_or(1.0, |b| b / wall.max(1e-9));
            println!(
                "jobs={jobs} cache={:<5} wall={wall:>7.3}s speedup={speedup:>5.2}x cache-hit-rate={:>5.1}% steals={}",
                if cache_cap == 0 { "off" } else { "on" },
                100.0 * stats.cache.hit_rate(),
                stats.steals,
            );
            if jobs == 4 && cache_cap != 0 {
                last_stats = Some(stats);
            }
        }
    }
    if let Some(stats) = last_stats {
        println!("-- engine stats at jobs=4, cache on --");
        print!("{stats}");
    }
    println!();
}

/// §5.1: the three interesting-bug case studies on fabric_switch.
fn casestudies() {
    println!("== §5.1 case studies (fabric_switch) ==");
    let p = bf4_corpus::largest();
    let r = verify_isolated(p.source, &VerifyOptions::default());
    // 1. missing assumptions: validate_outer_ethernet bugs controlled by
    //    Infer with existing keys.
    let voe_controlled = r
        .bugs
        .iter()
        .filter(|b| {
            b.table.as_deref() == Some("validate_outer_ethernet")
                && b.status == bf4_core::BugStatus::Controlled
        })
        .count();
    println!("missing assumptions: {voe_controlled} validate_outer_ethernet bug(s) controlled by inferred assertions");
    // 2. missing validity: fabric_ingress_dst_lkp needs a key fix.
    let fabric_fix = r
        .fixes
        .iter()
        .find(|f| f.table == "fabric_ingress_dst_lkp");
    match fabric_fix {
        Some(f) => println!(
            "missing validity: fabric_ingress_dst_lkp gains keys {:?}",
            f.keys
        ),
        None => println!("missing validity: fabric_ingress_dst_lkp needed no fix (unexpected)"),
    }
    // 3. egress-spec-not-set: the special drop fix.
    println!(
        "egress spec not set: special drop fix suggested = {}",
        r.egress_spec_fix
    );
    println!();
}
