//! Benchmark harness crate (see benches/ and src/bin/report.rs).
