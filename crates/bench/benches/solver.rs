//! Solver-layer benches: the governed solver vs the raw internal
//! bit-blasting CDCL backend (plus Z3 when that feature is on) on
//! small QF_BV formulas, plus term construction and S-expression codec
//! throughput.

use bf4_smt::{Solver, Sort, Term};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn sample_formula(width: u32) -> Term {
    let x = Term::var("x", Sort::Bv(width));
    let y = Term::var("y", Sort::Bv(width));
    x.bvmul(&Term::bv(width, 3))
        .bvadd(&y)
        .eq_term(&Term::bv(width, 41))
        .and(&x.bvult(&y))
        .and(&y.bvand(&Term::bv(width, 0x0f)).eq_term(&Term::bv(width, 0x0a)))
}

fn bench_backends(c: &mut Criterion) {
    let f = sample_formula(12);
    let mut g = c.benchmark_group("solver-backends");
    #[cfg(feature = "z3")]
    g.bench_function("z3", |b| {
        b.iter(|| {
            let mut s = bf4_smt::Z3Backend::new();
            s.solve(black_box(&f)).result
        })
    });
    g.bench_function("governed-default", |b| {
        b.iter(|| {
            let mut s = bf4_smt::default_solver();
            s.solve(black_box(&f)).result
        })
    });
    g.bench_function("internal-cdcl", |b| {
        b.iter(|| {
            let mut s = bf4_smt::bitblast::BitBlastSolver::new();
            s.solve(black_box(&f)).result
        })
    });
    g.finish();
}

fn bench_term_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("terms");
    g.bench_function("build-chain-1k", |b| {
        b.iter(|| {
            let mut t = Term::var("v", Sort::Bv(32));
            for i in 0..1000u32 {
                t = t.bvadd(&Term::bv(32, i as u128)).bvxor(&Term::bv(32, 7));
            }
            black_box(t.width())
        })
    });
    let f = sample_formula(32);
    g.bench_function("sexpr-roundtrip", |b| {
        b.iter(|| {
            let s = bf4_smt::to_sexpr(black_box(&f));
            bf4_smt::parse_sexpr(&s).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_backends, bench_term_ops);
criterion_main!(benches);
