//! Criterion benches for the compile-time pipeline stages (Table 1's
//! runtime column, broken down): frontend, lowering+SSA+optimizations,
//! reachability analysis, and the full verification run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_frontend(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend");
    for name in ["simple_nat", "fabric_switch"] {
        let p = bf4_corpus::by_name(name).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| bf4_p4::frontend(black_box(p.source)).unwrap())
        });
    }
    g.finish();
}

fn bench_transform(c: &mut Criterion) {
    let mut g = c.benchmark_group("lower+ssa+opt");
    for name in ["simple_nat", "fabric_switch"] {
        let p = bf4_corpus::by_name(name).unwrap();
        let program = bf4_p4::frontend(p.source).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = bf4_ir::lower(black_box(&program), &bf4_ir::LowerOptions::default())
                    .unwrap()
                    .cfg;
                bf4_ir::ssa::to_ssa(&mut cfg);
                bf4_ir::opt::optimize(&mut cfg);
                cfg.num_instrs()
            })
        });
    }
    g.finish();
}

fn bench_find_bugs(c: &mut Criterion) {
    let mut g = c.benchmark_group("find-bugs");
    g.sample_size(10);
    for name in ["simple_nat", "fabric_switch"] {
        let p = bf4_corpus::by_name(name).unwrap();
        let program = bf4_p4::frontend(p.source).unwrap();
        let (cfg, _) = bf4_core::driver::build_cfg(
            &program,
            &bf4_core::driver::VerifyOptions::default(),
        )
        .unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                let ra = bf4_core::reach::ReachAnalysis::new(black_box(&cfg));
                let mut bugs = ra.found_bugs(&cfg);
                let mut solver = bf4_smt::default_solver();
                bf4_core::reach::check_bugs(
                    &mut solver,
                    &mut bugs,
                    &[],
                    bf4_core::BugStatus::Reachable,
                )
            })
        });
    }
    g.finish();
}

fn bench_full_verify(c: &mut Criterion) {
    let mut g = c.benchmark_group("full-verify");
    g.sample_size(10);
    for name in ["simple_nat", "ecmp_2", "netchain"] {
        let p = bf4_corpus::by_name(name).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                bf4_core::verify(
                    black_box(p.source),
                    &bf4_core::VerifyOptions::default(),
                )
                .unwrap()
                .bugs_total
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_frontend,
    bench_transform,
    bench_find_bugs,
    bench_full_verify
);
criterion_main!(benches);
