//! §5.3 shim benches: per-update validation latency (the paper reports
//! ≤2 ms p90 per assertion and 42 ms median per update through ONOS; our
//! in-process shim measures the algorithmic cost alone).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn make_shim() -> (bf4_shim::Shim, Vec<bf4_shim::Update>) {
    let p = bf4_corpus::largest();
    let r = bf4_core::verify(p.source, &bf4_core::VerifyOptions::default()).unwrap();
    let shim = bf4_shim::Shim::new(&r.annotations);
    let mut ctrl = bf4_shim::controller::Controller::new(
        &r.annotations,
        bf4_shim::controller::WorkloadConfig {
            updates: 2000,
            delete_fraction: 0.0,
            ..Default::default()
        },
    );
    (shim, ctrl.workload())
}

fn bench_validate(c: &mut Criterion) {
    let (shim, workload) = make_shim();
    let inserts: Vec<(String, bf4_shim::RuleUpdate)> = workload
        .iter()
        .filter_map(|u| match u {
            bf4_shim::Update::Insert { table, rule } => Some((table.clone(), rule.clone())),
            _ => None,
        })
        .collect();
    let mut g = c.benchmark_group("shim");
    let mut i = 0usize;
    g.bench_function("validate-insert", |b| {
        b.iter(|| {
            let (t, r) = &inserts[i % inserts.len()];
            i += 1;
            black_box(shim.validate_insert(t, r).is_ok())
        })
    });
    g.finish();
}

fn bench_full_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("shim-trace");
    g.sample_size(10);
    g.bench_function("2000-updates", |b| {
        b.iter_with_setup(make_shim, |(mut shim, workload)| {
            let mut accepted = 0usize;
            for u in &workload {
                if shim.apply(u).is_ok() {
                    accepted += 1;
                }
            }
            accepted
        })
    });
    g.finish();
}

criterion_group!(benches, bench_validate, bench_full_trace);
criterion_main!(benches);
