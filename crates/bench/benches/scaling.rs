//! `scaling` — corpus wall-clock at jobs ∈ {1, 2, 4} with the query
//! cache off and on, emitted as JSON (`BENCH_scaling.json` plus stdout)
//! so future PRs have a perf trajectory to compare against.
//!
//! The numbers are honest wall-clock measurements on the current host;
//! the `cores` field records how much hardware parallelism was actually
//! available, since speedup at `jobs > cores` is not physically possible.

use bf4_core::driver::VerifyOptions;
use bf4_engine::{verify_corpus, EngineConfig};
use std::fmt::Write as _;

fn main() {
    // Criterion-style CLI compatibility: `cargo bench` passes `--bench`.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let programs: Vec<(String, String)> = bf4_corpus::all()
        .into_iter()
        .map(|p| (p.name.to_string(), p.source.to_string()))
        .collect();
    let options = VerifyOptions::default();

    let mut rows = String::new();
    let mut first = true;
    for jobs in [1usize, 2, 4] {
        for cache_cap in [0usize, 1 << 16] {
            let config = EngineConfig {
                jobs,
                cache_cap,
                ..EngineConfig::default()
            };
            let (reports, stats) = verify_corpus(&programs, &options, &config);
            let degraded: usize = reports.iter().filter(|r| !r.degraded.is_empty()).count();
            if !first {
                rows.push_str(",\n");
            }
            first = false;
            let _ = write!(
                rows,
                "    {{\"jobs\": {jobs}, \"cache_cap\": {cache_cap}, \
                 \"wall_seconds\": {:.6}, \"programs\": {}, \"degraded\": {degraded}, \
                 \"jobs_run\": {}, \"steals\": {}, \"cache_hits\": {}, \
                 \"cache_misses\": {}, \"cache_insertions\": {}, \
                 \"cache_evictions\": {}, \"cache_hit_rate\": {:.4}}}",
                stats.wall.as_secs_f64(),
                reports.len(),
                stats.jobs_run,
                stats.steals,
                stats.cache.hits,
                stats.cache.misses,
                stats.cache.insertions,
                stats.cache.evictions,
                stats.cache.hit_rate(),
            );
            eprintln!(
                "scaling: jobs={jobs} cache_cap={cache_cap} wall={:?} hit-rate={:.1}%",
                stats.wall,
                100.0 * stats.cache.hit_rate()
            );
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"scaling\",\n  \"cores\": {cores},\n  \"runs\": [\n{rows}\n  ]\n}}\n"
    );
    print!("{json}");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    match std::fs::write(out, &json) {
        Ok(()) => eprintln!("scaling: wrote {out}"),
        Err(e) => eprintln!("scaling: cannot write {out}: {e}"),
    }
}
