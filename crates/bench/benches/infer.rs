//! Benches for the inference algorithms: Fast-Infer (Algorithm 2, paper:
//! ~1 ms per table) vs Infer (Algorithm 1), and the Fixes key computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::hint::black_box;

fn prepared(name: &str) -> bf4_ir::Cfg {
    let p = bf4_corpus::by_name(name).unwrap();
    let program = bf4_p4::frontend(p.source).unwrap();
    bf4_core::driver::build_cfg(&program, &bf4_core::driver::VerifyOptions::default())
        .unwrap()
        .0
}

fn bench_fast_infer(c: &mut Criterion) {
    let cfg = prepared("fabric_switch");
    let mut g = c.benchmark_group("fast-infer");
    // Per-table symbolic execution (the paper reports ~1 ms per table on
    // switch.p4).
    g.bench_function("per-table(fabric)", |b| {
        b.iter(|| {
            let mut n = 0;
            for i in 0..cfg.tables.len() {
                n += bf4_core::fast_infer::fast_infer(black_box(&cfg), i, &HashSet::new())
                    .specs
                    .len();
            }
            n
        })
    });
    g.finish();
}

fn bench_infer(c: &mut Criterion) {
    // Algorithm 1 on the running example's formulas.
    let cfg = prepared("simple_nat");
    let ra = bf4_core::reach::ReachAnalysis::new(&cfg);
    let bugs = ra.found_bugs(&cfg);
    let nat_idx = cfg.tables.iter().position(|t| t.table == "nat").unwrap();
    let site = &cfg.tables[nat_idx];
    let atoms = bf4_core::infer::atoms_for_site(site);
    let bug_formula = bf4_smt::Term::or_all(
        bugs.iter()
            .filter(|b| b.assert_point == Some(nat_idx))
            .map(|b| b.cond.clone())
            .collect::<Vec<_>>(),
    );
    let ok = ra.ok.and(&ra.node_cond[site.entry_block]);
    let mut g = c.benchmark_group("infer");
    g.sample_size(20);
    g.bench_function("algorithm1(nat)", |b| {
        b.iter(|| {
            let mut direct = bf4_smt::default_solver();
            let mut dual = bf4_smt::default_solver();
            bf4_core::infer::infer(
                &mut direct,
                &mut dual,
                black_box(&ok),
                black_box(&bug_formula),
                &atoms,
                64,
            )
            .iterations
        })
    });
    g.finish();
}

fn bench_fixes(c: &mut Criterion) {
    let cfg = prepared("simple_nat");
    let ra = bf4_core::reach::ReachAnalysis::new(&cfg);
    let bugs = ra.found_bugs(&cfg);
    let ttl_bug = bugs
        .iter()
        .find(|b| {
            b.info.kind == bf4_ir::BugKind::InvalidHeaderAccess
                && b.info.description.contains("ipv4")
        })
        .unwrap()
        .clone();
    let mut g = c.benchmark_group("fixes");
    g.bench_function("table-keys(nat-ttl)", |b| {
        b.iter(|| bf4_core::fixes::fixes_for_bug(black_box(&cfg), &ttl_bug).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_fast_infer, bench_infer, bench_fixes);
criterion_main!(benches);
