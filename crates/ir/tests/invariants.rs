//! Whole-corpus IR invariants: lowering always yields a valid acyclic CFG;
//! SSA establishes dynamic single assignment; the optimizer and slicer
//! preserve the number of *reachable* bug terminals.

use bf4_ir::{lower, BlockKind, LowerOptions};

fn corpus_cfgs() -> Vec<(String, bf4_ir::Cfg)> {
    bf4_corpus::all()
        .into_iter()
        .map(|p| {
            let program = bf4_p4::frontend(p.source).unwrap();
            (
                p.name.to_string(),
                lower(&program, &LowerOptions::default()).unwrap().cfg,
            )
        })
        .collect()
}

#[test]
fn lowering_yields_valid_cfgs() {
    for (name, cfg) in corpus_cfgs() {
        cfg.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!cfg.good_blocks().is_empty(), "{name}: no good terminal");
    }
}

#[test]
fn ssa_holds_on_all_corpus_programs() {
    for (name, mut cfg) in corpus_cfgs() {
        bf4_ir::ssa::to_ssa(&mut cfg);
        let violations = bf4_ir::ssa::ssa_violations(&cfg);
        assert!(violations.is_empty(), "{name}: {violations:?}");
        cfg.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn optimizer_preserves_structure() {
    for (name, mut cfg) in corpus_cfgs() {
        bf4_ir::ssa::to_ssa(&mut cfg);
        let bugs_before = cfg.bug_blocks().len();
        let tables_before = cfg.tables.len();
        bf4_ir::opt::optimize(&mut cfg);
        assert_eq!(cfg.bug_blocks().len(), bugs_before, "{name}");
        assert_eq!(cfg.tables.len(), tables_before, "{name}");
        cfg.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn slicing_preserves_block_identities() {
    for (name, mut cfg) in corpus_cfgs() {
        bf4_ir::ssa::to_ssa(&mut cfg);
        bf4_ir::opt::optimize(&mut cfg);
        let roots = cfg.bug_blocks();
        if roots.is_empty() {
            continue;
        }
        let info = bf4_ir::slice::compute_slice(&cfg, &roots);
        let sliced = bf4_ir::slice::apply_slice(&cfg, &info);
        assert_eq!(sliced.blocks.len(), cfg.blocks.len(), "{name}");
        assert!(info.instrs_after <= info.instrs_before, "{name}");
        for (i, b) in sliced.blocks.iter().enumerate() {
            assert_eq!(
                matches!(b.kind, BlockKind::Bug(_)),
                matches!(cfg.blocks[i].kind, BlockKind::Bug(_)),
                "{name}: bug identity changed at block {i}"
            );
        }
    }
}

#[test]
fn egress_part_lowers_for_all_programs() {
    for p in bf4_corpus::all() {
        let program = bf4_p4::frontend(p.source).unwrap();
        let opts = LowerOptions {
            part: bf4_ir::lower::PipelinePart::Egress,
            ..Default::default()
        };
        let cfg = lower(&program, &opts)
            .unwrap_or_else(|e| panic!("{}: egress lowering failed: {e}", p.name))
            .cfg;
        cfg.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
    }
}

#[test]
fn dot_export_is_wellformed() {
    for (name, cfg) in corpus_cfgs().into_iter().take(3) {
        let dot = bf4_ir::cfg::to_dot(&cfg);
        assert!(dot.starts_with("digraph"), "{name}");
        assert!(dot.trim_end().ends_with('}'), "{name}");
        assert!(dot.matches("color=red").count() >= 1, "{name}: no bug nodes rendered");
    }
}
