//! The control-flow graph.
//!
//! Blocks hold straight-line [`Instr`] sequences over [`bf4_smt::Term`]
//! expressions and end in a [`Terminator`]. Terminal blocks are classified
//! by [`BlockKind`]: `Accept` (good run), `Bug` (bad run), `DontCare`
//! (destructive-copy no-op branches excluded from the OK set, §4.2),
//! `Infeasible` (table-entry mismatch sinks that no execution reaches) and
//! `Reject` (clean parser rejection — a good run).
//!
//! The graph is guaranteed acyclic by construction (parser loops are
//! unrolled during lowering), which the analyses exploit: topological
//! ordering, single-pass dominators, and forward reachability-condition
//! propagation.

use bf4_smt::{Sort, Term};
use std::collections::HashMap;
use std::sync::Arc;

/// Index of a block in its [`Cfg`].
pub type BlockId = usize;

/// A straight-line instruction.
#[derive(Clone, Debug)]
pub enum Instr {
    /// `var := expr` — the only state change in the IR.
    Assign {
        /// Target variable (flat name, e.g. `hdr.ipv4.ttl`).
        var: Arc<str>,
        /// Sort of the variable.
        sort: Sort,
        /// Right-hand side.
        expr: Term,
    },
    /// `var := *` — nondeterministic assignment (extern outputs, extracted
    /// packet bytes, table-entry contents).
    Havoc {
        /// Target variable.
        var: Arc<str>,
        /// Sort of the variable.
        sort: Sort,
    },
}

impl Instr {
    /// The written variable.
    pub fn target(&self) -> &Arc<str> {
        match self {
            Instr::Assign { var, .. } | Instr::Havoc { var, .. } => var,
        }
    }

    /// The sort of the written variable.
    pub fn sort(&self) -> Sort {
        match self {
            Instr::Assign { sort, .. } | Instr::Havoc { sort, .. } => *sort,
        }
    }
}

/// Classification of a bug node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum BugKind {
    /// Read or write of a field of an invalid header.
    InvalidHeaderAccess,
    /// A table key expression reads an invalid header during matching.
    InvalidKeyAccess,
    /// `standard_metadata.egress_spec` never assigned on an ingress path.
    EgressSpecNotSet,
    /// Register index out of bounds.
    RegisterOutOfBounds,
    /// Header-stack index out of bounds (incl. `.next` overflow and
    /// pop-from-empty).
    StackOutOfBounds,
    /// Header-to-header copy whose source is invalid while the destination
    /// is valid (destructive overwrite, §4.2 "Increasing bug coverage").
    DestructiveHeaderCopy,
    /// An explicit `assert(...)` extern whose condition can be false.
    UserAssert,
}

impl std::fmt::Display for BugKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BugKind::InvalidHeaderAccess => "invalid-header-access",
            BugKind::InvalidKeyAccess => "invalid-key-access",
            BugKind::EgressSpecNotSet => "egress-spec-not-set",
            BugKind::RegisterOutOfBounds => "register-out-of-bounds",
            BugKind::StackOutOfBounds => "stack-out-of-bounds",
            BugKind::DestructiveHeaderCopy => "destructive-header-copy",
            BugKind::UserAssert => "user-assert",
        };
        f.write_str(s)
    }
}

/// Metadata attached to a bug node.
#[derive(Clone, Debug, PartialEq)]
pub struct BugInfo {
    /// Bug class.
    pub kind: BugKind,
    /// Human-readable description (what was accessed, where).
    pub description: String,
    /// Source line in the P4 program, when known.
    pub line: u32,
    /// Index into [`Cfg::tables`] of the table whose expansion contains this
    /// bug, if any (used to assign assert points).
    pub table: Option<usize>,
}

/// What a block is.
#[derive(Clone, Debug, PartialEq)]
pub enum BlockKind {
    /// Ordinary block.
    Normal,
    /// Good terminal: packet leaves the pipeline with defined behavior.
    Accept,
    /// Good terminal: parser rejected the packet cleanly.
    Reject,
    /// Bad terminal.
    Bug(BugInfo),
    /// Terminal excluded from the OK set (§4.2 `dontCare`).
    DontCare,
    /// Terminal that no execution reaches (table-entry mismatch sink).
    Infeasible,
}

/// Block terminator.
#[derive(Clone, Debug)]
pub enum Terminator {
    /// Unconditional edge.
    Jump(BlockId),
    /// Two-way conditional edge.
    Branch {
        /// Boolean condition.
        cond: Term,
        /// Successor when true.
        then_to: BlockId,
        /// Successor when false.
        else_to: BlockId,
    },
    /// No successors (terminal block).
    End,
}

impl Terminator {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch {
                then_to, else_to, ..
            } => vec![*then_to, *else_to],
            Terminator::End => vec![],
        }
    }
}

/// A basic block.
#[derive(Clone, Debug)]
pub struct Block {
    /// Straight-line instructions.
    pub instrs: Vec<Instr>,
    /// Terminator.
    pub term: Terminator,
    /// Classification.
    pub kind: BlockKind,
    /// Debug label (state/table/action names).
    pub label: String,
}

/// A table key in an expanded table site.
#[derive(Clone, Debug)]
pub struct TableKeyInfo {
    /// Source text of the key expression (used in annotation output).
    pub source: String,
    /// Match kind (`exact`, `ternary`, `lpm`, ...).
    pub match_kind: String,
    /// Key expression over program variables, as lowered at the apply site.
    pub expr: Term,
    /// Flow-entry variable holding the entry's value for this key.
    pub value_var: Arc<str>,
    /// Flow-entry mask variable (ternary/lpm/optional); `None` for exact.
    pub mask_var: Option<Arc<str>>,
    /// Conjunction of validity bits of headers read by `expr` (`true` when
    /// the key touches no header).
    pub validity: Term,
    /// True if the key expression is itself a `isValid()` call.
    pub is_validity_key: bool,
}

/// An action bound to a table site.
#[derive(Clone, Debug)]
pub struct TableActionInfo {
    /// Action name.
    pub name: String,
    /// Flow-entry variables carrying the action's data parameters.
    pub param_vars: Vec<(Arc<str>, Sort)>,
}

/// One expanded `table.apply()` call site — the paper's *assert point*.
#[derive(Clone, Debug)]
pub struct TableSite {
    /// Table name.
    pub table: String,
    /// Control the table belongs to.
    pub control: String,
    /// Site index (unique per apply site).
    pub site: usize,
    /// Flow-entry variable prefix (`pcn.<table>#<site>`).
    pub prefix: String,
    /// Block that begins the expansion (the assert point).
    pub entry_block: BlockId,
    /// Join block where execution continues after the table.
    pub exit_block: BlockId,
    /// `reach` meta-variable name.
    pub reach_var: Arc<str>,
    /// `hit` meta-variable name.
    pub hit_var: Arc<str>,
    /// Action-selector variable name (`Bv(8)`) — the *rule's* action, a
    /// control variable havoc'd once at the site entry.
    pub action_var: Arc<str>,
    /// The *executed* action (`Bv(8)`): equals `action_var` on hit, the
    /// default action index on miss. This is what `switch(action_run)`
    /// scrutinizes.
    pub action_run_var: Arc<str>,
    /// Keys in declaration order.
    pub keys: Vec<TableKeyInfo>,
    /// Actions in declaration order (selector value = index).
    pub actions: Vec<TableActionInfo>,
    /// Index into `actions` of the default action.
    pub default_action: usize,
}

impl TableSite {
    /// All control variables of this site (keys, masks, hit, action
    /// selector, action data) — the set Γ of the paper.
    pub fn control_vars(&self) -> Vec<Arc<str>> {
        let mut out = vec![self.hit_var.clone(), self.action_var.clone()];
        for k in &self.keys {
            out.push(k.value_var.clone());
            if let Some(m) = &k.mask_var {
                out.push(m.clone());
            }
        }
        for a in &self.actions {
            for (v, _) in &a.param_vars {
                out.push(v.clone());
            }
        }
        out
    }
}

/// The control-flow graph of a lowered pipeline.
#[derive(Clone, Debug, Default)]
pub struct Cfg {
    /// Blocks; `blocks[entry]` is the entry block.
    pub blocks: Vec<Block>,
    /// Entry block id.
    pub entry: BlockId,
    /// Expanded table sites (assert points).
    pub tables: Vec<TableSite>,
    /// Sorts of all program variables ever written or read.
    pub var_sorts: HashMap<Arc<str>, Sort>,
    /// Pass-through blocks marked `dontCare` (§4.2): reaching one makes the
    /// remainder of the run a no-op the OK set should not protect.
    pub dontcare_marks: Vec<BlockId>,
}

impl Cfg {
    /// Ids of all bug blocks.
    pub fn bug_blocks(&self) -> Vec<BlockId> {
        (0..self.blocks.len())
            .filter(|&b| matches!(self.blocks[b].kind, BlockKind::Bug(_)))
            .collect()
    }

    /// Ids of all good terminals (`Accept` and `Reject`).
    pub fn good_blocks(&self) -> Vec<BlockId> {
        (0..self.blocks.len())
            .filter(|&b| matches!(self.blocks[b].kind, BlockKind::Accept | BlockKind::Reject))
            .collect()
    }

    /// Ids of `DontCare` terminals.
    pub fn dontcare_blocks(&self) -> Vec<BlockId> {
        (0..self.blocks.len())
            .filter(|&b| matches!(self.blocks[b].kind, BlockKind::DontCare))
            .collect()
    }

    /// Predecessor lists.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, blk) in self.blocks.iter().enumerate() {
            for s in blk.term.successors() {
                preds[s].push(b);
            }
        }
        preds
    }

    /// Topological order over blocks reachable from entry.
    ///
    /// Panics if the graph has a cycle — lowering guarantees acyclicity, so
    /// a cycle is an internal invariant violation.
    pub fn topo_order(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut order = Vec::with_capacity(n);
        // Iterative DFS with explicit post-order.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        state[self.entry] = 1;
        while let Some(&mut (b, ref mut idx)) = stack.last_mut() {
            let succs = self.blocks[b].term.successors();
            if *idx < succs.len() {
                let s = succs[*idx];
                *idx += 1;
                match state[s] {
                    0 => {
                        state[s] = 1;
                        stack.push((s, 0));
                    }
                    1 => panic!("cycle in CFG involving blocks {b} and {s}"),
                    _ => {}
                }
            } else {
                state[b] = 2;
                order.push(b);
                stack.pop();
            }
        }
        order.reverse();
        order
    }

    /// Immediate dominators over reachable blocks (entry maps to itself).
    ///
    /// Cooper–Harvey–Kennedy on the topological order; one pass suffices on
    /// a DAG processed in topological order.
    pub fn dominators(&self) -> HashMap<BlockId, BlockId> {
        let order = self.topo_order();
        let mut pos: HashMap<BlockId, usize> = HashMap::new();
        for (i, &b) in order.iter().enumerate() {
            pos.insert(b, i);
        }
        let preds = self.predecessors();
        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        idom.insert(self.entry, self.entry);
        let intersect = |idom: &HashMap<BlockId, BlockId>,
                         pos: &HashMap<BlockId, usize>,
                         mut a: BlockId,
                         mut b: BlockId| {
            while a != b {
                while pos[&a] > pos[&b] {
                    a = idom[&a];
                }
                while pos[&b] > pos[&a] {
                    b = idom[&b];
                }
            }
            a
        };
        for &b in order.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b] {
                if !idom.contains_key(&p) {
                    continue; // unreachable pred
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &pos, cur, p),
                });
            }
            idom.insert(b, new_idom.expect("reachable block with no reachable preds"));
        }
        idom
    }

    /// `a` dominates `b`?
    pub fn dominates(idom: &HashMap<BlockId, BlockId>, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let next = match idom.get(&cur) {
                Some(&n) => n,
                None => return false,
            };
            if next == cur {
                return false; // reached entry
            }
            cur = next;
        }
    }

    /// Immediate post-dominators, computed on the reversed graph against a
    /// virtual exit joining all terminals.
    ///
    /// Returns `(ipostdom, virtual_exit_id)`; terminals post-dominated only
    /// by the virtual exit map to `virtual_exit_id`.
    pub fn postdominators(&self) -> (HashMap<BlockId, BlockId>, BlockId) {
        let n = self.blocks.len();
        let vexit = n;
        // successors in the reversed graph = predecessors; terminals gain an
        // edge to vexit.
        let preds = self.predecessors();
        let mut rev_succ: Vec<Vec<BlockId>> = vec![Vec::new(); n + 1];
        let mut rev_pred: Vec<Vec<BlockId>> = vec![Vec::new(); n + 1];
        for (b, blk) in self.blocks.iter().enumerate() {
            let succs = blk.term.successors();
            if succs.is_empty() {
                rev_succ[vexit].push(b);
                rev_pred[b].push(vexit);
            }
            let _ = &preds;
            for s in succs {
                // reversed edge s -> b
                rev_succ[s].push(b);
                rev_pred[b].push(s);
            }
        }
        // Topological order of the reversed graph from vexit (it is also a
        // DAG). Restrict to blocks reachable from entry in the forward graph
        // and from vexit in the reverse graph.
        let mut order = Vec::new();
        let mut state = vec![0u8; n + 1];
        let mut stack: Vec<(BlockId, usize)> = vec![(vexit, 0)];
        state[vexit] = 1;
        while let Some(&mut (b, ref mut idx)) = stack.last_mut() {
            if *idx < rev_succ[b].len() {
                let s = rev_succ[b][*idx];
                *idx += 1;
                if state[s] == 0 {
                    state[s] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b] = 2;
                order.push(b);
                stack.pop();
            }
        }
        order.reverse();
        let mut pos: HashMap<BlockId, usize> = HashMap::new();
        for (i, &b) in order.iter().enumerate() {
            pos.insert(b, i);
        }
        let mut ipdom: HashMap<BlockId, BlockId> = HashMap::new();
        ipdom.insert(vexit, vexit);
        let intersect = |ipdom: &HashMap<BlockId, BlockId>,
                         pos: &HashMap<BlockId, usize>,
                         mut a: BlockId,
                         mut b: BlockId| {
            while a != b {
                while pos[&a] > pos[&b] {
                    a = ipdom[&a];
                }
                while pos[&b] > pos[&a] {
                    b = ipdom[&b];
                }
            }
            a
        };
        for &b in order.iter().skip(1) {
            let mut new_ipdom: Option<BlockId> = None;
            for &p in &rev_pred[b] {
                if !ipdom.contains_key(&p) {
                    continue;
                }
                new_ipdom = Some(match new_ipdom {
                    None => p,
                    Some(cur) => intersect(&ipdom, &pos, cur, p),
                });
            }
            if let Some(d) = new_ipdom {
                ipdom.insert(b, d);
            }
        }
        (ipdom, vexit)
    }

    /// Total number of instructions (the metric the paper reports for the
    /// slicing ablation).
    pub fn num_instrs(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Validate internal invariants; used by tests and debug assertions.
    ///
    /// Checks: terminator targets in range; terminal blocks have kind other
    /// than `Normal`; non-terminal blocks are `Normal`; graph is acyclic.
    pub fn validate(&self) -> Result<(), String> {
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.term.successors() {
                if s >= self.blocks.len() {
                    return Err(format!("block {i} has out-of-range successor {s}"));
                }
            }
            let terminal = b.term.successors().is_empty();
            let normal = matches!(b.kind, BlockKind::Normal);
            if terminal && normal {
                return Err(format!("terminal block {i} ({}) is Normal", b.label));
            }
            if !terminal && !normal {
                return Err(format!("non-terminal block {i} ({}) is {:?}", b.label, b.kind));
            }
        }
        // topo_order panics on cycles; catch as error
        let me = self.clone();
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            me.topo_order();
        }))
        .map_err(|_| "cycle detected".to_string())?;
        Ok(())
    }
}

/// Render a CFG in Graphviz DOT form (debugging aid; `bf4 --dump-cfg`).
///
/// Bug terminals are red, good terminals green, `dontCare` marks dashed;
/// table-site entries (assert points) are drawn as boxes.
pub fn to_dot(cfg: &Cfg) -> String {
    use std::fmt::Write;
    let mut out = String::from("digraph bf4 {\n  node [fontname=\"monospace\"];\n");
    let site_entries: std::collections::HashSet<BlockId> =
        cfg.tables.iter().map(|t| t.entry_block).collect();
    let reachable: std::collections::HashSet<BlockId> = cfg.topo_order().into_iter().collect();
    for (i, b) in cfg.blocks.iter().enumerate() {
        if !reachable.contains(&i) {
            continue;
        }
        let (shape, color) = match &b.kind {
            BlockKind::Bug(_) => ("ellipse", "red"),
            BlockKind::Accept | BlockKind::Reject => ("ellipse", "green"),
            BlockKind::Infeasible => ("ellipse", "gray"),
            BlockKind::DontCare => ("ellipse", "orange"),
            BlockKind::Normal if site_entries.contains(&i) => ("box", "blue"),
            BlockKind::Normal => ("box", "black"),
        };
        let style = if cfg.dontcare_marks.contains(&i) {
            ",style=dashed"
        } else {
            ""
        };
        let label = b.label.replace('"', "'");
        let _ = writeln!(
            out,
            "  n{i} [shape={shape},color={color}{style},label=\"{i}: {label}\\n{} instr\"];",
            b.instrs.len()
        );
        match &b.term {
            Terminator::Jump(t) => {
                let _ = writeln!(out, "  n{i} -> n{t};");
            }
            Terminator::Branch {
                then_to, else_to, ..
            } => {
                let _ = writeln!(out, "  n{i} -> n{then_to} [label=\"T\"];");
                let _ = writeln!(out, "  n{i} -> n{else_to} [label=\"F\"];");
            }
            Terminator::End => {}
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf4_smt::Sort;

    fn blk(term: Terminator, kind: BlockKind) -> Block {
        Block {
            instrs: vec![],
            term,
            kind,
            label: String::new(),
        }
    }

    /// Diamond: 0 -> 1,2 -> 3(accept)
    fn diamond() -> Cfg {
        let c = Term::var("c", Sort::Bool);
        Cfg {
            blocks: vec![
                blk(
                    Terminator::Branch {
                        cond: c,
                        then_to: 1,
                        else_to: 2,
                    },
                    BlockKind::Normal,
                ),
                blk(Terminator::Jump(3), BlockKind::Normal),
                blk(Terminator::Jump(3), BlockKind::Normal),
                blk(Terminator::End, BlockKind::Accept),
            ],
            entry: 0,
            tables: vec![],
            var_sorts: HashMap::new(),
            dontcare_marks: vec![],
        }
    }

    #[test]
    fn topo_order_diamond() {
        let cfg = diamond();
        let order = cfg.topo_order();
        let pos = |b: BlockId| order.iter().position(|&x| x == b).unwrap();
        assert_eq!(order.len(), 4);
        assert!(pos(0) < pos(1) && pos(0) < pos(2));
        assert!(pos(1) < pos(3) && pos(2) < pos(3));
    }

    #[test]
    fn dominators_diamond() {
        let cfg = diamond();
        let idom = cfg.dominators();
        assert_eq!(idom[&1], 0);
        assert_eq!(idom[&2], 0);
        assert_eq!(idom[&3], 0); // join dominated by branch head only
        assert!(Cfg::dominates(&idom, 0, 3));
        assert!(!Cfg::dominates(&idom, 1, 3));
    }

    #[test]
    fn postdominators_diamond() {
        let cfg = diamond();
        let (ipdom, _vexit) = cfg.postdominators();
        assert_eq!(ipdom[&1], 3);
        assert_eq!(ipdom[&2], 3);
        assert_eq!(ipdom[&0], 3);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_panics() {
        let cfg = Cfg {
            blocks: vec![
                blk(Terminator::Jump(1), BlockKind::Normal),
                blk(Terminator::Jump(0), BlockKind::Normal),
            ],
            entry: 0,
            tables: vec![],
            var_sorts: HashMap::new(),
            dontcare_marks: vec![],
        };
        cfg.topo_order();
    }

    #[test]
    fn validate_catches_normal_terminal() {
        let cfg = Cfg {
            blocks: vec![blk(Terminator::End, BlockKind::Normal)],
            entry: 0,
            tables: vec![],
            var_sorts: HashMap::new(),
            dontcare_marks: vec![],
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn unreachable_blocks_ignored_in_topo() {
        let mut cfg = diamond();
        cfg.blocks.push(blk(Terminator::End, BlockKind::Accept)); // unreachable
        assert_eq!(cfg.topo_order().len(), 4);
    }
}
